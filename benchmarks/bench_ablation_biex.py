"""ABL-BOOL — BIEX-2Lev vs BIEX-ZMF: the read/space-efficiency trade-off.

The paper lists both variants because they sit on opposite ends of the
trade-off (§5: "read and space efficiency (e.g. BIEX-2Lev and
BIEX-ZMF)").  This ablation measures, on the same corpus:

* conjunctive query latency — 2Lev does exact bucket lookups, ZMF pays k
  PRF probes per candidate per term, so 2Lev is read-faster;
* local-structure size — 2Lev materialises every pairwise co-occurrence,
  ZMF stores one fixed counting filter, so ZMF is space-smaller once the
  pairwise structure outgrows the filter.
"""

import pytest

from repro.gateway.service import GatewayRuntime

DOCS = 60
FIELDS = [("status", ["final", "prelim"]),
          ("code", ["glucose", "hr", "bp"]),
          ("city", ["leuven", "ghent"])]


def build_corpus(fresh_deployment, registry, variant):
    cloud, transport = fresh_deployment()
    runtime = GatewayRuntime("abl", transport, registry)
    gateway = runtime.tactic("s._bool", variant)
    for i in range(DOCS):
        terms = [
            gateway.term(field, values[i % len(values)])
            for field, values in FIELDS
        ]
        gateway.insert_terms(f"d{i}", terms)
    cloud_instance = cloud.tactic_instance("abl", "s._bool", variant)
    return gateway, cloud_instance


@pytest.mark.parametrize("variant", ["biex-2lev", "biex-zmf"])
def test_conjunction_latency(benchmark, fresh_deployment, registry,
                             variant):
    gateway, _ = build_corpus(fresh_deployment, registry, variant)
    cnf = [[gateway.term("status", "final")],
           [gateway.term("code", "glucose")]]

    benchmark.group = "biex-conjunction"
    result = benchmark(
        lambda: gateway.resolve_bool(gateway.bool_query_terms(cnf))
    )
    expected = {f"d{i}" for i in range(DOCS)
                if i % 2 == 0 and i % 3 == 0}
    assert result == expected


def test_space_tradeoff(fresh_deployment, registry):
    sizes = {}
    for variant in ("biex-2lev", "biex-zmf"):
        _, cloud_instance = build_corpus(fresh_deployment, registry,
                                         variant)
        sizes[variant] = cloud_instance.index_size()

    print()
    print("ABL-BOOL local-structure size (bytes):")
    for variant, size in sizes.items():
        print(f"  {variant:<10} {size:>10,}")

    # Both are non-trivial; the filter is fixed-size while the pairwise
    # store grows with co-occurrences.
    assert sizes["biex-2lev"] > 0
    assert sizes["biex-zmf"] > 0

    # Growing the corpus grows 2Lev but not the ZMF filter allocation.
    global DOCS
    original = DOCS
    try:
        DOCS = original * 2
        _, big_2lev = build_corpus(fresh_deployment, registry,
                                   "biex-2lev")
        _, big_zmf = build_corpus(fresh_deployment, registry, "biex-zmf")
        assert big_2lev.index_size() > sizes["biex-2lev"]
        assert big_zmf.index_size() <= sizes["biex-zmf"] * 1.6
    finally:
        DOCS = original
