"""ABL-NET — network model sweep: gateway/cloud link cost vs throughput.

The paper's deployment crosses a private-cloud -> public-cloud link;
every tactic protocol round pays it.  This ablation sweeps the one-way
latency of the in-process transport (with real sleeping) and reports the
overall throughput of the DataBlinder scenario, showing where the system
flips from compute-bound (crypto) to network-bound (protocol rounds) —
the regime difference that separates our measured S_A/S_B ratio from the
paper's testbed (see EXPERIMENTS.md).
"""

import pytest

from repro.bench.loadgen import run_load
from repro.bench.scenarios import MiddlewareApp
from repro.bench.workloads import Workload, WorkloadSpec
from repro.cloud.server import CloudZone
from repro.net.latency import NetworkModel
from repro.net.transport import InProcTransport

LATENCIES_MS = [0.0, 0.5, 2.0]
OPERATIONS = 60
USERS = 4


def run_with_latency(registry, one_way_ms):
    cloud = CloudZone(registry)
    transport = InProcTransport(
        cloud.host, NetworkModel(one_way_latency_ms=one_way_ms, sleep=True)
    )
    app = MiddlewareApp(transport, application=f"net{one_way_ms}")
    workload = Workload(WorkloadSpec(operations=OPERATIONS, seed=5))
    result = run_load(app, workload, users=USERS)
    assert not result.errors, result.errors[:3]
    return result.report.per_operation["overall"].throughput


@pytest.mark.parametrize("one_way_ms", LATENCIES_MS)
def test_throughput_under_latency(benchmark, registry, one_way_ms):
    benchmark.group = "network-sweep"
    throughput = benchmark.pedantic(
        run_with_latency, args=(registry, one_way_ms), rounds=1,
        iterations=1,
    )
    assert throughput > 0


def test_latency_sweep_shape(registry):
    throughputs = {
        ms: run_with_latency(registry, ms) for ms in LATENCIES_MS
    }
    print()
    print("ABL-NET overall throughput vs one-way link latency:")
    for ms, ops in throughputs.items():
        print(f"  {ms:>5.1f} ms  {ops:8.1f} ops/s")
    # More latency, less throughput (closed loop, fixed users).
    assert throughputs[0.0] > throughputs[2.0]
