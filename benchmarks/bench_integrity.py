"""EXP-INTEGRITY — what verified reads cost on the paper's WAN.

Three deployments run the identical find-heavy workload (a seeded
corpus, then timed ``find`` passes with interleaved updates so the
freshness ledger actually goes dirty and re-syncs) over the 40 ms
one-way gateway→cloud link:

* **off** — ``PipelineConfig()``: the seed's trusting read path.
* **fetch** — proof-on-fetch: every document fetch is rewritten to its
  proven variant, inclusion proofs checked against the gateway ledger.
  The honest overhead is the per-envelope verification plus one ledger
  ``report()`` round trip after each write burst.
* **audit** — audit-pass: reads untouched; the verification sweep runs
  off the hot path and is timed separately.

Acceptance: proof-on-fetch costs <= 25% of find throughput, audit mode
costs ~0 on the hot path, and integrity never adds or changes stored
zone state (reads leave the fingerprint untouched; all three zones are
structurally identical).

Results land in ``BENCH_integrity.json`` at the repo root.  Run
standalone with ``python benchmarks/bench_integrity.py --smoke`` for
the reduced CI profile.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.analysis.snapshot import SnapshotAdversary, zone_fingerprint
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.fhir.model import observation_schema
from repro.integrity import MODE_AUDIT, MODE_FETCH, IntegrityConfig
from repro.net.batch import PipelineConfig
from repro.net.latency import NetworkModel
from repro.net.transport import InProcTransport

#: The paper's gateway→public-cloud link.
WAN_ONE_WAY_MS = 40.0
SEED_DOCS = 24
#: Timed find operations per mode; every 5th op is an update, which
#: dirties the ledger so fetch mode pays its honest re-sync round trip.
TIMED_OPS = int(os.environ.get("DATABLINDER_INTEGRITY_BENCH_OPS", "40"))

#: Acceptance ceilings (percent throughput loss vs the "off" baseline).
FETCH_OVERHEAD_CEILING = 25.0
AUDIT_OVERHEAD_CEILING = 10.0

APP = "bench-integrity"

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_integrity.json"
)

MODES = {
    "off": None,
    "fetch": IntegrityConfig(mode=MODE_FETCH),
    "audit": IntegrityConfig(mode=MODE_AUDIT),
}


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": ("glucose", "insulin", "hba1c")[i % 3],
        "subject": f"Patient {i % 6}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


def deploy(registry, mode: str):
    cloud = CloudZone(registry)
    transport = InProcTransport(
        cloud.host,
        NetworkModel(one_way_latency_ms=WAN_ONE_WAY_MS, sleep=True),
    )
    blinder = DataBlinder(
        f"{APP}-{mode}", transport, registry=registry,
        pipeline=PipelineConfig(integrity=MODES[mode]),
    )
    blinder.register_schema(observation_schema())
    return cloud, blinder


def run_mode(registry, mode: str) -> dict:
    cloud, blinder = deploy(registry, mode)
    application = f"{APP}-{mode}"
    observations = blinder.entities("observation")
    ids = [observations.insert(make_doc(i)) for i in range(SEED_DOCS)]
    seeded_fingerprint = zone_fingerprint(cloud, application)

    statuses = ("final", "amended")
    codes = ("glucose", "insulin", "hba1c")
    latencies: list[float] = []
    checksum = 0
    started = time.perf_counter()
    for op in range(TIMED_OPS):
        t0 = time.perf_counter()
        if op % 5 == 4:
            observations.update(ids[op % SEED_DOCS],
                                {"value": float(1000 + op)})
        elif op % 2 == 0:
            checksum += len(observations.find(
                Eq("status", statuses[op % len(statuses)])
            ))
        else:
            checksum += len(observations.find(
                Eq("code", codes[op % len(codes)])
            ))
        latencies.append((time.perf_counter() - t0) * 1000.0)
    elapsed = time.perf_counter() - started

    audit_ms = None
    if mode == "audit":
        t0 = time.perf_counter()
        summary = blinder.integrity_audit()
        audit_ms = (time.perf_counter() - t0) * 1000.0
        assert summary["roots_checked"] > 0

    # Reads (verified or not) never touch stored state: only the five
    # timed updates moved the fingerprint, and re-running the read-only
    # tail leaves it where it is.
    fingerprint = zone_fingerprint(cloud, application)
    assert fingerprint != seeded_fingerprint  # the updates landed
    observations.find(Eq("status", "final"))
    assert zone_fingerprint(cloud, application) == fingerprint

    report = SnapshotAdversary(cloud, application).report()
    ordered = sorted(latencies)
    stats = blinder.runtime.transport.stats()
    row = {
        "ops": TIMED_OPS,
        "throughput_ops_s": round(TIMED_OPS / elapsed, 3),
        "mean_ms": round(statistics.fmean(latencies), 1),
        "p95_ms": round(ordered[int(0.95 * (len(ordered) - 1))], 1),
        "checksum": checksum,
        "documents": report.documents,
        "kv_entries": report.kv_entries,
        "integrity_failures": stats.integrity_failures,
        "stale_detected": stats.stale_detected,
    }
    if audit_ms is not None:
        row["audit_sweep_ms"] = round(audit_ms, 1)
    return row


def test_integrity_overhead(registry):
    print(f"\nEXP-INTEGRITY find workload on "
          f"{WAN_ONE_WAY_MS:.0f} ms one-way WAN "
          f"({TIMED_OPS} timed ops, {SEED_DOCS} docs)")
    rows = {}
    for mode in MODES:
        rows[mode] = run_mode(registry, mode)
        extra = (f"   audit sweep {rows[mode]['audit_sweep_ms']:.0f} ms"
                 if "audit_sweep_ms" in rows[mode] else "")
        print(f"  {mode:<6} {rows[mode]['throughput_ops_s']:>7.2f} ops/s"
              f"   mean {rows[mode]['mean_ms']:>7.0f} ms"
              f"   p95 {rows[mode]['p95_ms']:>7.0f} ms{extra}")

    base = rows["off"]["throughput_ops_s"]
    overhead = {
        mode: round(100.0 * (1.0 - rows[mode]["throughput_ops_s"] / base),
                    2)
        for mode in ("fetch", "audit")
    }
    print(f"  overhead vs off: fetch {overhead['fetch']:+.1f}%  "
          f"audit {overhead['audit']:+.1f}%")

    RESULTS_PATH.write_text(json.dumps({
        "config": {
            "wan_one_way_ms": WAN_ONE_WAY_MS,
            "seed_docs": SEED_DOCS,
            "timed_ops": TIMED_OPS,
            "mix": {"find": 0.8, "update": 0.2},
            "fetch_overhead_ceiling_pct": FETCH_OVERHEAD_CEILING,
            "audit_overhead_ceiling_pct": AUDIT_OVERHEAD_CEILING,
        },
        "modes": rows,
        "overhead_pct": overhead,
    }, indent=2) + "\n")
    print(f"results written to {RESULTS_PATH}")

    # Same answers, same zone shape, zero spurious detections.
    assert rows["fetch"]["checksum"] == rows["off"]["checksum"]
    assert rows["audit"]["checksum"] == rows["off"]["checksum"]
    for mode in ("fetch", "audit"):
        assert rows[mode]["documents"] == rows["off"]["documents"]
        assert rows[mode]["kv_entries"] == rows["off"]["kv_entries"]
        assert rows[mode]["integrity_failures"] == 0
        assert rows[mode]["stale_detected"] == 0

    # Acceptance: proof-on-fetch <= 25% find-throughput cost; the
    # audit pass is (within noise) free on the hot path.
    assert overhead["fetch"] <= FETCH_OVERHEAD_CEILING, overhead
    assert overhead["audit"] <= AUDIT_OVERHEAD_CEILING, overhead


def main(argv: list[str]) -> int:
    """Standalone entry point; ``--smoke`` shrinks the workload for CI."""
    import pytest

    if "--smoke" in argv:
        os.environ["DATABLINDER_INTEGRITY_BENCH_OPS"] = "15"
        global TIMED_OPS
        TIMED_OPS = 15
    return pytest.main(["-q", "-s", __file__])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
