"""ABL-MIX — workload-mix sensitivity: how much of the protected-path
cost is the homomorphic aggregate share.

The paper attributes much of its overhead to the ~50k Paillier queries
per run.  This ablation sweeps the aggregate fraction of the workload
(the rest split evenly between inserts and searches) and reports the
overall throughput of the hard-coded-tactics scenario, decomposing the
Figure 5 gap by operation mix.
"""

import pytest

from repro.bench.loadgen import run_load
from repro.bench.scenarios import build_scenario
from repro.bench.workloads import Workload, WorkloadSpec

OPERATIONS = 120
MIXES = [0.0, 1 / 3, 2 / 3]


def spec_for(aggregate_fraction: float) -> WorkloadSpec:
    rest = (1.0 - aggregate_fraction) / 2
    return WorkloadSpec(
        operations=OPERATIONS,
        insert_fraction=rest,
        search_fraction=rest,
        aggregate_fraction=aggregate_fraction,
        seed=31,
    )


def run_mix(fresh_deployment, aggregate_fraction: float):
    _, transport = fresh_deployment()
    app = build_scenario("S_B", transport)
    result = run_load(app, Workload(spec_for(aggregate_fraction)),
                      users=4)
    assert not result.errors, result.errors[:3]
    return result.report


@pytest.mark.parametrize("aggregate_fraction", MIXES)
def test_throughput_per_mix(benchmark, fresh_deployment,
                            aggregate_fraction):
    benchmark.group = "aggregate-mix"
    report = benchmark.pedantic(
        run_mix, args=(fresh_deployment, aggregate_fraction),
        rounds=1, iterations=1,
    )
    assert report.per_operation["overall"].count == OPERATIONS


def test_mix_sweep_shape(fresh_deployment):
    reports = {
        fraction: run_mix(fresh_deployment, fraction)
        for fraction in MIXES
    }
    print()
    print("ABL-MIX protected (S_B) throughput vs aggregate share:")
    for fraction, report in reports.items():
        overall = report.per_operation["overall"]
        agg = report.per_operation.get("aggregate")
        agg_ms = f"{agg.mean_ms:7.1f}" if agg else "      -"
        print(f"  {fraction:4.0%} aggregates: {overall.throughput:7.1f} "
              f"ops/s overall, aggregate mean {agg_ms} ms")

    # Every mix keeps inserts Paillier-bearing, so the sweep measures the
    # *query-side* HE share: per-operation aggregate cost must exceed the
    # search cost at every mix with aggregates present.
    for fraction in MIXES[1:]:
        per_op = reports[fraction].per_operation
        assert per_op["aggregate"].mean_ms > per_op["eq_search"].mean_ms
