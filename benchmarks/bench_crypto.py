"""EXP-CRYPTO — gateway crypto kernels: batched tactic SPI, process-pool
offload and fixed-base modexp precomputation.

Three measurements, written to ``BENCH_crypto.json``:

* **Paillier encryption micro-benchmark** — one cold ``r^n mod n²``
  exponentiation per ciphertext (the seed path) against the fixed-base
  windowed table (``CryptoConfig.precompute``).  The headline claim:
  >= 5x more encryptions per second from precomputation alone.
* **Bulk-insert throughput grid** — the §5.2 benchmark observation
  schema (8 tactic instances) ingested through ``insert_many`` under
  the kernel config grid (defaults / precompute-only / 1 worker /
  N workers).  Claim: the kernelised write path lands >= 3x the
  baseline document rate.  The speedup is *algorithmic* (fixed-base
  masks, OPE split-node memoisation, DET/blind-index dedup), so it
  holds on a single-core runner where the pool adds no parallelism.
* **Paillier aggregate throughput** — homomorphic sum + CRT-assisted
  decryption over the ingested corpus, per config.

Run standalone with ``python benchmarks/bench_crypto.py --smoke`` for
the reduced CI smoke profile.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import AggregateQuery
from repro.crypto import paillier
from repro.crypto.kernels.config import CryptoConfig
from repro.fhir.generator import MedicalDataGenerator
from repro.fhir.model import benchmark_observation_schema
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport
from repro.spi.descriptors import Aggregate

SEED = 2019
DOCS = int(os.environ.get("DATABLINDER_CRYPTO_BENCH_DOCS", "48"))
ENCRYPTIONS = int(os.environ.get("DATABLINDER_CRYPTO_BENCH_ENC", "24"))
AGGREGATES = int(os.environ.get("DATABLINDER_CRYPTO_BENCH_AGG", "5"))
POOL_WORKERS = int(os.environ.get("DATABLINDER_CRYPTO_BENCH_WORKERS", "4"))
#: Minimum pooled-vs-baseline insert speedup.  The full profile asserts
#: the EXP-CRYPTO claim (3x); the CI smoke lowers it — a 16-document
#: workload on a single-core runner cannot amortise pool dispatch, and
#: the smoke's job is validating the plumbing, not the perf claim.
SPEEDUP_FLOOR = float(
    os.environ.get("DATABLINDER_CRYPTO_BENCH_FLOOR", "3.0")
)

#: config-id -> CryptoConfig (None = the seed-identical defaults).
CONFIG_GRID: dict[str, CryptoConfig | None] = {
    "baseline": None,
    "precompute": CryptoConfig(precompute=True),
    "pool1+precompute": CryptoConfig(workers=1, precompute=True),
    f"pool{POOL_WORKERS}+precompute": CryptoConfig(
        workers=POOL_WORKERS, precompute=True
    ),
}

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_crypto.json"
RESULTS: dict = {}


# -- Paillier encryption micro-benchmark --------------------------------------


def test_fixed_base_paillier_encrypt_speedup():
    """Fixed-base windowed masks beat cold exponentiation >= 5x."""
    private = paillier.generate_keypair(1024)
    public = private.public

    started = time.perf_counter()
    for i in range(ENCRYPTIONS):
        paillier.encrypt(public, i)
    cold_rate = ENCRYPTIONS / (time.perf_counter() - started)

    fixed = paillier.FixedBaseObfuscator(
        public, window_bits=CryptoConfig().window_bits
    )
    fixed.mask()  # table built in the constructor; one warm call
    started = time.perf_counter()
    ciphertexts = [fixed.encrypt(i) for i in range(ENCRYPTIONS)]
    fixed_rate = ENCRYPTIONS / (time.perf_counter() - started)

    for i, ciphertext in enumerate(ciphertexts):
        assert paillier.decrypt(private, ciphertext) == i

    speedup = fixed_rate / cold_rate
    RESULTS["paillier_encrypt"] = {
        "cold_per_s": cold_rate,
        "fixed_base_per_s": fixed_rate,
        "speedup": speedup,
        "table_bytes": fixed.memory_bytes,
    }
    print(f"\nEXP-CRYPTO Paillier encrypt: {cold_rate:.1f} -> "
          f"{fixed_rate:.1f} ops/s ({speedup:.1f}x, table "
          f"{fixed.memory_bytes / 1e6:.1f} MB)")
    assert speedup >= 5.0


# -- bulk insert + aggregate grid ---------------------------------------------


def observation_documents(count):
    generator = MedicalDataGenerator(SEED)
    return [o.to_document() for o in
            generator.observations(count, cohort_size=4)]


def deploy(crypto, application):
    from repro.core.registry import TacticRegistry
    from repro.tactics import register_builtin_tactics

    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    blinder = DataBlinder(
        application, InProcTransport(cloud.host), registry=registry,
        verify_results=False,
        pipeline=PipelineConfig(batch_writes=True, crypto=crypto),
    )
    blinder.register_schema(benchmark_observation_schema())
    return blinder, blinder.entities("observation")


def measure_config(name, crypto, documents):
    from repro.crypto.kernels import workers

    blinder, entities = deploy(crypto, f"bench-crypto-{name}")
    # Warm up outside the timed window: tactic setup (keypair
    # re-derivation, fixed-base table builds) and — for pooled configs —
    # the forkserver spawn plus the per-worker package import and
    # fixed-base table build are one-time service-startup costs, not
    # per-document ones.  warm() is the same call a long-lived gateway
    # makes at boot.
    kernels = blinder.runtime.kernels
    if kernels.config.workers > 0:
        keypair = blinder.runtime.keystore.paillier_keypair(
            "observation.value", "paillier", 1024
        )
        kernels.warm(
            workers.paillier_masks, keypair.public.n, 1,
            kernels.config.window_bits if kernels.config.precompute else 0,
        )
    entities.insert_many([dict(d) for d in documents[:2]])

    started = time.perf_counter()
    entities.insert_many([dict(d) for d in documents])
    insert_rate = len(documents) / (time.perf_counter() - started)

    query = AggregateQuery(Aggregate.AVG, "value", None)
    expected = entities.aggregate(query)  # warm plan cache
    started = time.perf_counter()
    for _ in range(AGGREGATES):
        assert entities.aggregate(query) == expected
    aggregate_rate = AGGREGATES / (time.perf_counter() - started)

    return insert_rate, aggregate_rate


def test_insert_many_kernel_speedup():
    """The kernelised bulk ingest beats the seed loop >= 3x."""
    documents = observation_documents(DOCS + 2)
    grid = {}
    for name, crypto in CONFIG_GRID.items():
        insert_rate, aggregate_rate = measure_config(name, crypto,
                                                     documents)
        grid[name] = {
            "insert_docs_per_s": insert_rate,
            "aggregate_per_s": aggregate_rate,
        }
        print(f"EXP-CRYPTO {name:<18} insert {insert_rate:7.1f} docs/s"
              f"   paillier-agg {aggregate_rate:6.1f} ops/s")

    baseline = grid["baseline"]["insert_docs_per_s"]
    pooled = grid[f"pool{POOL_WORKERS}+precompute"]["insert_docs_per_s"]
    speedup = pooled / baseline
    RESULTS["insert_many"] = {
        "docs": DOCS,
        "grid": grid,
        "speedup_pooled_vs_baseline": speedup,
        "speedup_precompute_vs_baseline": (
            grid["precompute"]["insert_docs_per_s"] / baseline
        ),
    }
    print(f"EXP-CRYPTO insert_many: {baseline:.1f} -> {pooled:.1f} docs/s "
          f"({speedup:.1f}x with {POOL_WORKERS} workers + precompute)")
    assert speedup >= SPEEDUP_FLOOR

    RESULTS["config"] = {
        "docs": DOCS,
        "encryptions": ENCRYPTIONS,
        "aggregates": AGGREGATES,
        "pool_workers": POOL_WORKERS,
    }
    RESULTS_PATH.write_text(json.dumps(RESULTS, indent=2) + "\n")
    print(f"results written to {RESULTS_PATH}")


def main(argv: list[str]) -> int:
    """Standalone entry point; ``--smoke`` shrinks the workload for CI."""
    import pytest

    if "--smoke" in argv:
        os.environ.setdefault("DATABLINDER_CRYPTO_BENCH_DOCS", "16")
        os.environ.setdefault("DATABLINDER_CRYPTO_BENCH_ENC", "6")
        os.environ.setdefault("DATABLINDER_CRYPTO_BENCH_AGG", "3")
        os.environ.setdefault("DATABLINDER_CRYPTO_BENCH_WORKERS", "2")
        os.environ.setdefault("DATABLINDER_CRYPTO_BENCH_FLOOR", "1.2")
    return pytest.main(["-q", "-s", __file__])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
