"""ABL-SCALE — search cost vs corpus size: sub-linear vs linear tactics.

§1 of the paper: "among them, there are some with sub-linear search
complexity".  This ablation makes the complexity classes visible: search
latency as the corpus grows for

* DET — O(1) token lookup plus result transfer;
* Mitra — O(u_w): proportional to the *keyword's* history, flat in the
  total corpus;
* RND — O(n): the exhaustive scan transfers every ciphertext (the
  Table 2 'Inefficiency').
"""

import time

import pytest

from repro.gateway.service import GatewayRuntime

SIZES = [40, 80, 160]
DISTINCT_KEYWORDS = 8  # result size stays fixed: corpus/8 per keyword? no:
# keyword 'kw0' frequency is held constant below so per-tactic result
# sizes do not grow with the corpus.
TARGET_HITS = 5


def build(fresh_deployment, registry, tactic, size):
    _, transport = fresh_deployment()
    runtime = GatewayRuntime("scale", transport, registry)
    gateway = runtime.tactic(f"doc.{tactic}", tactic)
    # TARGET_HITS docs match the probe keyword; the rest are filler with
    # unique keywords, so only total corpus size varies.
    for i in range(TARGET_HITS):
        gateway.insert(f"hit{i}", "probe")
    for i in range(size - TARGET_HITS):
        gateway.insert(f"fill{i}", f"filler-{i}")
    return gateway


def timed_search(gateway, repeats=5):
    start = time.perf_counter()
    for _ in range(repeats):
        result = gateway.resolve_eq(gateway.eq_query("probe"))
    elapsed = (time.perf_counter() - start) / repeats
    assert len(result) == TARGET_HITS
    return elapsed


@pytest.mark.parametrize("tactic", ["det", "mitra", "rnd"])
@pytest.mark.parametrize("size", SIZES)
def test_search_scaling(benchmark, fresh_deployment, registry, tactic,
                        size):
    gateway = build(fresh_deployment, registry, tactic, size)
    benchmark.group = f"search-scaling-n{size}"
    result = benchmark(
        lambda: gateway.resolve_eq(gateway.eq_query("probe"))
    )
    assert len(result) == TARGET_HITS


def test_scaling_shape(fresh_deployment, registry):
    """RND grows with n; DET and Mitra stay flat at fixed result size."""
    latencies = {}
    for tactic in ("det", "mitra", "rnd"):
        latencies[tactic] = [
            timed_search(build(fresh_deployment, registry, tactic, size))
            for size in SIZES
        ]

    print()
    print("ABL-SCALE search latency (ms) at fixed result size "
          f"({TARGET_HITS} hits):")
    header = f"{'tactic':<8}" + "".join(f"n={s:<10}" for s in SIZES)
    print(header)
    for tactic, samples in latencies.items():
        row = f"{tactic:<8}" + "".join(
            f"{1000 * value:<12.3f}" for value in samples
        )
        print(row)

    # Linear tactic: 4x corpus -> clearly more work.
    assert latencies["rnd"][-1] > 2.0 * latencies["rnd"][0]
    # Sub-linear tactics: no comparable blow-up (generous 3x guard
    # against timer noise on a loaded machine).
    assert latencies["det"][-1] < 3.0 * max(latencies["det"][0], 1e-4)
    assert latencies["mitra"][-1] < 3.0 * max(latencies["mitra"][0], 1e-4)
