"""EXP-T1 — Table 1: the Service Provider Interfaces per operation.

Regenerates the paper's Table 1 from the declared mapping and verifies it
is *consistent with the code*: every interface named in the table exists
in the SPI registry, and every built-in tactic supporting an operation
implements the operation's mandatory query interface.  The benchmarked
unit is SPI introspection itself (the cost of the registry's dynamic
loading machinery).
"""

from repro.spi.descriptors import Operation, implemented_interfaces
from repro.spi.interfaces import CLOUD_INTERFACES, GATEWAY_INTERFACES, TABLE1
from repro.tactics import BUILTIN_TACTICS

_OPERATION_TO_GATEWAY_IFACE = {
    Operation.EQUALITY: "EqQuery",
    Operation.BOOLEAN: "BoolQuery",
    Operation.RANGE: "RangeQuery",
}


def render_table1() -> str:
    lines = ["Table 1 — Service Provider Interfaces (SPI)", ""]
    width = max(len(op) for op in TABLE1) + 2
    lines.append(f"{'Operation':<{width}}{'Gateway Interfaces':<44}"
                 f"Cloud Interfaces")
    lines.append("-" * (width + 64))
    for operation, sides in TABLE1.items():
        lines.append(
            f"{operation:<{width}}"
            f"{', '.join(sides['gateway']):<44}"
            f"{', '.join(sides['cloud'])}"
        )
    return "\n".join(lines)


def test_table1_interfaces_exist_in_code(benchmark):
    def introspect():
        rows = {}
        for descriptor, gateway_cls, cloud_cls in BUILTIN_TACTICS:
            rows[descriptor.name] = (
                implemented_interfaces(gateway_cls, "gateway"),
                implemented_interfaces(cloud_cls, "cloud"),
            )
        return rows

    rows = benchmark(introspect)
    assert len(rows) == 12

    # Every interface Table 1 names resolves to a real SPI ABC.
    for sides in TABLE1.values():
        for name in sides["gateway"]:
            if not name.startswith("<"):
                assert name in GATEWAY_INTERFACES, name
        for name in sides["cloud"]:
            assert name in CLOUD_INTERFACES, name

    # Tactics supporting an operation implement its query interface on
    # both sides (except BIEX's equality, served via BoolQuery).
    for descriptor, gateway_cls, cloud_cls in BUILTIN_TACTICS:
        gateway_ifaces = set(rows[descriptor.name][0])
        for operation, iface in _OPERATION_TO_GATEWAY_IFACE.items():
            if operation in descriptor.operations:
                if (descriptor.name.startswith("biex")
                        and operation is Operation.EQUALITY):
                    assert "BoolQuery" in gateway_ifaces
                else:
                    assert iface in gateway_ifaces, (
                        descriptor.name, operation
                    )

    print()
    print(render_table1())
