"""ABL-LEAK — attack success rate per protection class.

Measures what the protection-class ladder buys: the recovery rate of the
paper-cited inference attacks against a snapshot of the untrusted zone,
per tactic class, on the same skewed medical data.

Expected shape: DET (class 4) falls to frequency analysis on skewed
data; OPE (class 5) falls completely to the sorting attack; Mitra
(class 2) and RND (class 1) expose nothing attackable in a snapshot.
"""

import random

import pytest

from repro.analysis import (
    SnapshotAdversary,
    auxiliary_distribution,
    frequency_attack,
    sorting_attack,
)
from repro.core.middleware import DataBlinder
from repro.core.schema import FieldAnnotation, Schema

RECORDS = 80


def deploy(fresh_deployment, registry):
    cloud, transport = fresh_deployment()
    blinder = DataBlinder("leak", transport, registry=registry)
    schema = Schema.define(
        "record",
        id="string",
        diagnosis=("string", FieldAnnotation.parse("C4", "I,EQ")),
        patient=("string", FieldAnnotation.parse("C2", "I,EQ")),
        note=("string", FieldAnnotation.parse("C1", "I")),
        age=("int", FieldAnnotation.parse("C5", "I,RG")),
    )
    blinder.register_schema(schema)
    records = blinder.entities("record")

    rng = random.Random(7)
    # Strictly skewed so frequency ranks are unambiguous (ties would
    # only lower the attack's accuracy, not change the shape).
    diagnoses = (["hypertension"] * (RECORDS // 2)
                 + ["diabetes"] * (RECORDS // 4)
                 + ["asthma"] * (3 * RECORDS // 20)
                 + ["gastric-cancer"] * (RECORDS // 10))
    rng.shuffle(diagnoses)
    truth_age = {}
    for index, diagnosis in enumerate(diagnoses):
        doc_id = records.insert({
            "id": f"r{index}", "diagnosis": diagnosis,
            "patient": f"p-{index}", "note": f"n-{index}",
            "age": index,
        })
        truth_age[doc_id] = index
    return blinder, cloud, diagnoses, truth_age


def test_attack_accuracy_by_class(benchmark, fresh_deployment, registry):
    blinder, cloud, diagnoses, truth_age = deploy(fresh_deployment,
                                                  registry)
    adversary = SnapshotAdversary(cloud, "leak")

    executor = blinder._executor("record")
    det = executor._instances["diagnosis"]["eq"]
    ground_truth = {det.seal(v): v for v in set(diagnoses)}

    def attack_all():
        histogram = adversary.det_token_histogram("diagnosis",
                                                  schema="record")
        det_result = frequency_attack(
            histogram, auxiliary_distribution(diagnoses), ground_truth
        )
        ope_result = sorting_attack(
            adversary.ope_ciphertext_order("age", schema="record"),
            list(truth_age.values()), truth_age,
        )
        mitra_view = adversary.det_token_histogram("patient",
                                                   schema="record",
                                                   tactic="mitra")
        rnd_view = adversary.det_token_histogram("note", schema="record",
                                                 tactic="rnd")
        return det_result, ope_result, mitra_view, rnd_view

    det_result, ope_result, mitra_view, rnd_view = benchmark(attack_all)

    print()
    print("ABL-LEAK snapshot-attack recovery by protection class:")
    print(f"  C4 DET   frequency analysis : {det_result.render()}")
    print(f"  C5 OPE   sorting attack     : {ope_result.render()}")
    print(f"  C2 Mitra rankable artifacts : {len(mitra_view)}")
    print(f"  C1 RND   rankable artifacts : {len(rnd_view)}")

    assert det_result.accuracy == 1.0      # skewed data: full recovery
    assert ope_result.accuracy == 1.0      # dense domain: full recovery
    assert mitra_view == {} and rnd_view == {}
