"""EXP-F5 / EXP-OV — Figure 5: per-operation and overall throughput of
S_A (no protection), S_B (hard-coded tactics), S_C (DataBlinder).

The paper ran ~151k requests / ~50k documents / 1,000 Locust users over
two VMs; this regeneration is scaled down (pure-Python crypto, one core)
but keeps the workload mix (balanced read/write/aggregate over FHIR
Observations), the 8-tactic configuration (5×DET, Mitra, RND, Paillier)
and the closed-loop load shape.

Shape assertions (see EXPERIMENTS.md for the calibration discussion):

* S_A ≫ S_B — protection tactics cost a large factor.  The paper reports
  44%; with interpreted-Python crypto against an in-process datastore the
  ratio is necessarily larger, dominated by Paillier (which the paper
  itself singles out: "the Paillier queries ... having a considerable
  impact on the throughput").
* S_B ≈ S_C — the middleware layer itself is nearly free (paper: 1.4%).
  Asserted < 15% here; typically measures a few percent.
"""

import pytest

from repro.bench.loadgen import run_load
from repro.bench.report import (
    headline_ratios,
    render_figure5,
    render_run,
)
from repro.bench.scenarios import build_scenario
from repro.bench.workloads import Workload, WorkloadSpec

import os

# Scale knob: DATABLINDER_BENCH_OPS=2000 pytest benchmarks/... runs a
# longer experiment (the paper used ~151k requests; the default keeps CI
# fast while preserving the mix and shape).
OPERATIONS = int(os.environ.get("DATABLINDER_BENCH_OPS", "240"))
USERS = int(os.environ.get("DATABLINDER_BENCH_USERS", "4"))
SEED = 2019


def run_all_scenarios(fresh_deployment):
    reports = {}
    for name in ("S_A", "S_B", "S_C"):
        _, transport = fresh_deployment()
        app = build_scenario(name, transport)
        workload = Workload(WorkloadSpec(operations=OPERATIONS, seed=SEED))
        result = run_load(app, workload, users=USERS)
        assert not result.errors, result.errors[:3]
        reports[name] = result.report
    return reports


@pytest.fixture(scope="module")
def scenario_reports(request, registry):
    from repro.cloud.server import CloudZone
    from repro.net.transport import InProcTransport

    def factory():
        cloud = CloudZone(registry)
        return cloud, InProcTransport(cloud.host)

    return run_all_scenarios(factory)


def test_figure5_throughput(benchmark, fresh_deployment):
    reports = benchmark.pedantic(
        run_all_scenarios, args=(fresh_deployment,), rounds=1, iterations=1
    )
    ratios = headline_ratios(reports)

    print()
    print(render_figure5(reports))
    for report in reports.values():
        print()
        print(render_run(report))

    # Shape: protection costs a lot; the middleware layer costs little.
    assert ratios.tactic_loss_percent > 40.0
    assert ratios.middleware_loss_percent < 15.0

    # Per-operation ordering of Figure 5 holds for every operation type.
    for operation in ("insert", "eq_search", "aggregate", "overall"):
        t_a = reports["S_A"].per_operation[operation].throughput
        t_b = reports["S_B"].per_operation[operation].throughput
        assert t_a > t_b, operation


def test_middleware_delta_is_small(scenario_reports):
    """EXP-OV: S_B -> S_C loss stays within a small band (paper: 1.4%)."""
    ratios = headline_ratios(scenario_reports)
    assert -10.0 < ratios.middleware_loss_percent < 15.0
