"""EXP-GATEWAY — concurrent users through the async gateway runtime.

The tentpole refactor replaces blocking-thread-per-operation concurrency
with an asyncio event-loop core behind the unchanged sync API.  This
benchmark measures what that buys under the paper's deployment shape:
many simulated clients (64 / 256 / 1024) driving the §5.2 workload mix
over the 40 ms one-way gateway→cloud WAN link, three ways:

* **threadpool** — the pre-refactor model: plain sync ``Entities``
  behind a ``ThreadPoolExecutor()`` with Python's default sizing
  (``min(32, cores + 4)``).  Every in-flight operation pins a worker
  thread for its full WAN round trips, so throughput is capped at
  ``workers / latency`` no matter how many clients arrive.
* **sync_facade** — the same blocking callers, but through
  :class:`~repro.gateway.runtime.SyncGateway`: each call is admitted
  onto the shared event loop, where the modelled WAN sleeps overlap.
* **async_native** — coroutine clients submitting straight into
  :class:`~repro.gateway.runtime.AsyncGatewayRuntime`; no
  thread-per-client anywhere.

All three modes run the identical pipeline (batched writes, fan-out,
prefetch, precomputed crypto kernels), so the measured difference is
purely the concurrency model.  Every runtime-mode operation carries a
deadline; the run asserts none expired (no starvation under load).

Timed searches and aggregates target a pre-seeded corpus while timed
inserts use a disjoint patient cohort: Mitra's update protocol bumps its
gateway-side counter before the batched index entry reaches the cloud,
so a concurrent search on the *same* keyword would observe a gap.
Keyword-disjoint reads and writes keep the mix race-free without
serialising it.

Results land in ``BENCH_gateway.json`` at the repo root.  Run standalone
with ``python benchmarks/bench_gateway.py --smoke`` for the reduced CI
profile.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.bench.loadgen import LoadResult, run_load
from repro.bench.metrics import MetricsRecorder
from repro.bench.workloads import (
    OP_AGGREGATE,
    OP_EQ_SEARCH,
    OP_INSERT,
    SEARCHABLE_FIELDS,
    Operation,
)
from repro.core.middleware import DataBlinder
from repro.core.query import AggregateQuery, Eq
from repro.crypto.kernels.config import CryptoConfig
from repro.fhir.generator import MedicalDataGenerator
from repro.fhir.model import benchmark_observation_schema
from repro.net.batch import PipelineConfig
from repro.net.latency import NetworkModel
from repro.net.transport import InProcTransport
from repro.spi.descriptors import Aggregate

#: The paper's gateway→public-cloud link.
WAN_ONE_WAY_MS = 40.0
#: Generous per-operation deadline; the starvation check asserts no
#: operation expired, so it must sit far above honest queueing delay.
DEADLINE_S = 120.0
SEED = 2019

CLIENT_SCALES = tuple(
    int(n) for n in os.environ.get(
        "DATABLINDER_GATEWAY_BENCH_CLIENTS", "64,256,1024"
    ).split(",")
)
#: Async-vs-threadpool speedup floor, asserted at the largest scale
#: >= 256 present in the run (the acceptance setting).  The CI smoke
#: runs tiny scales where queueing never builds up, and lowers it.
SPEEDUP_FLOOR = float(
    os.environ.get("DATABLINDER_GATEWAY_BENCH_FLOOR", "4.0")
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_gateway.json"
)
RESULTS: dict = {}

PIPELINE = PipelineConfig(
    batch_writes=True, fanout_workers=4, prefetch=True,
    crypto=CryptoConfig(precompute=True),
)


def deploy(registry, application):
    from repro.cloud.server import CloudZone

    cloud = CloudZone(registry)
    transport = InProcTransport(
        cloud.host,
        NetworkModel(one_way_latency_ms=WAN_ONE_WAY_MS, sleep=True),
    )
    blinder = DataBlinder(application, transport, registry=registry,
                          verify_results=False, pipeline=PIPELINE)
    blinder.register_schema(benchmark_observation_schema())
    return blinder


def gateway_workload(operations, seed=SEED):
    """A seed corpus plus ``operations`` timed steps of the §5.2 mix.

    Searches and aggregates draw their keywords from the seed corpus
    only; timed inserts use a disjoint cohort (see the module docstring
    for why the Mitra keyword spaces must not overlap mid-flight).
    """
    rng = random.Random(seed)
    generator = MedicalDataGenerator(seed)
    search_cohort = [generator.patient() for _ in range(8)]
    insert_cohort = [generator.patient() for _ in range(8)]
    seed_docs = [
        generator.observation(rng.choice(search_cohort)).to_document()
        for _ in range(max(12, operations // 8))
    ]
    values = {
        field: [d[field] for d in seed_docs if d.get(field) is not None]
        for field in SEARCHABLE_FIELDS
    }
    subjects = [d["subject"] for d in seed_docs]
    timed = []
    for kind in rng.choices(
        [OP_INSERT, OP_EQ_SEARCH, OP_AGGREGATE],
        weights=[1, 1, 1], k=operations,
    ):
        if kind == OP_INSERT:
            timed.append(Operation(OP_INSERT, document=generator
                         .observation(rng.choice(insert_cohort))
                         .to_document()))
        elif kind == OP_EQ_SEARCH:
            field = rng.choice(SEARCHABLE_FIELDS)
            candidates = values[field]
            timed.append(Operation(
                OP_EQ_SEARCH, field=field,
                value=rng.choice(candidates) if candidates else "final",
            ))
        else:
            timed.append(Operation(
                OP_AGGREGATE, agg_field="value", where_field="subject",
                where_value=rng.choice(subjects),
            ))
    return seed_docs, timed


# -- the three concurrency modes ----------------------------------------------


class PooledGatewayApp:
    """Pre-refactor baseline: blocking operations on a default-sized
    thread pool.  ``ThreadPoolExecutor()`` is ``min(32, cores + 4)``
    workers — the sizing a sync service gets out of the box, which
    couples in-flight operations to threads."""

    name = "threadpool"

    def __init__(self, blinder: DataBlinder):
        self._entities = blinder.entities("observation")
        self._pool = ThreadPoolExecutor()

    @property
    def workers(self) -> int:
        return self._pool._max_workers

    def insert(self, document):
        return self._pool.submit(self._entities.insert, document).result()

    def eq_search(self, field, value):
        return self._pool.submit(self._entities.find,
                                 Eq(field, value)).result()

    def average(self, field, where_field, where_value):
        return self._pool.submit(
            self._entities.aggregate,
            AggregateQuery(Aggregate.AVG, field,
                           where=Eq(where_field, where_value)),
        ).result()

    def close(self):
        self._pool.shutdown(wait=False)


class FacadeGatewayApp:
    """The same blocking callers through the ``SyncGateway`` façade."""

    name = "sync_facade"

    def __init__(self, blinder: DataBlinder, users: int):
        self._gateway = blinder.sync_gateway(
            principal="bench", deadline_s=DEADLINE_S,
            max_in_flight=users, max_queue=4 * users,
        )
        self._entities = self._gateway.entities("observation")

    def insert(self, document):
        return self._entities.insert(document)

    def eq_search(self, field, value):
        return self._entities.find(Eq(field, value))

    def average(self, field, where_field, where_value):
        return self._entities.aggregate(
            AggregateQuery(Aggregate.AVG, field,
                           where=Eq(where_field, where_value))
        )

    def close(self):
        self._gateway.close()


def run_async_load(blinder: DataBlinder, operations, users: int,
                   name: str = "async_native") -> LoadResult:
    """Closed-loop coroutine clients over the gateway runtime.

    The coroutine twin of :func:`repro.bench.loadgen.run_load`: ``users``
    coroutine workers pull operations from a shared queue, submit each
    through :meth:`AsyncGatewayRuntime.submit` (admission, deadline,
    audit) and record its end-to-end latency."""
    runtime = blinder.async_runtime(
        max_in_flight=users, max_queue=4 * users,
        default_deadline_s=DEADLINE_S,
    )
    aentities = runtime.entities("observation")
    recorder = MetricsRecorder()
    errors: list[str] = []

    def make(operation):
        if operation.kind == OP_INSERT:
            return lambda: aentities.insert(dict(operation.document))
        if operation.kind == OP_EQ_SEARCH:
            return lambda: aentities.find(
                Eq(operation.field, operation.value)
            )
        return lambda: aentities.aggregate(AggregateQuery(
            Aggregate.AVG, operation.agg_field,
            where=Eq(operation.where_field, operation.where_value),
        ))

    async def user(queue: asyncio.Queue) -> None:
        while True:
            try:
                operation = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            started = time.perf_counter()
            try:
                await asyncio.wrap_future(runtime.submit(
                    make(operation), principal="bench",
                    op=operation.kind,
                ))
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                errors.append(f"{operation.kind}: {exc}")
            else:
                recorder.record(operation.kind,
                                time.perf_counter() - started)

    async def main() -> None:
        queue: asyncio.Queue = asyncio.Queue()
        for operation in operations:
            queue.put_nowait(operation)
        await asyncio.gather(*[user(queue) for _ in range(users)])

    started = time.perf_counter()
    asyncio.run(main())
    elapsed = time.perf_counter() - started
    return LoadResult(report=recorder.report(name, elapsed=elapsed),
                      errors=errors)


# -- measurement --------------------------------------------------------------


def stats_dict(report):
    # One shared spelling for every BENCH_*.json (p50/p75/p95/p99).
    return report.per_operation["overall"].as_dict()


def measure_scale(registry, users):
    seed_docs, timed = gateway_workload(users)
    row = {}

    blinder = deploy(registry, f"bench-gw-pool-{users}")
    blinder.entities("observation").insert_many(
        [dict(d) for d in seed_docs]
    )
    app = PooledGatewayApp(blinder)
    result = run_load(app, timed, users=users)
    assert not result.errors, result.errors[:3]
    row["threadpool"] = stats_dict(result.report)
    row["threadpool"]["workers"] = app.workers
    app.close()

    blinder = deploy(registry, f"bench-gw-facade-{users}")
    blinder.entities("observation").insert_many(
        [dict(d) for d in seed_docs]
    )
    app = FacadeGatewayApp(blinder, users)
    result = run_load(app, timed, users=users)
    assert not result.errors, result.errors[:3]
    snapshot = blinder.async_runtime().stats.snapshot()
    app.close()
    assert snapshot["expired"] == 0, snapshot
    row["sync_facade"] = stats_dict(result.report)
    row["sync_facade"]["expired"] = snapshot["expired"]

    blinder = deploy(registry, f"bench-gw-async-{users}")
    blinder.entities("observation").insert_many(
        [dict(d) for d in seed_docs]
    )
    result = run_async_load(blinder, timed, users)
    assert not result.errors, result.errors[:3]
    runtime = blinder.async_runtime()
    snapshot = runtime.stats.snapshot()
    runtime.close()
    assert snapshot["expired"] == 0, snapshot
    assert snapshot["completed"] == len(timed)
    row["async_native"] = stats_dict(result.report)
    row["async_native"]["expired"] = snapshot["expired"]

    base = row["threadpool"]["throughput_ops_s"]
    row["speedup_async_vs_threadpool"] = round(
        row["async_native"]["throughput_ops_s"] / base, 2
    )
    row["speedup_facade_vs_threadpool"] = round(
        row["sync_facade"]["throughput_ops_s"] / base, 2
    )
    return row


def render_row(users, row):
    lines = [f"  {users} clients:"]
    for mode in ("threadpool", "sync_facade", "async_native"):
        s = row[mode]
        lines.append(
            f"    {mode:<12} {s['throughput_ops_s']:>8.1f} ops/s   "
            f"p50 {s['p50_ms']:>7.0f} ms   p95 {s['p95_ms']:>7.0f} ms   "
            f"p99 {s['p99_ms']:>7.0f} ms"
        )
    lines.append(
        f"    async {row['speedup_async_vs_threadpool']:.1f}x / facade "
        f"{row['speedup_facade_vs_threadpool']:.1f}x over threadpool"
    )
    return "\n".join(lines)


def test_concurrent_user_scaling(registry):
    """64/256/1024 clients, three concurrency models, one WAN."""
    print(f"\nEXP-GATEWAY mixed workload on "
          f"{WAN_ONE_WAY_MS:.0f} ms one-way WAN")
    scales = {}
    for users in CLIENT_SCALES:
        scales[str(users)] = measure_scale(registry, users)
        print(render_row(users, scales[str(users)]))

    RESULTS["scales"] = scales
    RESULTS["config"] = {
        "wan_one_way_ms": WAN_ONE_WAY_MS,
        "deadline_s": DEADLINE_S,
        "client_scales": list(CLIENT_SCALES),
        "mix": {"insert": 1 / 3, "eq_search": 1 / 3,
                "aggregate": 1 / 3},
        "speedup_floor": SPEEDUP_FLOOR,
        "pipeline": {
            "batch_writes": True, "fanout_workers": 4,
            "prefetch": True, "crypto_precompute": True,
        },
    }
    RESULTS_PATH.write_text(json.dumps(RESULTS, indent=2) + "\n")
    print(f"results written to {RESULTS_PATH}")

    # Acceptance: at the headline scale the event-loop core beats the
    # thread-pool gateway by the floor factor, and the facade — same
    # blocking callers, new runtime — carries most of that win.
    headline = [u for u in CLIENT_SCALES if u >= 256]
    for users in headline or list(CLIENT_SCALES):
        row = scales[str(users)]
        assert row["speedup_async_vs_threadpool"] >= SPEEDUP_FLOOR, row
        assert (row["speedup_facade_vs_threadpool"]
                >= SPEEDUP_FLOOR * 0.75), row
    # More clients must not melt the loop: async throughput at the top
    # scale stays within 40% of the smallest scale's.
    first = scales[str(CLIENT_SCALES[0])]["async_native"]
    last = scales[str(CLIENT_SCALES[-1])]["async_native"]
    assert last["throughput_ops_s"] >= 0.6 * first["throughput_ops_s"]


def main(argv: list[str]) -> int:
    """Standalone entry point; ``--smoke`` shrinks the workload for CI."""
    import pytest

    if "--smoke" in argv:
        os.environ["DATABLINDER_GATEWAY_BENCH_CLIENTS"] = "8,16"
        os.environ["DATABLINDER_GATEWAY_BENCH_FLOOR"] = "0.0"
        global CLIENT_SCALES, SPEEDUP_FLOOR
        CLIENT_SCALES = (8, 16)
        SPEEDUP_FLOOR = 0.0
    return pytest.main(["-q", "-s", __file__])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
