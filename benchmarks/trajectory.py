"""Merge every ``BENCH_*.json`` artifact into one perf-trajectory table.

Each subsystem benchmark writes its acceptance numbers to a JSON file at
the repo root; this script folds them into a single markdown table — one
row per optimisation, baseline vs optimised vs headline factor — so the
README can show the repo's performance trajectory without anyone
hand-copying numbers.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py            # print table
    PYTHONPATH=src python benchmarks/trajectory.py --write    # refresh README

``--write`` replaces the block between the ``<!-- trajectory:begin -->``
/ ``<!-- trajectory:end -->`` markers in ``README.md`` (appending the
section if the markers are missing).  Artifacts that have not been
generated yet are simply skipped, so a partial checkout still renders.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
README = ROOT / "README.md"
BEGIN = "<!-- trajectory:begin -->"
END = "<!-- trajectory:end -->"


def _load(name: str) -> dict | None:
    path = ROOT / name
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _fmt(value: float, unit: str = "") -> str:
    text = f"{value:,.1f}" if value < 1000 else f"{value:,.0f}"
    return f"{text}{unit}"


def rows() -> list[tuple[str, str, str, str, str]]:
    """(optimisation, benchmark, baseline, optimised, headline)."""
    out = []

    data = _load("BENCH_batching.json")
    if data:
        t = data["throughput_ops_per_s"]
        out.append((
            "batched RPC + fan-out + prefetch", "bench_batching.py",
            _fmt(t["baseline"], " ops/s"), _fmt(t["pipelined"], " ops/s"),
            f"{t['speedup']:.1f}x mixed workload",
        ))

    data = _load("BENCH_planner.json")
    if data:
        adaptive = data["adaptive_vs_static"]
        cache = data["plan_cache"]
        out.append((
            "query planner: plan cache + adaptive routing",
            "bench_planner.py",
            _fmt(1000 * adaptive["static_mean_s"], " ms/query"),
            _fmt(1000 * adaptive["adaptive_mean_s"], " ms/query"),
            f"{adaptive['speedup']:.0f}x around a degraded tactic; "
            f"{100 * cache['hit_rate']:.0f}% plan-cache hits",
        ))

    data = _load("BENCH_crypto.json")
    if data:
        grid = data["insert_many"]["grid"]
        out.append((
            "crypto kernels: precompute + process pool",
            "bench_crypto.py",
            _fmt(grid["baseline"]["insert_docs_per_s"], " docs/s"),
            _fmt(grid["precompute"]["insert_docs_per_s"], " docs/s"),
            f"{data['insert_many']['speedup_precompute_vs_baseline']:.1f}x "
            "protected inserts",
        ))

    data = _load("BENCH_sharding.json")
    if data:
        fanout = data["fanout_at_8_shards"]
        out.append((
            "sharded zone: parallel scatter/gather", "bench_sharding.py",
            _fmt(fanout["sequential_search_ops_per_s"], " ops/s"),
            _fmt(fanout["parallel_search_ops_per_s"], " ops/s"),
            f"{fanout['speedup']:.1f}x searches at 8 shards",
        ))

    data = _load("BENCH_gateway.json")
    if data:
        scales = data["scales"]
        top = max(scales, key=int)
        row = scales[top]
        out.append((
            "async gateway runtime", "bench_gateway.py",
            _fmt(row["threadpool"]["throughput_ops_s"], " ops/s"),
            _fmt(row["async_native"]["throughput_ops_s"], " ops/s"),
            f"{row['speedup_async_vs_threadpool']:.1f}x at "
            f"{top} concurrent clients",
        ))

    data = _load("BENCH_integrity.json")
    if data:
        overhead = data["overhead_pct"]
        out.append((
            "integrity: proof-on-fetch verification",
            "bench_integrity.py",
            _fmt(data["modes"]["off"]["throughput_ops_s"], " ops/s"),
            _fmt(data["modes"]["fetch"]["throughput_ops_s"], " ops/s"),
            f"+{overhead['fetch']:.1f}% for 100% tamper/rollback "
            "detection",
        ))

    data = _load("BENCH_cache.json")
    if data:
        hot = data["hot_read"]
        coherence = data["coherence"]
        out.append((
            "gateway read-cache tier", "bench_cache.py",
            _fmt(hot["uncached"]["throughput_ops_s"], " ops/s"),
            _fmt(hot["cached"]["throughput_ops_s"], " ops/s"),
            f"{hot['speedup']:.1f}x Zipf hot reads, "
            f"{coherence['stale_reads']} stale reads with a "
            "concurrent writer",
        ))

    return out


def render() -> str:
    lines = [
        "| optimisation | benchmark | baseline | optimised | headline |",
        "|---|---|---|---|---|",
    ]
    for name, bench, base, optimised, headline in rows():
        lines.append(
            f"| {name} | `{bench}` | {base} | {optimised} "
            f"| {headline} |"
        )
    return "\n".join(lines)


def write_readme(table: str) -> None:
    text = README.read_text()
    block = (
        f"{BEGIN}\n"
        "All numbers regenerate from `BENCH_*.json` via "
        "`python benchmarks/trajectory.py --write` — WAN legs model the "
        "paper's 40 ms one-way link.\n\n"
        f"{table}\n{END}"
    )
    if BEGIN in text and END in text:
        head, rest = text.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
        text = head + block + tail
    else:
        section = f"\n## Performance trajectory\n\n{block}\n"
        marker = "\n## Security notes"
        if marker in text:
            text = text.replace(marker, section + marker, 1)
        else:
            text = text.rstrip() + "\n" + section
    README.write_text(text)


def main(argv: list[str]) -> int:
    table = render()
    print(table)
    if "--write" in argv:
        write_readme(table)
        print(f"\nREADME refreshed: {README}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
