"""EXP-UC — the §5.1 use case: annotation-driven tactic selection on the
FHIR Observation schema.

Regenerates the paper's 'Sensitives / Tactic Selection / Reason' table
from the annotated schema, asserts the selection matches the paper row by
row, and benchmarks the adaptive selection machinery itself (the cost of
planning a schema — pure middleware overhead).
"""

from repro.core.policy import audit_plans, render_policy_table
from repro.core.selection import TacticSelector
from repro.fhir.model import benchmark_observation_schema, observation_schema

PAPER_SELECTION = {
    "status": {"biex-2lev"},
    "code": {"biex-2lev"},
    "subject": {"mitra"},
    "effective": {"det", "ope"},
    "issued": {"det", "ope"},
    "performer": {"rnd"},
    "value": {"biex-2lev", "paillier"},
}


def test_usecase_selection(benchmark, registry):
    selector = TacticSelector(registry)
    schema = observation_schema()

    plans = benchmark(selector.plan_schema, schema)

    for field, expected in PAPER_SELECTION.items():
        assert set(plans[field].tactic_names) == expected, field

    reports = audit_plans(plans, registry)
    assert all(r.compliant for r in reports)

    print()
    print("Use case §5.1 — tactic selection for the Observation schema")
    print()
    print(render_policy_table(reports))
    print()
    print("Annotations:")
    for field, plan in sorted(plans.items()):
        print(f"  {field:<10} {plan.annotation.describe()}")


def test_benchmark_schema_selection(benchmark, registry):
    """§5.2 configuration: 8 tactic instances (5×DET, Mitra, RND,
    Paillier)."""
    selector = TacticSelector(registry)
    plans = benchmark(selector.plan_schema, benchmark_observation_schema())
    instances = [t for plan in plans.values() for t in plan.tactic_names]
    assert sorted(instances) == sorted(
        ["det"] * 5 + ["mitra", "rnd", "paillier"]
    )
