"""EXP-CACHE — the gateway read-cache tier under the paper's WAN.

Three legs, one artifact (``BENCH_cache.json``):

* **hot_read** — a Zipf(1.1) read stream (the classic skew of real
  query logs) over the 40 ms one-way gateway→cloud link, caching off vs
  on.  Hot repeats are answered at the gateway — no index round, no
  fetch round — so throughput must clear ``SPEEDUP_FLOOR`` (5x at the
  acceptance settings).
* **adversarial** — every query unique: a 0% hit-rate stream where the
  cache can only lose.  The measured overhead of running with the tier
  on must stay within ``OVERHEAD_CEILING`` (5%) of the tier-off time.
* **coherence** — two gateways, one untrusted zone, integrity on.  A
  writer updates through gateway B while reader A serves the same query
  from its cache; every observation A makes must already include B's
  latest acknowledged write (the freshness-ledger stamp turns remote
  writes into cache misses).  Stale reads tolerated: zero.

Run standalone: ``python benchmarks/bench_cache.py`` (or ``--smoke``
for the reduced CI profile).
"""

from __future__ import annotations

import json
import os
import random
import sys
import threading
import time
from pathlib import Path

from repro.bench.metrics import MetricsRecorder
from repro.cache import CacheConfig
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq, Range
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.integrity import IntegrityConfig
from repro.keys.hsm import SimulatedHsm
from repro.keys.keystore import KeyStore
from repro.net.batch import PipelineConfig
from repro.net.latency import NetworkModel
from repro.net.transport import InProcTransport
from repro.tactics import register_builtin_tactics

#: The paper's gateway→public-cloud link.
WAN_ONE_WAY_MS = 40.0
SEED = 2019
ZIPF_S = 1.1

#: Acceptance floors/ceilings; the CI smoke lowers them (tiny op counts
#: leave the constant per-run costs unamortised).
SPEEDUP_FLOOR = float(
    os.environ.get("DATABLINDER_CACHE_BENCH_FLOOR", "5.0")
)
OVERHEAD_CEILING = float(
    os.environ.get("DATABLINDER_CACHE_BENCH_OVERHEAD", "0.05")
)
HOT_OPS = int(os.environ.get("DATABLINDER_CACHE_BENCH_HOT_OPS", "150"))
BASELINE_OPS = int(
    os.environ.get("DATABLINDER_CACHE_BENCH_BASE_OPS", "40")
)
UNIQUE_OPS = int(
    os.environ.get("DATABLINDER_CACHE_BENCH_UNIQUE_OPS", "30")
)
COHERENCE_ROUNDS = int(
    os.environ.get("DATABLINDER_CACHE_BENCH_ROUNDS", "30")
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_cache.json"
)
RESULTS: dict = {}


def cache_schema() -> Schema:
    """Cache-admissible §5.1-style schema (every class >= C2)."""
    return Schema.define(
        "obs",
        status=("string", FieldAnnotation.parse("C4", "I,EQ")),
        patient=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        effective=("int", FieldAnnotation.parse("C5", "I,EQ,RG",
                                                "min,max")),
        value=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
        note="string",
    )


def corpus(size: int = 48) -> list[dict]:
    return [
        {
            "status": ["final", "draft", "amended", "corrected"][i % 4],
            "patient": f"p{i % 8}",
            "effective": i * 3 % 60,
            "value": float(i % 9),
            "note": f"note {i}",
        }
        for i in range(size)
    ]


def deploy(application, cache=None, wan=True, cloud=None, registry=None,
           keystore=None, integrity=False):
    if registry is None:
        registry = TacticRegistry()
        register_builtin_tactics(registry)
    if cloud is None:
        cloud = CloudZone(registry)
    model = (NetworkModel(one_way_latency_ms=WAN_ONE_WAY_MS, sleep=True)
             if wan else None)
    transport = InProcTransport(cloud.host, model)
    pipeline = PipelineConfig(
        cache=cache,
        integrity=IntegrityConfig() if integrity else None,
    )
    blinder = DataBlinder(application, transport, registry=registry,
                          keystore=keystore, pipeline=pipeline)
    blinder.register_schema(cache_schema())
    return blinder, cloud, registry


def zipf_stream(population, draws, rng):
    """Zipf(ZIPF_S) draws over a ranked query population."""
    weights = [1.0 / (rank + 1) ** ZIPF_S
               for rank in range(len(population))]
    return rng.choices(population, weights=weights, k=draws)


def read_population(entities, doc_ids):
    """The distinct hot-set: finds, counts, aggregates and point gets."""
    population = [
        lambda e: e.find(Eq("status", "final")),
        lambda e: e.find(Eq("status", "draft")),
        lambda e: e.count(Eq("status", "amended")),
        lambda e: e.find(Eq("patient", "p1")),
        lambda e: e.find(Eq("patient", "p3")),
        lambda e: e.count(Eq("patient", "p5")),
        lambda e: e.find(Range("effective", 10, 30)),
        lambda e: e.sum("value"),
        lambda e: e.average("value", where=Eq("status", "final")),
        lambda e: e.find_sorted("effective", limit=10),
    ]
    for doc_id in doc_ids[:10]:
        population.append(lambda e, d=doc_id: e.get(d))
    return population


def run_stream(entities, stream, recorder, label):
    started = time.perf_counter()
    for op in stream:
        with recorder.timed(label):
            op(entities)
    return time.perf_counter() - started


def leg_hot_read():
    docs = corpus()
    rng = random.Random(SEED)

    off, _, _ = deploy("bench-cache-off", cache=None)
    ids_off = off.entities("obs").insert_many([dict(d) for d in docs])
    on, _, _ = deploy("bench-cache-on", cache=CacheConfig())
    ids_on = on.entities("obs").insert_many([dict(d) for d in docs])

    # The same ranked population on both sides; the stream is re-drawn
    # with the same seed so both gateways see the same skew.
    pop_off = read_population(off.entities("obs"), sorted(ids_off))
    pop_on = read_population(on.entities("obs"), sorted(ids_on))
    stream_indices = zipf_stream(range(len(pop_off)), HOT_OPS, rng)

    recorder = MetricsRecorder()
    base = run_stream(
        off.entities("obs"),
        [pop_off[i] for i in stream_indices[:BASELINE_OPS]],
        recorder, "uncached",
    )
    hot = run_stream(
        on.entities("obs"),
        [pop_on[i] for i in stream_indices],
        recorder, "cached",
    )
    report = recorder.report("hot_read")
    uncached = report.per_operation["uncached"]
    cached = report.per_operation["cached"]
    base_tput = BASELINE_OPS / base if base else 0.0
    hot_tput = HOT_OPS / hot if hot else 0.0
    speedup = hot_tput / base_tput if base_tput else 0.0
    snapshot = on.runtime.cache_tier.snapshot()
    row = {
        "uncached": dict(uncached.as_dict(),
                         throughput_ops_s=round(base_tput, 2)),
        "cached": dict(cached.as_dict(),
                       throughput_ops_s=round(hot_tput, 2)),
        "speedup": round(speedup, 2),
        "zipf_s": ZIPF_S,
        "distinct_queries": len(pop_on),
        "cache": {
            "results": snapshot["results"],
            "documents": snapshot["documents"],
            "tokens": snapshot["tokens"],
        },
    }
    return row, speedup


def unique_query_stream(count):
    """Queries that never repeat — and never hit."""
    return [
        (lambda e, v=f"absent-{i}": e.find(Eq("note", v)))
        if i % 2 else
        (lambda e, lo=1000 + 2 * i: e.find(Range("effective", lo,
                                                 lo + 1)))
        for i in range(count)
    ]


def leg_adversarial():
    docs = corpus()
    off, _, _ = deploy("bench-adv-off", cache=None)
    off.entities("obs").insert_many([dict(d) for d in docs])
    on, _, _ = deploy("bench-adv-on", cache=CacheConfig())
    on.entities("obs").insert_many([dict(d) for d in docs])

    recorder = MetricsRecorder()
    t_off = run_stream(off.entities("obs"),
                       unique_query_stream(UNIQUE_OPS),
                       recorder, "cache_off")
    t_on = run_stream(on.entities("obs"),
                      unique_query_stream(UNIQUE_OPS),
                      recorder, "cache_on")
    overhead = (t_on - t_off) / t_off if t_off else 0.0
    report = recorder.report("adversarial")
    stats = on.runtime.cache_tier.snapshot()
    row = {
        "cache_off": report.per_operation["cache_off"].as_dict(),
        "cache_on": report.per_operation["cache_on"].as_dict(),
        "overhead_fraction": round(overhead, 4),
        "result_hits": stats["results"]["hits"],
    }
    return row, overhead, stats["results"]["hits"]


def leg_coherence():
    """Two gateways, one zone, integrity on, no modelled WAN (this leg
    measures correctness, not latency)."""
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    hsm = SimulatedHsm()
    reader, _, _ = deploy(
        "bench-coherent", cache=CacheConfig(), wan=False, cloud=cloud,
        registry=registry, keystore=KeyStore("bench-coherent", hsm=hsm),
        integrity=True,
    )
    writer, _, _ = deploy(
        "bench-coherent", cache=CacheConfig(), wan=False, cloud=cloud,
        registry=registry, keystore=KeyStore("bench-coherent", hsm=hsm),
        integrity=True,
    )
    docs = corpus(12)
    ids = writer.entities("obs").insert_many(docs)
    target = ids[0]

    stale = 0
    # Phase 1 — acknowledged-write visibility: after every write B
    # completes, A's very next (cache-eligible) read must see it.
    for round_no in range(COHERENCE_ROUNDS):
        expected = float(1000 + round_no)
        writer.entities("obs").update(target, {"value": expected})
        seen = reader.entities("obs").get(target)["value"]
        if seen != expected:
            stale += 1
        # Repeat read exercises the validated-hit path too.
        if reader.entities("obs").get(target)["value"] != expected:
            stale += 1

    # Phase 2 — concurrent writer: A polls while B writes a monotone
    # counter; A's observations must never go backwards.
    observations: list[float] = []
    done = threading.Event()

    def write_loop():
        for i in range(COHERENCE_ROUNDS):
            writer.entities("obs").update(
                target, {"value": float(2000 + i)}
            )
        done.set()

    thread = threading.Thread(target=write_loop)
    thread.start()
    while not done.is_set():
        observations.append(reader.entities("obs").get(target)["value"])
    thread.join()
    final = reader.entities("obs").get(target)["value"]
    observations.append(final)
    monotone = all(a <= b for a, b in
                   zip(observations, observations[1:]))
    if not monotone:
        stale += 1

    tier = reader.runtime.cache_tier
    row = {
        "rounds": COHERENCE_ROUNDS,
        "stale_reads": stale,
        "final_value_seen": final,
        "final_value_written": float(2000 + COHERENCE_ROUNDS - 1),
        "monotone_under_concurrent_writer": monotone,
        "concurrent_observations": len(observations),
        "coherence_validations": tier.coherence_validations,
        "stamp_mismatches": tier.stamp_mismatches,
    }
    return row, stale, final == float(2000 + COHERENCE_ROUNDS - 1)


def test_cache_tier_acceptance():
    print(f"\nEXP-CACHE read-cache tier on "
          f"{WAN_ONE_WAY_MS:.0f} ms one-way WAN")

    hot, speedup = leg_hot_read()
    print(f"  hot_read: Zipf({ZIPF_S}) over "
          f"{hot['distinct_queries']} queries — "
          f"{hot['uncached']['throughput_ops_s']:.1f} -> "
          f"{hot['cached']['throughput_ops_s']:.1f} ops/s "
          f"({speedup:.1f}x)")

    adversarial, overhead, adv_hits = leg_adversarial()
    print(f"  adversarial: 0% hit rate, overhead "
          f"{100 * overhead:+.1f}% (ceiling "
          f"{100 * OVERHEAD_CEILING:.0f}%)")

    coherence, stale, saw_final = leg_coherence()
    print(f"  coherence: {coherence['rounds']} write/read rounds + "
          f"concurrent writer — {stale} stale reads, "
          f"{coherence['stamp_mismatches']} stamp mismatches")

    RESULTS.update({
        "hot_read": hot,
        "adversarial": adversarial,
        "coherence": coherence,
        "config": {
            "wan_one_way_ms": WAN_ONE_WAY_MS,
            "zipf_s": ZIPF_S,
            "hot_ops": HOT_OPS,
            "baseline_ops": BASELINE_OPS,
            "unique_ops": UNIQUE_OPS,
            "coherence_rounds": COHERENCE_ROUNDS,
            "speedup_floor": SPEEDUP_FLOOR,
            "overhead_ceiling": OVERHEAD_CEILING,
        },
    })
    RESULTS_PATH.write_text(json.dumps(RESULTS, indent=2) + "\n")
    print(f"results written to {RESULTS_PATH}")

    # Acceptance.
    assert speedup >= SPEEDUP_FLOOR, hot
    assert overhead <= OVERHEAD_CEILING, adversarial
    assert adv_hits == 0, adversarial
    assert stale == 0, coherence
    assert saw_final, coherence


def main(argv: list[str]) -> int:
    """Standalone entry point; ``--smoke`` shrinks the workload for CI."""
    import pytest

    if "--smoke" in argv:
        overrides = {
            "DATABLINDER_CACHE_BENCH_HOT_OPS": "40",
            "DATABLINDER_CACHE_BENCH_BASE_OPS": "10",
            "DATABLINDER_CACHE_BENCH_UNIQUE_OPS": "8",
            "DATABLINDER_CACHE_BENCH_ROUNDS": "8",
            "DATABLINDER_CACHE_BENCH_FLOOR": "2.0",
            "DATABLINDER_CACHE_BENCH_OVERHEAD": "0.25",
        }
        os.environ.update(overrides)
        global HOT_OPS, BASELINE_OPS, UNIQUE_OPS, COHERENCE_ROUNDS
        global SPEEDUP_FLOOR, OVERHEAD_CEILING
        HOT_OPS, BASELINE_OPS, UNIQUE_OPS = 40, 10, 8
        COHERENCE_ROUNDS = 8
        SPEEDUP_FLOOR, OVERHEAD_CEILING = 2.0, 0.25
    return pytest.main(["-q", "-s", __file__])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
