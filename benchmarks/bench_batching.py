"""EXP-BATCH — batched RPC pipeline and parallel query fan-out.

The tentpole optimisation coalesces the per-field index writes of one
executor operation into a single batch frame and resolves independent
CNF literals concurrently, so the gateway/cloud link is charged once per
*operation* instead of once per *sub-call*.  Three measurements against
the unbatched baseline (``PipelineConfig()`` all-defaults):

* **Round trips per multi-field insert** — the §5.2 benchmark schema
  (8 tactic instances + document store) drops from 9 frames to 1.
* **Critical path of a mixed CNF find** — a 2-clause / 4-literal
  predicate under a 40 ms one-way WAN model; parallel fan-out collapses
  the four sequential index round trips into one latency charge.
* **End-to-end throughput** — the Figure-5 workload mix through the
  middleware scenario on the same 40 ms link, baseline vs full pipeline.

Results land in ``BENCH_batching.json`` at the repo root so runs can be
compared across machines.
"""

import json
import os
import time
from pathlib import Path

from repro.bench.loadgen import run_load
from repro.bench.scenarios import MiddlewareApp
from repro.bench.workloads import Workload, WorkloadSpec
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Or
from repro.fhir.generator import MedicalDataGenerator
from repro.fhir.model import benchmark_observation_schema
from repro.net.batch import PipelineConfig
from repro.net.latency import NetworkModel
from repro.net.transport import InProcTransport

#: The paper's gateway->public-cloud link; EXP-BATCH's headline setting.
WAN_ONE_WAY_MS = 40.0
#: Scale knob for the closed-loop throughput comparison (the 40 ms link
#: really sleeps, so the default stays small).
OPERATIONS = int(os.environ.get("DATABLINDER_BATCH_BENCH_OPS", "18"))
USERS = int(os.environ.get("DATABLINDER_BENCH_USERS", "4"))
SEED = 2019

FULL_PIPELINE = PipelineConfig(batch_writes=True, fanout_workers=4,
                               prefetch=True)

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_batching.json"
)
#: Shared across the tests in this module; the last one writes the file.
RESULTS: dict = {}


def deploy(registry, pipeline=None, latency_ms=0.0, sleep=False,
           application="bench-batch"):
    cloud = CloudZone(registry)
    transport = InProcTransport(
        cloud.host,
        NetworkModel(one_way_latency_ms=latency_ms, sleep=sleep),
    )
    blinder = DataBlinder(application, transport, registry=registry,
                          verify_results=False, pipeline=pipeline)
    blinder.register_schema(benchmark_observation_schema())
    return blinder.entities("observation"), transport


def observation_documents(count, seed=SEED):
    generator = MedicalDataGenerator(seed)
    return [o.to_document() for o in
            generator.observations(count, cohort_size=4)]


def frames_per_insert(registry, pipeline):
    entities, transport = deploy(registry, pipeline)
    document = observation_documents(1)[0]
    before = transport.stats().messages_sent
    entities.insert(document)
    return transport.stats().messages_sent - before


def test_insert_round_trip_reduction(registry):
    """A multi-field insert collapses to one frame (>= 2x reduction)."""
    baseline = frames_per_insert(registry, None)
    batched = frames_per_insert(registry, FULL_PIPELINE)
    RESULTS["insert_frames"] = {
        "baseline": baseline, "batched": batched,
        "reduction": baseline / batched,
    }
    print(f"\nEXP-BATCH insert frames: {baseline} -> {batched} "
          f"({baseline / batched:.1f}x fewer round trips)")
    # 8 tactic index writes + the document-store write vs one batch.
    assert baseline >= 9
    assert batched == 1
    assert baseline / batched >= 2.0


def mixed_cnf_predicate(docs):
    return And([
        Or([Eq("code", "heart-rate"), Eq("code", "glucose")]),
        Or([Eq("status", "final"), Eq("subject", docs[0]["subject"])]),
    ])


def find_critical_path_seconds(registry, pipeline, docs):
    # Writes are batched on both sides so that seeding the corpus over
    # the sleeping WAN link stays cheap; only fan-out differs.
    entities, _ = deploy(registry, pipeline, latency_ms=WAN_ONE_WAY_MS,
                         sleep=True)
    entities.insert_many([dict(d) for d in docs])
    predicate = mixed_cnf_predicate(docs)
    best = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        entities.find_ids(predicate)
        best = min(best, time.perf_counter() - start)
    return best


def test_find_fanout_critical_path(registry):
    """Parallel literal resolution halves (at least) the CNF find path.

    The 2-clause / 4-literal predicate costs four sequential index round
    trips on the baseline (~4 x 80 ms on the 40 ms link); with fan-out
    the four resolutions overlap into roughly one latency charge.
    """
    docs = observation_documents(12)
    serial = find_critical_path_seconds(
        registry, PipelineConfig(batch_writes=True), docs
    )
    parallel = find_critical_path_seconds(
        registry, FULL_PIPELINE, docs
    )
    RESULTS["find_critical_path_seconds"] = {
        "baseline": serial, "fanout": parallel,
        "reduction": serial / parallel,
    }
    print(f"\nEXP-BATCH mixed CNF find on {WAN_ONE_WAY_MS:.0f} ms link: "
          f"{serial * 1000:.0f} ms -> {parallel * 1000:.0f} ms "
          f"({serial / parallel:.1f}x faster)")
    assert serial / parallel >= 2.0


def run_middleware(registry, pipeline, application):
    cloud = CloudZone(registry)
    transport = InProcTransport(
        cloud.host,
        NetworkModel(one_way_latency_ms=WAN_ONE_WAY_MS, sleep=True),
    )
    app = MiddlewareApp(transport, application=application,
                        pipeline=pipeline)
    workload = Workload(WorkloadSpec(operations=OPERATIONS, seed=SEED))
    result = run_load(app, workload, users=USERS)
    assert not result.errors, result.errors[:3]
    return result.report.per_operation["overall"].throughput


def test_end_to_end_throughput_win(registry):
    """The full pipeline beats the baseline on a 40 ms WAN link."""
    baseline = run_middleware(registry, None, "bench-batch-base")
    pipelined = run_middleware(registry, FULL_PIPELINE, "bench-batch-pipe")
    RESULTS["throughput_ops_per_s"] = {
        "baseline": baseline, "pipelined": pipelined,
        "speedup": pipelined / baseline,
    }
    print(f"\nEXP-BATCH end-to-end on {WAN_ONE_WAY_MS:.0f} ms link: "
          f"{baseline:.2f} -> {pipelined:.2f} ops/s "
          f"({pipelined / baseline:.1f}x)")
    assert pipelined > baseline

    RESULTS["config"] = {
        "wan_one_way_ms": WAN_ONE_WAY_MS,
        "operations": OPERATIONS,
        "users": USERS,
        "pipeline": {
            "batch_writes": FULL_PIPELINE.batch_writes,
            "fanout_workers": FULL_PIPELINE.fanout_workers,
            "prefetch": FULL_PIPELINE.prefetch,
        },
    }
    RESULTS_PATH.write_text(json.dumps(RESULTS, indent=2) + "\n")
    print(f"results written to {RESULTS_PATH}")
