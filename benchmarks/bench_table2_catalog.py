"""EXP-T2 — Table 2: the implemented tactic catalog.

Regenerates the paper's Table 2 — scheme, protection class, leakage,
gateway/cloud SPI counts, challenge, implementation provenance — from the
live registry.  Counts are derived by introspecting the implementation
classes, so this table cannot drift from the code.  Asserts the paper's
exact numbers.
"""

import pytest

from repro.spi.descriptors import Operation, spi_counts
from repro.tactics import BUILTIN_TACTICS

# Scheme -> (class, leakage label, gateway SPI, cloud SPI) from the paper.
PAPER_TABLE2 = {
    "det": (4, "Equalities", 9, 6),
    "mitra": (2, "Identifiers", 7, 5),
    "sophos": (2, "Identifiers", 6, 4),
    "rnd": (1, "Structure", 6, 4),
    "biex-2lev": (3, "Predicates", 8, 5),
    "biex-zmf": (3, "Predicates", 8, 5),
    "ope": (5, "Order", 3, 3),
    "ore": (5, "Order", 3, 3),
    "paillier": (None, "-", 3, 3),
}

_OPERATION_LABEL = {
    frozenset({Operation.EQUALITY}): "Equality Search",
    frozenset({Operation.BOOLEAN}): "Boolean Search",
    frozenset({Operation.RANGE}): "Range Query",
}


def _operation_label(descriptor) -> str:
    if descriptor.aggregates:
        return "/".join(sorted(
            a.value.capitalize() for a in descriptor.aggregates
            if a.value != "count"
        ))
    for ops, label in _OPERATION_LABEL.items():
        if ops & descriptor.operations:
            if Operation.BOOLEAN in descriptor.operations:
                return "Boolean Search"
            if Operation.RANGE in descriptor.operations:
                return "Range Query"
            return label
    return "Equality Search"


def render_table2() -> str:
    header = (f"{'Operation':<17}{'Scheme':<11}{'Class':<7}{'Leakage':<13}"
              f"{'GW':>4}{'Cloud':>7}  {'Challenge':<26}Implementation")
    lines = ["Table 2 — implemented cryptographic constructions", "",
             header, "-" * len(header)]
    for descriptor, gateway_cls, cloud_cls in BUILTIN_TACTICS:
        gateway_count, cloud_count = spi_counts(gateway_cls, cloud_cls)
        cls = ("-" if descriptor.protection_class is None
               else str(int(descriptor.protection_class)))
        leakage = ("-" if descriptor.protection_class is None
                   else descriptor.leakage.level.label)
        lines.append(
            f"{_operation_label(descriptor):<17}"
            f"{descriptor.display_name:<11}{cls:<7}{leakage:<13}"
            f"{gateway_count:>4}{cloud_count:>7}  "
            f"{descriptor.challenge:<26}{descriptor.implementation}"
        )
    return "\n".join(lines)


def test_table2_catalog(benchmark):
    rows = benchmark(
        lambda: {
            d.name: spi_counts(g, c) for d, g, c in BUILTIN_TACTICS
        }
    )
    for name, (cls, leakage, gw, cloud) in PAPER_TABLE2.items():
        descriptor = next(d for d, _, _ in BUILTIN_TACTICS
                          if d.name == name)
        assert rows[name] == (gw, cloud), name
        if cls is None:
            assert descriptor.protection_class is None
        else:
            assert int(descriptor.protection_class) == cls
            assert descriptor.leakage.level.label == leakage

    print()
    print(render_table2())


def test_table2_challenges_match_paper(benchmark):
    expected = {
        "det": "-",
        "mitra": "Local storage",
        "sophos": "Key management",
        "rnd": "Inefficiency",
        "biex-2lev": "Storage impl. complexity",
        "biex-zmf": "Storage impl. complexity",
        "paillier": "Key management",
    }
    challenges = benchmark(
        lambda: {d.name: d.challenge for d, _, _ in BUILTIN_TACTICS}
    )
    for name, challenge in expected.items():
        assert challenges[name] == challenge
