"""ABL-RANGE — OPE vs ORE: encryption cost, ciphertext size, query cost.

Both sit in class 5 (order leakage) and the selector prefers OPE; this
ablation quantifies why and what ORE buys instead:

* OPE encryption walks a hypergeometric sampling recursion (slow), ORE
  is one PRF per plaintext bit (fast);
* OPE ciphertexts are plain integers the server compares natively, ORE
  ciphertexts are digit vectors needing the public comparator per probe
  — so OPE queries are cheaper;
* ORE reveals strictly less to a snapshot adversary (raw ORE bytes do
  not sort in plaintext order — asserted in the crypto tests).
"""

import pytest

from repro.gateway.service import GatewayRuntime

CORPUS = 80


def make_gateway(fresh_deployment, registry, tactic):
    _, transport = fresh_deployment()
    runtime = GatewayRuntime("abl", transport, registry)
    return runtime.tactic(f"doc.{tactic}", tactic)


@pytest.mark.parametrize("tactic", ["ope", "ore"])
def test_encrypt_cost(benchmark, fresh_deployment, registry, tactic):
    gateway = make_gateway(fresh_deployment, registry, tactic)
    counter = iter(range(10**9))

    benchmark.group = "range-insert"
    benchmark(lambda: gateway.insert(f"d{next(counter)}",
                                     float(next(counter) % 10_000)))


@pytest.mark.parametrize("tactic", ["ope", "ore"])
def test_query_cost(benchmark, fresh_deployment, registry, tactic):
    gateway = make_gateway(fresh_deployment, registry, tactic)
    for i in range(CORPUS):
        gateway.insert(f"d{i}", float(i))

    benchmark.group = "range-query"
    result = benchmark(lambda: gateway.range_query(20.0, 39.0))
    assert len(result) == 20


def test_ciphertext_sizes(fresh_deployment, registry):
    from repro.crypto.ope import Ope
    from repro.crypto.ore import Ore

    ope = Ope(b"k" * 16, domain_bits=40, range_bits=56)
    ore = Ore(b"k" * 16, bits=40)

    ope_bytes = (ope.encrypt(123456).bit_length() + 7) // 8
    ore_bytes = len(ore.encrypt(123456).to_bytes())

    print()
    print("ABL-RANGE ciphertext sizes (40-bit domain):")
    print(f"  OPE  {ope_bytes:>4} bytes (an ordered integer)")
    print(f"  ORE  {ore_bytes:>4} bytes (ternary digit vector)")

    # ORE ciphertexts are materially larger: 2 bits per plaintext bit
    # plus header vs a 56-bit integer.
    assert ore_bytes > ope_bytes
