"""Shared benchmark fixtures.

Every benchmark regenerates one artifact of the paper's evaluation
(tables, figures) or one ablation DESIGN.md calls out.  Output is printed
— run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables —
and the key *shape* claims are asserted so CI notices regressions.
"""

from __future__ import annotations

import pytest

from repro.cloud.server import CloudZone
from repro.core.registry import TacticRegistry
from repro.net.transport import InProcTransport
from repro.tactics import register_builtin_tactics


@pytest.fixture(scope="session")
def registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


@pytest.fixture()
def fresh_deployment(registry):
    """A new cloud zone + transport per benchmark."""

    def factory():
        cloud = CloudZone(registry)
        return cloud, InProcTransport(cloud.host)

    return factory
