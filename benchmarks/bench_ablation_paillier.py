"""ABL-HE — Paillier key size vs cost: why aggregates dominate.

The paper: "the execution of aggregate protocols, namely the Paillier
partially homomorphic encryption, had a considerable impact on these
numbers" and "the Paillier queries were executed ~50k times per run,
having a considerable impact on the throughput".

This ablation sweeps the modulus size and measures encryption,
homomorphic accumulation and decryption, quantifying exactly that
dominance: one Paillier operation at production key sizes costs orders
of magnitude more than the symmetric work of a whole DET insert.
"""

import pytest

from repro.crypto import paillier
from repro.crypto.primitives.random import DeterministicRandom

KEY_SIZES = [256, 512, 1024]
_KEYPAIRS = {}


def keypair(bits):
    if bits not in _KEYPAIRS:
        _KEYPAIRS[bits] = paillier.generate_keypair(
            bits, DeterministicRandom(f"abl-{bits}").randbelow
        )
    return _KEYPAIRS[bits]


@pytest.mark.parametrize("bits", KEY_SIZES)
def test_encrypt_cost(benchmark, bits):
    key = keypair(bits)
    benchmark.group = "paillier-encrypt"
    benchmark(lambda: paillier.encrypt(key.public, 6_300_000))


@pytest.mark.parametrize("bits", KEY_SIZES)
def test_decrypt_cost(benchmark, bits):
    key = keypair(bits)
    ciphertext = paillier.encrypt(key.public, 6_300_000)
    benchmark.group = "paillier-decrypt"
    assert benchmark(lambda: paillier.decrypt(key, ciphertext)) == 6_300_000


@pytest.mark.parametrize("bits", KEY_SIZES)
def test_homomorphic_sum_cost(benchmark, bits):
    key = keypair(bits)
    ciphertexts = [paillier.encrypt(key.public, i) for i in range(50)]

    def blind_sum():
        total = ciphertexts[0]
        for ciphertext in ciphertexts[1:]:
            total = total + ciphertext
        return total

    benchmark.group = "paillier-sum-50"
    total = benchmark(blind_sum)
    assert paillier.decrypt(key, total) == sum(range(50))


def test_paillier_dominates_symmetric_work():
    """One 1024-bit Paillier encryption vs one DET token: the HE gap that
    explains the Figure 5 shape."""
    import time

    from repro.crypto.symmetric import Deterministic

    key = keypair(1024)
    det = Deterministic(b"k" * 16)

    start = time.perf_counter()
    for _ in range(10):
        paillier.encrypt(key.public, 123456)
    paillier_cost = (time.perf_counter() - start) / 10

    start = time.perf_counter()
    for _ in range(100):
        det.encrypt(b"some field value")
    det_cost = (time.perf_counter() - start) / 100

    print()
    print("ABL-HE single-operation cost:")
    print(f"  Paillier-1024 encrypt {paillier_cost * 1000:8.3f} ms")
    print(f"  DET token             {det_cost * 1000:8.3f} ms")
    print(f"  ratio                 {paillier_cost / det_cost:8.1f}x")
    assert paillier_cost > 5 * det_cost
