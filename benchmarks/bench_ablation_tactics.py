"""ABL-TACTIC — per-tactic microbenchmarks of the equality schemes.

Decomposes the Figure 5 overhead: insert and search cost of each
equality tactic in isolation (DET, RND, Mitra, Sophos), against the same
cloud zone.  Shape expectations:

* DET search is the cheapest (token lookup, no per-result crypto).
* RND search is the most expensive per corpus size (exhaustive transfer
  and gateway-side decryption of *every* ciphertext — the Table 2
  'Inefficiency' challenge).
* Sophos insertion is the most expensive insert (one RSA inversion per
  entry — the private-key trapdoor step that buys forward privacy).
"""

import pytest

from repro.gateway.service import GatewayRuntime

CORPUS = 40


def make_gateway(fresh_deployment, registry, tactic):
    _, transport = fresh_deployment()
    runtime = GatewayRuntime("abl", transport, registry)
    return runtime.tactic(f"doc.{tactic}", tactic)


@pytest.mark.parametrize("tactic", ["det", "rnd", "mitra", "sophos"])
def test_insert_cost(benchmark, fresh_deployment, registry, tactic):
    gateway = make_gateway(fresh_deployment, registry, tactic)
    counter = iter(range(10**9))

    benchmark.group = "equality-insert"
    benchmark(lambda: gateway.insert(f"d{next(counter)}", "keyword"))


@pytest.mark.parametrize("tactic", ["det", "rnd", "mitra", "sophos"])
def test_search_cost(benchmark, fresh_deployment, registry, tactic):
    gateway = make_gateway(fresh_deployment, registry, tactic)
    for i in range(CORPUS):
        gateway.insert(f"d{i}", f"kw{i % 4}")

    benchmark.group = "equality-search"
    result = benchmark(
        lambda: gateway.resolve_eq(gateway.eq_query("kw1"))
    )
    assert len(result) == CORPUS // 4


def test_search_cost_ordering(fresh_deployment, registry):
    """DET < Mitra on search; Sophos > Mitra on insert; RND search is
    linear in the corpus, the others are not."""
    import time

    def timed_search(tactic, corpus):
        gateway = make_gateway(fresh_deployment, registry, tactic)
        for i in range(corpus):
            gateway.insert(f"d{i}", f"kw{i % 4}")
        start = time.perf_counter()
        for _ in range(5):
            gateway.resolve_eq(gateway.eq_query("kw1"))
        return (time.perf_counter() - start) / 5

    small_rnd = timed_search("rnd", 20)
    large_rnd = timed_search("rnd", 120)
    # Exhaustive search grows with the corpus even at fixed result size.
    assert large_rnd > 2.5 * small_rnd

    det = timed_search("det", 120)
    rnd = timed_search("rnd", 120)
    assert det < rnd

    print()
    print("ABL-TACTIC search means (120-doc corpus, 30 hits):")
    print(f"  det    {det * 1000:8.2f} ms")
    print(f"  rnd    {rnd * 1000:8.2f} ms  (exhaustive)")
