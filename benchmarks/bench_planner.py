"""EXP-PLAN — query planner: plan cache, compile overhead, adaptive routing.

The planner tentpole splits the executor into compile / optimize /
execute.  Three measurements quantify what that buys (and costs):

* **Plan-cache hit rate** — a workload of repeated predicate *shapes*
  (values vary per query) against the shape-keyed plan cache; the steady
  state should hit on every query after the first of each shape.
* **Compile overhead** — wall time of parameterize + compile + optimize
  for a mixed CNF find, i.e. the one-off price of a cache miss and the
  per-query price of running with ``plan_cache=False``.
* **Adaptive vs static tactic selection** — the §5.2 motivation for
  cost-based routing: the statically selected eq tactic's cloud service
  is degraded with the 40 ms one-way WAN model (every other service
  stays fast).  Static selection keeps paying the degraded service;
  adaptive selection explores the plan's alternative tactics during
  warmup and routes around it using the observed latency EWMAs.

Results land in ``BENCH_planner.json`` at the repo root.
"""

import json
import statistics
import time
from pathlib import Path

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.planner.compile import parameterize
from repro.core.query import And, Eq, Range
from repro.core.schema import FieldAnnotation, Schema
from repro.net.batch import PipelineConfig
from repro.net.latency import NetworkModel
from repro.net.transport import InProcTransport, Transport

#: The paper's gateway->public-cloud link, applied (adaptive benchmark
#: only) to the degraded tactic's services.
WAN_ONE_WAY_MS = 40.0
CORPUS = 48
SEED_SHAPES = 6
WORKLOAD_QUERIES = 120

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_planner.json"
)
RESULTS: dict = {}


def make_schema():
    return Schema.define(
        "obs",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        kind=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        subject=("string", FieldAnnotation.parse("C2", "I,EQ")),
        effective=("int", FieldAnnotation.parse("C5", "I,EQ,RG")),
        note="string",
    )


def corpus():
    return [
        {
            "status": ["final", "draft", "amended"][i % 3],
            "kind": ["hr", "bp"][i % 2],
            "subject": f"p{i % 6}",
            "effective": i,
            "note": f"note {i}",
        }
        for i in range(CORPUS)
    ]


class DegradedService(Transport):
    """Charges the WAN latency model only on one tactic's services."""

    def __init__(self, inner, tactic,
                 network=NetworkModel(one_way_latency_ms=WAN_ONE_WAY_MS,
                                      sleep=True)):
        self.inner = inner
        self.tactic = tactic
        self.network = network

    def call(self, service, method, **kwargs):
        if service.rsplit("/", 1)[-1] == self.tactic:
            self.network.apply(0)
            result = self.inner.call(service, method, **kwargs)
            self.network.apply(0)
            return result
        return self.inner.call(service, method, **kwargs)

    def stats(self):
        return self.inner.stats()


def deploy(registry, pipeline=None, degrade_tactic=None,
           application="bench-plan"):
    cloud = CloudZone(registry)
    transport = InProcTransport(cloud.host)
    if degrade_tactic is not None:
        transport = DegradedService(transport, degrade_tactic)
    blinder = DataBlinder(application, transport, registry=registry,
                          pipeline=pipeline)
    blinder.register_schema(make_schema())
    entities = blinder.entities("obs")
    entities.insert_many(corpus())
    return blinder, entities


def shape_workload(i):
    """Cycle through SEED_SHAPES predicate shapes, varying the values."""
    shapes = [
        lambda: Eq("status", ["final", "draft", "amended"][i % 3]),
        lambda: Eq("subject", f"p{i % 6}"),
        lambda: Range("effective", i % 10, 20 + i % 20),
        lambda: And([Eq("status", "final"), Eq("kind", ["hr", "bp"][i % 2])]),
        lambda: And([Eq("kind", "hr"), Range("effective", 0, 5 + i % 30)]),
        lambda: Eq("note", f"note {i % CORPUS}"),
    ]
    return shapes[i % SEED_SHAPES]()


def test_plan_cache_hit_rate(registry):
    """Steady-state workload hits the plan cache on all but the first
    occurrence of each predicate shape."""
    blinder, entities = deploy(registry)
    before = blinder.planner_stats("obs")
    for i in range(WORKLOAD_QUERIES):
        entities.find(shape_workload(i))
    after = blinder.planner_stats("obs")
    hits = after["cache_hits"] - before["cache_hits"]
    misses = after["cache_misses"] - before["cache_misses"]
    hit_rate = hits / (hits + misses)
    RESULTS["plan_cache"] = {
        "queries": WORKLOAD_QUERIES,
        "shapes": SEED_SHAPES,
        "hits": hits,
        "misses": misses,
        "hit_rate": hit_rate,
    }
    print(f"\nEXP-PLAN cache: {hits} hits / {misses} misses "
          f"({100 * hit_rate:.1f}% hit rate over {WORKLOAD_QUERIES} "
          f"queries, {SEED_SHAPES} shapes)")
    assert misses == SEED_SHAPES
    assert hit_rate >= 0.9


def test_compile_overhead(registry):
    """Price of one compile+optimize pass, i.e. of a cache miss."""
    blinder, _ = deploy(registry)
    planner = blinder._executor("obs").planner
    predicate = And([
        Eq("status", "final"),
        Eq("kind", "hr"),
        Range("effective", 5, 40),
    ])
    samples = []
    for _ in range(200):
        start = time.perf_counter()
        parameterized, values, _ = parameterize(predicate)
        plan = planner.compiler.compile_find(
            parameterized, True, False, len(values)
        )
        planner.optimizer.optimize(plan)
        samples.append(time.perf_counter() - start)
    mean_us = 1e6 * statistics.mean(samples)
    p95_us = 1e6 * sorted(samples)[int(0.95 * len(samples))]
    RESULTS["compile_overhead_us"] = {"mean": mean_us, "p95": p95_us}
    print(f"\nEXP-PLAN compile overhead: {mean_us:.0f} us mean, "
          f"{p95_us:.0f} us p95 (mixed 3-literal CNF find)")
    # Compiling is pure gateway-side CPU; it must stay far below one
    # WAN round trip, or caching plans would be pointless.
    assert mean_us < 1000 * WAN_ONE_WAY_MS


def adaptive_vs_static_seconds(registry, adaptive):
    probe, _ = deploy(registry, application="bench-plan-probe")
    plan = probe._executor("obs").plans["subject"]
    primary = plan.roles["eq"]
    pipeline = PipelineConfig(
        adaptive_selection=adaptive, adaptive_warmup=2
    )
    blinder, entities = deploy(
        registry, pipeline, degrade_tactic=primary,
        application="bench-plan-adapt" if adaptive else "bench-plan-stat",
    )
    predicate = Eq("subject", "p3")
    # Warmup: let the EWMAs see every candidate.
    for _ in range(8):
        entities.find_ids(predicate)
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        entities.find_ids(predicate)
        samples.append(time.perf_counter() - start)
    chosen = blinder.planner_stats("obs")["chosen"].get("subject.eq")
    return statistics.mean(samples), primary, chosen


def test_adaptive_routes_around_degraded_tactic(registry):
    """With the primary eq tactic's service on the 40 ms link, adaptive
    selection converges to a fast runner-up; static keeps paying."""
    static_s, primary, static_choice = adaptive_vs_static_seconds(
        registry, adaptive=False
    )
    adaptive_s, _, adaptive_choice = adaptive_vs_static_seconds(
        registry, adaptive=True
    )
    RESULTS["adaptive_vs_static"] = {
        "degraded_primary": primary,
        "wan_one_way_ms": WAN_ONE_WAY_MS,
        "static_mean_s": static_s,
        "adaptive_mean_s": adaptive_s,
        "speedup": static_s / adaptive_s,
        "static_choice": static_choice,
        "adaptive_choice": adaptive_choice,
    }
    print(f"\nEXP-PLAN adaptive routing: primary {primary!r} degraded "
          f"by {WAN_ONE_WAY_MS:.0f} ms one-way; static "
          f"{static_s * 1000:.0f} ms -> adaptive "
          f"{adaptive_s * 1000:.0f} ms per find "
          f"({static_s / adaptive_s:.1f}x, now using "
          f"{adaptive_choice!r})")
    assert static_choice == primary
    assert adaptive_choice != primary
    assert adaptive_s < static_s

    RESULTS["config"] = {
        "corpus": CORPUS,
        "workload_queries": WORKLOAD_QUERIES,
    }
    RESULTS_PATH.write_text(json.dumps(RESULTS, indent=2) + "\n")
    print(f"results written to {RESULTS_PATH}")
