"""ABL-STATELESS — gateway-state SSE (Mitra) vs stateless SSE.

Quantifies the trade of the paper's concluding research direction
(stateless gateways for cloud-native deployment): per-insert and
per-search cost, and — the actual point — gateway-resident state as the
keyword universe grows.
"""

import pytest

from repro.gateway.service import GatewayRuntime

KEYWORDS = 50
ENTRIES = 200


def make_gateway(fresh_deployment, registry, tactic):
    _, transport = fresh_deployment()
    runtime = GatewayRuntime("abl", transport, registry)
    return runtime, runtime.tactic(f"doc.{tactic}", tactic)


@pytest.mark.parametrize("tactic", ["mitra", "sse-stateless"])
def test_insert_cost(benchmark, fresh_deployment, registry, tactic):
    _, gateway = make_gateway(fresh_deployment, registry, tactic)
    counter = iter(range(10**9))

    benchmark.group = "stateless-insert"
    benchmark(lambda: gateway.insert(f"d{next(counter)}",
                                     f"kw{next(counter) % KEYWORDS}"))


@pytest.mark.parametrize("tactic", ["mitra", "sse-stateless"])
def test_search_cost(benchmark, fresh_deployment, registry, tactic):
    _, gateway = make_gateway(fresh_deployment, registry, tactic)
    for i in range(ENTRIES):
        gateway.insert(f"d{i}", f"kw{i % KEYWORDS}")

    benchmark.group = "stateless-search"
    result = benchmark(
        lambda: gateway.resolve_eq(gateway.eq_query("kw7"))
    )
    assert len(result) == ENTRIES // KEYWORDS


def test_gateway_state_growth(fresh_deployment, registry):
    """Mitra's gateway state grows with the keyword universe; the
    stateless tactic's stays at zero."""
    sizes = {}
    for tactic in ("mitra", "sse-stateless"):
        runtime, gateway = make_gateway(fresh_deployment, registry, tactic)
        baseline = runtime.local_kv.size_in_bytes()
        for i in range(ENTRIES):
            gateway.insert(f"d{i}", f"kw{i % KEYWORDS}")
        sizes[tactic] = runtime.local_kv.size_in_bytes() - baseline

    print()
    print(f"ABL-STATELESS gateway state after {ENTRIES} inserts over "
          f"{KEYWORDS} keywords (bytes):")
    for tactic, size in sizes.items():
        print(f"  {tactic:<14} {size:>8,}")

    assert sizes["sse-stateless"] == 0
    assert sizes["mitra"] > 0
