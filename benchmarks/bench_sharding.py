"""EXP-SHARD — sharded untrusted zone: scaling and resharding cost.

The tentpole subsystem splits the untrusted zone across N nodes behind a
consistent-hash ring; single-key operations route to one shard while
searches scatter/gather.  Three measurements:

* **Insert/search throughput at 1/2/4/8 shards** on the paper's 40 ms
  one-way WAN model (writes batched; searches fan out in parallel).
  Single-client latency-bound throughput should stay roughly *flat* as
  shards are added — the scatter is charged one parallel round trip, not
  N sequential ones.
* **Sequential vs parallel scatter at 8 shards** — the fan-out is what
  keeps search latency off the N·RTT cliff; this quantifies the cliff.
* **Node-join downtime** — a reader hammers the ring while
  ``Resharder.add_node`` streams keys to a fresh node; downtime is the
  number of failed reads (must be zero) plus the worst observed stall.

Results land in ``BENCH_sharding.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.cloud.cluster import CloudCluster
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.fhir.generator import MedicalDataGenerator
from repro.fhir.model import benchmark_observation_schema
from repro.net.batch import PipelineConfig
from repro.net.latency import NetworkModel
from repro.shard.config import ShardConfig
from repro.shard.rebalance import Resharder
from repro.shard.router import ShardedTransport

#: The paper's gateway->public-cloud link; EXP-SHARD's headline setting.
WAN_ONE_WAY_MS = 40.0
SHARD_COUNTS = (1, 2, 4, 8)
INSERTS = int(os.environ.get("DATABLINDER_SHARD_BENCH_DOCS", "10"))
SEARCHES = int(os.environ.get("DATABLINDER_SHARD_BENCH_SEARCHES", "6"))
SEED = 2019

PIPELINE = PipelineConfig(batch_writes=True)

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_sharding.json"
)
#: Shared across the tests in this module; the last one writes the file.
RESULTS: dict = {}


def observation_documents(count, seed=SEED):
    generator = MedicalDataGenerator(seed)
    return [o.to_document() for o in
            generator.observations(count, cohort_size=4)]


def deploy(registry, shards, parallel_fanout=True, latency_ms=0.0,
           sleep=False, application="bench-shard", replication=1,
           write_quorum=0):
    cluster = CloudCluster(
        shards, registry=registry,
        network=NetworkModel(one_way_latency_ms=latency_ms, sleep=sleep),
    )
    router = ShardedTransport(
        cluster.nodes(),
        ShardConfig(parallel_fanout=parallel_fanout, fanout_workers=8,
                    replication=replication, write_quorum=write_quorum),
    )
    blinder = DataBlinder(application, router, registry=registry,
                          verify_results=False, pipeline=PIPELINE)
    blinder.register_schema(benchmark_observation_schema())
    return cluster, router, blinder.entities("observation")


def timed_workload(entities, docs):
    """(insert ops/s, search ops/s) for one deployment."""
    start = time.perf_counter()
    for document in docs:
        entities.insert(dict(document))
    insert_seconds = time.perf_counter() - start

    predicates = [Eq("status", "final"), Eq("code", "glucose"),
                  Eq("code", "heart-rate")]
    start = time.perf_counter()
    for index in range(SEARCHES):
        entities.find_ids(predicates[index % len(predicates)])
    search_seconds = time.perf_counter() - start
    return len(docs) / insert_seconds, SEARCHES / search_seconds


def test_throughput_scaling_across_shard_counts(registry):
    """1/2/4/8 shards on the 40 ms WAN: no scatter-induced collapse."""
    docs = observation_documents(INSERTS)
    scaling = {}
    for shards in SHARD_COUNTS:
        cluster, _, entities = deploy(
            registry, shards, latency_ms=WAN_ONE_WAY_MS, sleep=True,
            application=f"bench-shard-{shards}",
        )
        insert_tput, search_tput = timed_workload(entities, docs)
        scaling[str(shards)] = {
            "insert_ops_per_s": insert_tput,
            "search_ops_per_s": search_tput,
        }
        print(f"\nEXP-SHARD {shards} shard(s) on "
              f"{WAN_ONE_WAY_MS:.0f} ms link: "
              f"insert {insert_tput:.2f} ops/s, "
              f"search {search_tput:.2f} ops/s")
        cluster.close()
    RESULTS["scaling"] = scaling

    # The parallel scatter keeps single-client search latency roughly
    # flat: 8 shards must not cost anywhere near 8x the 1-shard search.
    one = scaling["1"]["search_ops_per_s"]
    eight = scaling["8"]["search_ops_per_s"]
    assert eight > one / 3.0


def test_parallel_fanout_beats_sequential_scatter(registry):
    """At 8 shards the parallel gather dodges the N·RTT cliff."""
    docs = observation_documents(INSERTS)
    results = {}
    for label, parallel in (("sequential", False), ("parallel", True)):
        cluster, _, entities = deploy(
            registry, 8, parallel_fanout=parallel,
            latency_ms=WAN_ONE_WAY_MS, sleep=True,
            application=f"bench-shard-fanout-{label}",
        )
        for document in docs:
            entities.insert(dict(document))
        start = time.perf_counter()
        for _ in range(SEARCHES):
            entities.find_ids(Eq("status", "final"))
        results[label] = SEARCHES / (time.perf_counter() - start)
        cluster.close()
    speedup = results["parallel"] / results["sequential"]
    RESULTS["fanout_at_8_shards"] = {
        "sequential_search_ops_per_s": results["sequential"],
        "parallel_search_ops_per_s": results["parallel"],
        "speedup": speedup,
    }
    print(f"\nEXP-SHARD scatter at 8 shards: "
          f"{results['sequential']:.2f} -> {results['parallel']:.2f} "
          f"searches/s ({speedup:.1f}x)")
    assert speedup >= 2.0


def test_insert_scaling_flat_or_rising(registry):
    """The parallel write scatter keeps single-client insert throughput
    flat (or better) from 1 to 8 shards: a batch frame touching K
    shards costs one concurrent round trip, not K sequential ones."""
    scaling = RESULTS.get("scaling")
    if not scaling:  # standalone selection: measure just the endpoints
        docs = observation_documents(INSERTS)
        scaling = {}
        for shards in (1, 8):
            cluster, _, entities = deploy(
                registry, shards, latency_ms=WAN_ONE_WAY_MS, sleep=True,
                application=f"bench-shard-flat-{shards}",
            )
            insert_tput, _ = timed_workload(entities, docs)
            scaling[str(shards)] = {"insert_ops_per_s": insert_tput}
            cluster.close()
    one = scaling["1"]["insert_ops_per_s"]
    eight = scaling["8"]["insert_ops_per_s"]
    RESULTS["insert_scaling"] = {
        "one_shard_ops_per_s": one,
        "eight_shard_ops_per_s": eight,
        "ratio": eight / one,
    }
    print(f"\nEXP-SHARD insert scaling: {one:.2f} ops/s at 1 shard -> "
          f"{eight:.2f} ops/s at 8 shards ({eight / one:.2f}x)")
    assert eight >= 0.9 * one


def test_quorum_replicated_insert_throughput(registry):
    """replication=2 with write_quorum=1 acks a parallel chain's first
    confirmed replica, so doubling durability must not cost the client
    more than the unreplicated sequential baseline."""
    docs = observation_documents(INSERTS)
    legs = {
        "replication1_sequential": dict(
            replication=1, write_quorum=0, parallel_fanout=False,
        ),
        "replication2_quorum1_parallel": dict(
            replication=2, write_quorum=1, parallel_fanout=True,
        ),
    }
    results = {}
    for label, shard_kwargs in legs.items():
        cluster, router, entities = deploy(
            registry, 4, latency_ms=WAN_ONE_WAY_MS, sleep=True,
            application=f"bench-shard-quorum-{label}", **shard_kwargs,
        )
        start = time.perf_counter()
        for document in docs:
            entities.insert(dict(document))
        results[label] = len(docs) / (time.perf_counter() - start)
        router.drain_async_writes()
        cluster.close()
    baseline = results["replication1_sequential"]
    quorum = results["replication2_quorum1_parallel"]
    RESULTS["quorum_writes"] = {
        "replication1_sequential_insert_ops_per_s": baseline,
        "replication2_quorum1_parallel_insert_ops_per_s": quorum,
        "speedup": quorum / baseline,
    }
    print(f"\nEXP-SHARD quorum writes at 4 shards: replication=1 "
          f"sequential {baseline:.2f} ops/s vs replication=2 quorum=1 "
          f"parallel {quorum:.2f} ops/s ({quorum / baseline:.2f}x)")
    assert quorum >= baseline


def test_node_join_downtime(registry):
    """Online resharding: a live reader sees zero failed reads."""
    cluster, router, entities = deploy(
        registry, 4, application="bench-shard-join"
    )
    ids = [entities.insert(dict(d))
           for d in observation_documents(60)]

    stop = threading.Event()
    failures: list[Exception] = []
    stalls: list[float] = []

    def reader():
        index = 0
        while not stop.is_set():
            doc_id = ids[index % len(ids)]
            started = time.perf_counter()
            try:
                entities.get(doc_id)
            except Exception as exc:  # noqa: BLE001 - counted as downtime
                failures.append(exc)
            stalls.append(time.perf_counter() - started)
            index += 1

    thread = threading.Thread(target=reader)
    thread.start()
    time.sleep(0.01)
    started = time.perf_counter()
    report = Resharder(router, chunk_size=16).add_node(
        *cluster.add_zone("zone-join")
    )
    join_seconds = time.perf_counter() - started
    time.sleep(0.01)
    stop.set()
    thread.join()

    RESULTS["node_join"] = {
        "documents_total": len(ids),
        "documents_moved": report.documents_moved,
        "index_entries_moved": report.index_entries_total,
        "join_seconds": join_seconds,
        "reads_during_join": len(stalls),
        "failed_reads": len(failures),
        "max_read_stall_s": max(stalls) if stalls else 0.0,
    }
    print(f"\nEXP-SHARD node join: moved {report.documents_moved} docs "
          f"+ {report.index_entries_total} index entries in "
          f"{join_seconds * 1000:.0f} ms; "
          f"{len(stalls)} live reads, {len(failures)} failed, "
          f"worst stall {max(stalls) * 1000:.1f} ms")
    assert failures == []
    assert report.documents_moved > 0
    assert len(stalls) > 0
    cluster.close()

    RESULTS["config"] = {
        "wan_one_way_ms": WAN_ONE_WAY_MS,
        "inserts": INSERTS,
        "searches": SEARCHES,
        "shard_counts": list(SHARD_COUNTS),
        "pipeline": {"batch_writes": PIPELINE.batch_writes},
    }
    RESULTS_PATH.write_text(json.dumps(RESULTS, indent=2) + "\n")
    print(f"results written to {RESULTS_PATH}")
