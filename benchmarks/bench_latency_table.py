"""EXP-LAT — the §5.2 latency table: average, p50, p75 and p99 latency
per scenario.

The paper observes that "the execution of aggregate protocols, namely the
Paillier partially homomorphic encryption, had a considerable impact on
these numbers" — asserted below as the aggregate-heavy tail: in the
protected scenarios the p99 sits far above the median, while the
unprotected scenario stays flat.
"""

import pytest

from repro.bench.loadgen import run_load
from repro.bench.report import render_latency_table, render_run
from repro.bench.scenarios import build_scenario
from repro.bench.workloads import Workload, WorkloadSpec

OPERATIONS = 180
USERS = 4
SEED = 73


def run_scenarios(fresh_deployment):
    reports = {}
    for name in ("S_A", "S_B", "S_C"):
        _, transport = fresh_deployment()
        app = build_scenario(name, transport)
        workload = Workload(WorkloadSpec(operations=OPERATIONS, seed=SEED))
        result = run_load(app, workload, users=USERS)
        assert not result.errors, result.errors[:3]
        reports[name] = result.report
    return reports


def test_latency_percentiles(benchmark, fresh_deployment):
    reports = benchmark.pedantic(
        run_scenarios, args=(fresh_deployment,), rounds=1, iterations=1
    )

    print()
    print(render_latency_table(reports))
    print()
    for name in ("S_B", "S_C"):
        print(render_run(reports[name]))
        print()

    for name, report in reports.items():
        overall = report.per_operation["overall"]
        assert overall.p50_ms <= overall.p75_ms <= overall.p99_ms, name

    # Protected scenarios are slower across every percentile.
    for stat in ("mean_ms", "p50_ms", "p99_ms"):
        assert getattr(reports["S_B"].per_operation["overall"], stat) > (
            getattr(reports["S_A"].per_operation["overall"], stat)
        ), stat

    # The Paillier work drives the protected tail: an aggregate (search +
    # homomorphic product + decrypt) costs far more than a plain equality
    # search in S_B and S_C.  (Inserts carry a Paillier encryption too,
    # which is why the paper blames Paillier for the *overall* numbers.)
    for name in ("S_B", "S_C"):
        per_op = reports[name].per_operation
        assert per_op["aggregate"].mean_ms >= per_op["eq_search"].mean_ms
