"""Quickstart: protect a schema, store documents, query encrypted data.

Run:  python examples/quickstart.py

Demonstrates the minimal DataBlinder flow: deploy a cloud zone and a
gateway, annotate a schema with protection classes and required
operations (the Fig. 2 model), and use the Entities interface for CRUD,
boolean search and a cloud-side homomorphic average — without touching a
single key or ciphertext.
"""

from repro import (
    CloudZone,
    DataBlinder,
    Eq,
    FieldAnnotation,
    InProcTransport,
    Range,
    Schema,
)


def main() -> None:
    # 1. The untrusted zone: document store + secure-index store + RPC.
    cloud = CloudZone()

    # 2. The trusted zone: the DataBlinder gateway for one application.
    blinder = DataBlinder("quickstart-app", InProcTransport(cloud.host))

    # 3. Annotate a schema: protection class + required operations per
    #    sensitive field.  The middleware selects tactics adaptively.
    schema = Schema.define(
        "ticket",
        id="string",
        title="string",  # not sensitive: stored in plaintext
        customer=("string", FieldAnnotation.parse("C2", "I,EQ")),
        category=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        severity=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        created=("int", FieldAnnotation.parse("C5", "I,EQ,RG")),
        hours_spent=("float", FieldAnnotation.parse("C4", "I,EQ",
                                                    "sum,avg")),
    )
    reports = blinder.register_schema(schema)

    print("Selected tactics per field:")
    for report in reports:
        print(f"  {report.field:<12} -> {', '.join(report.tactics)}")
    print()

    # 4. CRUD through the Entities interface.
    tickets = blinder.entities("ticket")
    tickets.insert({"id": "t1", "title": "Login fails",
                    "customer": "acme", "category": "auth",
                    "severity": "high", "created": 100,
                    "hours_spent": 3.5})
    tickets.insert({"id": "t2", "title": "Slow dashboard",
                    "customer": "acme", "category": "performance",
                    "severity": "low", "created": 200,
                    "hours_spent": 8.0})
    tickets.insert({"id": "t3", "title": "Data export broken",
                    "customer": "globex", "category": "auth",
                    "severity": "high", "created": 300,
                    "hours_spent": 1.5})

    # 5. Search on encrypted data.
    print("High-severity auth tickets (boolean search):")
    for doc in tickets.find(Eq("category", "auth") & Eq("severity", "high")):
        print(f"  {doc['id']}: {doc['title']}")

    print("\nTickets created in [150, 400] (range over OPE):")
    for doc in tickets.find(Range("created", 150, 400)):
        print(f"  {doc['id']}: created={doc['created']}")

    # 6. Computation on encrypted data: the cloud sums Paillier
    #    ciphertexts it cannot read; the gateway decrypts the total.
    average = tickets.average("hours_spent", where=Eq("customer", "acme"))
    print(f"\nAverage hours for 'acme' (homomorphic): {average:.2f}")

    total = tickets.sum("hours_spent")
    print(f"Total hours across all tickets (homomorphic): {total:.2f}")


if __name__ == "__main__":
    main()
