"""An e-finance scenario: outsourced invoice processing.

Run:  python examples/efinance_invoices.py

The paper was developed with businesses offering cloud applications "in
e-finance, and e-health" (the industrial partner processes financial
documents).  This example models the e-finance side: an invoice archive
outsourced to the cloud where the operator must still

* look up invoices by IBAN or customer (equality on SSE/DET),
* run compliance screens combining status and risk flags (boolean),
* slice by payment date (range over OPE), and
* compute portfolio totals (homomorphic sums over amounts)

without the cloud ever seeing an account number or an amount.
"""

from repro import (
    CloudZone,
    DataBlinder,
    Eq,
    FieldAnnotation,
    InProcTransport,
    Range,
    Schema,
)


def invoice_schema() -> Schema:
    return Schema.define(
        "invoice",
        id="string",
        number="string",  # public invoice number
        customer=("string", FieldAnnotation.parse("C2", "I,EQ")),
        iban=("string", FieldAnnotation.parse("C2", "I,EQ")),
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        risk_flag=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        due_date=("int", FieldAnnotation.parse("C5", "I,EQ,BL,RG")),
        amount=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
    )


INVOICES = [
    ("INV-001", "Acme NV", "BE71096123456769", "open", "none",
     20260710, 1250.00),
    ("INV-002", "Acme NV", "BE71096123456769", "paid", "none",
     20260601, 870.50),
    ("INV-003", "Globex BV", "NL91ABNA0417164300", "open", "review",
     20260715, 15400.00),
    ("INV-004", "Initech GmbH", "DE89370400440532013000", "overdue",
     "review", 20260520, 990.00),
    ("INV-005", "Globex BV", "NL91ABNA0417164300", "open", "none",
     20260801, 310.25),
    ("INV-006", "Acme NV", "BE71096123456769", "overdue", "escalated",
     20260510, 4400.00),
]


def main() -> None:
    cloud = CloudZone()
    blinder = DataBlinder("efinance", InProcTransport(cloud.host))
    blinder.register_schema(invoice_schema())
    print("Policy for the invoice schema:")
    print(blinder.policy_report("invoice"))
    print()

    invoices = blinder.entities("invoice")
    invoices.insert_many([
        {"id": f"i{n}", "number": number, "customer": customer,
         "iban": iban, "status": status, "risk_flag": risk,
         "due_date": due, "amount": amount}
        for n, (number, customer, iban, status, risk, due, amount)
        in enumerate(INVOICES)
    ])
    print(f"Archived {len(INVOICES)} invoices in the cloud "
          f"(bodies AEAD-encrypted, fields indexed per policy).\n")

    # Account lookup: equality over the SSE-protected IBAN.
    iban_hits = invoices.find(Eq("iban", "BE71096123456769"))
    print(f"Invoices on IBAN BE71...769: "
          f"{sorted(d['number'] for d in iban_hits)}")

    # Compliance screen: boolean search across status and risk.
    screen = invoices.find(
        (Eq("status", "open") | Eq("status", "overdue"))
        & (Eq("risk_flag", "review") | Eq("risk_flag", "escalated"))
    )
    print(f"Open/overdue invoices under review or escalation: "
          f"{sorted(d['number'] for d in screen)}")

    # Cash-flow slice: range over the OPE-protected due date.
    july = invoices.find(Range("due_date", 20260701, 20260731))
    print(f"Due in July 2026: {sorted(d['number'] for d in july)}")

    # Portfolio totals: Paillier sums the cloud cannot read.
    exposure = invoices.sum(
        "amount",
        where=Eq("status", "open") | Eq("status", "overdue"),
    )
    acme_avg = invoices.average("amount", where=Eq("customer", "Acme NV"))
    print(f"\nOutstanding exposure (homomorphic sum): "
          f"EUR {exposure:,.2f}")
    print(f"Average Acme NV invoice (homomorphic avg): "
          f"EUR {acme_avg:,.2f}")

    print("\nPer-tactic runtime cost of this session:")
    print(blinder.metrics_report())


if __name__ == "__main__":
    main()
