"""Splitting the untrusted zone across two cloud providers.

Run:  python examples/multicloud_split.py

Fig. 3 of the paper draws the untrusted zone as several cloud providers.
This example places the encrypted documents with provider A and every
secure index with provider B: neither snapshot alone contains both the
ciphertext objects and the index structure, so the §2 snapshot attacks
need the two providers to collude.  The application code is identical to
a single-cloud deployment — only the transport changes.
"""

from repro import CloudZone, DataBlinder, Eq
from repro.analysis import SnapshotAdversary
from repro.fhir import MedicalDataGenerator, observation_schema
from repro.net import InProcTransport, split_documents_and_indexes


def main() -> None:
    provider_a = CloudZone()   # e.g. object storage vendor
    provider_b = CloudZone()   # e.g. database vendor
    transport = split_documents_and_indexes(
        InProcTransport(provider_a.host),
        InProcTransport(provider_b.host),
    )

    blinder = DataBlinder("split-ehealth", transport)
    blinder.register_schema(observation_schema())
    observations = blinder.entities("observation")

    generator = MedicalDataGenerator(11)
    docs = generator.observations(30, cohort_size=5)
    observations.insert_many([o.to_document() for o in docs])

    subject = docs[0].subject
    hits = observations.find(Eq("subject", subject))
    average = observations.average("value", where=Eq("subject", subject))
    print(f"Stored {len(docs)} observations across two providers.")
    print(f"Search + homomorphic average still work: {len(hits)} hits, "
          f"avg {average:.2f}\n")

    for name, zone in (("provider A (documents)", provider_a),
                       ("provider B (indexes)", provider_b)):
        adversary = SnapshotAdversary(zone, "split-ehealth")
        report = adversary.report()
        det_view = adversary.det_token_histogram("effective")
        print(f"{name}: {report.documents} documents, "
              f"{report.kv_entries} index entries, "
              f"{len(det_view)} DET tokens visible")

    print("\nNeither provider alone holds both the ciphertexts and the "
          "index structure;\nthe frequency/sorting attacks of "
          "examples/leakage_analysis.py need a combined\nsnapshot — "
          "i.e. provider collusion.")


if __name__ == "__main__":
    main()
