"""A real two-process deployment: the cloud zone behind a TCP socket.

Run:  python examples/distributed_deployment.py

Spawns the untrusted zone as a *separate OS process* serving the RPC
protocol over TCP (the paper's gateway-mode / cloud-mode split, Fig. 3),
then drives it from a gateway in this process.  Everything that crosses
the socket is ciphertext, trapdoors or encrypted index entries.
"""

import multiprocessing
import time

from repro import DataBlinder, Eq, TcpTransport
from repro.fhir import MedicalDataGenerator, observation_schema


def cloud_process(port_queue) -> None:
    """The untrusted zone: runs in its own process."""
    from repro.cloud.server import CloudZone
    from repro.net.tcp import TcpRpcServer

    zone = CloudZone()
    server = TcpRpcServer(zone.host, ("127.0.0.1", 0))
    port_queue.put(server.endpoint[1])
    server.serve_forever()


def main() -> None:
    port_queue = multiprocessing.Queue()
    cloud = multiprocessing.Process(target=cloud_process,
                                    args=(port_queue,), daemon=True)
    cloud.start()
    port = port_queue.get(timeout=10)
    print(f"Cloud zone listening on 127.0.0.1:{port} "
          f"(pid {cloud.pid})\n")

    transport = TcpTransport(("127.0.0.1", port))
    blinder = DataBlinder("distributed-ehealth", transport)
    blinder.register_schema(observation_schema())
    observations = blinder.entities("observation")

    generator = MedicalDataGenerator(7)
    docs = generator.observations(25, cohort_size=6)

    start = time.perf_counter()
    for observation in docs:
        observations.insert(observation.to_document())
    insert_time = time.perf_counter() - start
    print(f"Inserted {len(docs)} observations over TCP "
          f"in {insert_time:.2f}s "
          f"({len(docs) / insert_time:.1f} docs/s)")

    subject = docs[0].subject
    start = time.perf_counter()
    hits = observations.find(Eq("subject", subject))
    search_time = time.perf_counter() - start
    print(f"Equality search for one patient: {len(hits)} hits "
          f"in {search_time * 1000:.1f} ms")

    average = observations.average("value", where=Eq("subject", subject))
    print(f"Homomorphic average for that patient: {average:.2f}")

    stats = transport.stats()
    print(f"\nSocket traffic: {stats.messages_sent} frames, "
          f"{stats.bytes_sent:,} bytes sent, "
          f"{stats.bytes_received:,} bytes received")

    transport.close()
    cloud.terminate()
    cloud.join(timeout=5)
    print("Cloud process stopped.")


if __name__ == "__main__":
    main()
