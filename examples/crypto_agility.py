"""Crypto agility: plugging a new tactic in without touching the app.

Run:  python examples/crypto_agility.py

The paper's differentiating claim: tactic providers extend the system
through the SPI, and the middleware adopts new schemes adaptively.  This
example implements a small third-party equality tactic (HMAC tags over a
KV set index), registers it with a better performance rank than DET, and
shows the *same application code* transparently switching tactics — then
rolls it back by unregistering.
"""

from typing import Any

from repro import (
    CloudZone,
    DataBlinder,
    Eq,
    FieldAnnotation,
    InProcTransport,
    Schema,
    TacticRegistry,
)
from repro.crypto.encoding import Value, encode_value
from repro.crypto.primitives.hmac_prf import prf
from repro.spi import interfaces as spi
from repro.spi.descriptors import (
    Operation,
    PerformanceMetrics,
    TacticDescriptor,
)
from repro.spi.leakage import (
    LeakageLevel,
    LeakageProfile,
    OperationLeakage,
    ProtectionClass,
)
from repro.tactics import register_builtin_tactics
from repro.tactics.base import CloudTactic, GatewayTactic


# --- A third-party tactic, written against the SPI ------------------------


class FastTagGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayEqQuery,
    spi.GatewayEqResolution,
):
    """Keyed-hash equality tags — a minimal DET-class scheme."""

    def setup(self) -> None:
        self._key = self.ctx.derive_key("fasttag")
        self.ctx.call("setup")

    def _tag(self, value: Value) -> bytes:
        return prf(self._key, b"tag", encode_value(value))

    def insert(self, doc_id: str, value: Value) -> None:
        self.ctx.call("insert", doc_id=doc_id, tag=self._tag(value))

    def eq_query(self, value: Value) -> Any:
        return self.ctx.call("eq_query", tag=self._tag(value))

    def resolve_eq(self, raw: Any) -> set[str]:
        return set(raw)


class FastTagCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudEqQuery,
):
    def setup(self, **params: Any) -> None:
        self._ns = self.ctx.state_key(b"tags")

    def insert(self, doc_id: str, tag: bytes) -> None:
        self.ctx.kv.set_add(self._ns + b"/" + tag, doc_id.encode())

    def eq_query(self, tag: bytes) -> list[str]:
        members = self.ctx.kv.set_members(self._ns + b"/" + tag)
        return sorted(m.decode() for m in members)


FASTTAG = TacticDescriptor(
    name="fasttag",
    display_name="FastTag",
    operations=frozenset({Operation.INSERT, Operation.EQUALITY}),
    aggregates=frozenset(),
    leakage=LeakageProfile({
        "insert": OperationLeakage(LeakageLevel.EQUALITIES),
        "eq_search": OperationLeakage(LeakageLevel.EQUALITIES),
    }),
    performance=PerformanceMetrics(rank=0, notes="single PRF per token"),
    protection_class=ProtectionClass.C4,
    challenge="third-party plugin",
    implementation="this example",
)


# --- The application (never changes) ---------------------------------------


def run_application(registry: TacticRegistry, label: str) -> None:
    cloud = CloudZone(registry)
    blinder = DataBlinder(f"agile-{label}", InProcTransport(cloud.host),
                          registry=registry)
    schema = Schema.define(
        "invoice",
        id="string",
        account=("string", FieldAnnotation.parse("C4", "I,EQ")),
    )
    reports = blinder.register_schema(schema)
    chosen = reports[0].tactics[0]
    print(f"[{label}] account field protected by: {chosen}")

    invoices = blinder.entities("invoice")
    invoices.insert({"id": "i1", "account": "ACC-1"})
    invoices.insert({"id": "i2", "account": "ACC-2"})
    invoices.insert({"id": "i3", "account": "ACC-1"})
    hits = invoices.find_ids(Eq("account", "ACC-1"))
    print(f"[{label}] equality search found {len(hits)} invoices "
          f"(same results, different cryptography)\n")


def main() -> None:
    # Baseline registry: built-in tactics only -> DET wins at C4.
    baseline = TacticRegistry()
    register_builtin_tactics(baseline)
    run_application(baseline, "built-ins only")

    # A security team ships FastTag as a plugin: same class, better rank.
    agile = TacticRegistry()
    register_builtin_tactics(agile)
    agile.register(FASTTAG, FastTagGateway, FastTagCloud)
    summary = agile.get("fasttag").spi_summary()
    print(f"plugin registered: gateway SPIs {summary['gateway']}, "
          f"cloud SPIs {summary['cloud']}\n")
    run_application(agile, "with fasttag plugin")

    # The scheme is later deprecated (e.g. broken by cryptanalysis):
    # unregister and the selector falls back — again, no app change.
    agile.unregister("fasttag")
    run_application(agile, "plugin retired")


if __name__ == "__main__":
    main()
