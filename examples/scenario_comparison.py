"""A miniature Figure 5: S_A vs S_B vs S_C on your machine.

Run:  python examples/scenario_comparison.py [operations]

Replays the paper's balanced read/write/aggregate workload against the
three evaluation scenarios — no protection (S_A), hard-coded tactics
(S_B), DataBlinder (S_C) — and prints the throughput chart plus the
latency percentile table.  The headline comparison is the S_B -> S_C
delta: what the middleware layer itself costs (paper: 1.4%).
"""

import sys

from repro import CloudZone, InProcTransport
from repro.bench import (
    Workload,
    WorkloadSpec,
    build_scenario,
    render_figure5,
    render_latency_table,
    run_load,
)


def main() -> None:
    operations = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    spec = WorkloadSpec(operations=operations, seed=2019)
    print(f"Workload: {operations} operations, mix "
          f"{Workload(spec).mix()}\n")

    reports = {}
    for name in ("S_A", "S_B", "S_C"):
        cloud = CloudZone()
        app = build_scenario(name, InProcTransport(cloud.host))
        result = run_load(app, Workload(spec), users=4)
        if result.errors:
            raise SystemExit(f"{name} failed: {result.errors[:3]}")
        reports[name] = result.report
        overall = result.report.per_operation["overall"]
        print(f"{name} done: {overall.throughput:8.1f} ops/s overall")

    print()
    print(render_figure5(reports))
    print()
    print(render_latency_table(reports))


if __name__ == "__main__":
    main()
