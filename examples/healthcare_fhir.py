"""The paper's healthcare use case (§5.1) end to end.

Run:  python examples/healthcare_fhir.py

Registers the FHIR Observation schema with the paper's exact annotations,
prints the resulting tactic-selection policy table (reproducing the §5.1
table), loads a synthetic patient cohort, and runs the three motivating
queries from the paper's introduction:

1. boolean search — find observations of a condition with a given status;
2. aggregate — the average measurement value of a patient (Paillier);
3. aggregated search — how often nurses refilled a medication.
"""

from repro import CloudZone, DataBlinder, Eq, InProcTransport, Range
from repro.core.query import AggregateQuery
from repro.fhir import (
    MedicalDataGenerator,
    medication_dispense_schema,
    observation_schema,
)
from repro.spi.descriptors import Aggregate


def main() -> None:
    cloud = CloudZone()
    transport = InProcTransport(cloud.host)
    blinder = DataBlinder("ehealth", transport)

    # -- Schema interface: the paper's annotations, verbatim ----------------
    blinder.register_schema(observation_schema())
    blinder.register_schema(medication_dispense_schema())

    print("=" * 72)
    print("Tactic selection for the FHIR Observation schema (paper §5.1)")
    print("=" * 72)
    print(blinder.policy_report("observation"))
    print()

    # -- Load a synthetic cohort --------------------------------------------
    generator = MedicalDataGenerator(seed=2019)
    dataset = generator.dataset(patients=12, observations_per_patient=8,
                                dispenses_per_patient=5)
    observations = blinder.entities("observation")
    dispenses = blinder.entities("medication_dispense")
    for observation in dataset.observations:
        observations.insert(observation.to_document())
    for dispense in dataset.dispenses:
        dispenses.insert(dispense.to_document())
    print(f"Loaded {len(dataset.observations)} observations and "
          f"{len(dataset.dispenses)} dispenses for "
          f"{len(dataset.patients)} patients.\n")

    # -- Query 1: boolean search (paper: "finding the patient with a
    #    particular gastric cancer who was admitted ...") -------------------
    print("Q1  Final glucose observations (boolean cross-field search):")
    hits = observations.find(
        Eq("code", "glucose") & Eq("status", "final")
    )
    for doc in hits[:5]:
        print(f"    {doc['id']}: subject={doc['subject']}, "
              f"value={doc['value']}")
    print(f"    ... {len(hits)} total\n")

    # -- Query 2: aggregate (paper: "calculating the average heart rate of
    #    a patient") --------------------------------------------------------
    patient = dataset.patients[0].name
    average = observations.average("value", where=Eq("subject", patient))
    print(f"Q2  Average observation value for {patient} "
          f"(Paillier, computed blind in the cloud): "
          f"{average:.2f}" if average is not None else
          f"Q2  No observations for {patient}")
    print()

    # -- Query 3: aggregated search (paper: "the number of times that the
    #    nurses refilled Doxycycline for a patient") ------------------------
    target = dataset.dispenses[0]
    refills = dispenses.aggregate(AggregateQuery(
        Aggregate.COUNT, "quantity",
        where=Eq("patient", target.patient)
        & Eq("medication", target.medication),
    ))
    quantity = dispenses.sum(
        "quantity",
        where=Eq("patient", target.patient)
        & Eq("medication", target.medication),
    )
    print(f"Q3  {target.medication} refills for {target.patient}: "
          f"{refills} dispenses, {quantity:.0f} units total "
          f"(homomorphic sum)\n")

    # -- Bonus: a date-range query over OPE ---------------------------------
    times = sorted(o.effective for o in dataset.observations)
    low, high = times[10], times[40]
    in_window = observations.count(Range("effective", low, high))
    print(f"Q4  Observations in a clinical time window "
          f"(range over OPE): {in_window}")

    # -- What crossed the wire ----------------------------------------------
    stats = transport.stats()
    print(f"\nGateway<->cloud traffic: {stats.messages_sent} requests, "
          f"{stats.bytes_sent:,} bytes up / "
          f"{stats.bytes_received:,} bytes down "
          f"(all ciphertexts and trapdoors — no plaintext)")


if __name__ == "__main__":
    main()
