"""Why protection classes exist: attacking a snapshot of the cloud.

Run:  python examples/leakage_analysis.py

Deploys a medical schema protecting the same kind of data at different
classes, dumps the untrusted zone the way a data-breach attacker would
(the paper's snapshot model), and mounts the inference attacks the paper
cites: frequency analysis against DET (class 4) and the dense-domain
sorting attack against OPE (class 5).  The same attacks find nothing to
work with on the Mitra- (class 2) and RND- (class 1) protected fields.
"""

import random

from repro import CloudZone, DataBlinder, FieldAnnotation, InProcTransport, Schema
from repro.analysis import (
    SnapshotAdversary,
    auxiliary_distribution,
    frequency_attack,
    sorting_attack,
)


def main() -> None:
    cloud = CloudZone()
    blinder = DataBlinder("breach-demo", InProcTransport(cloud.host))
    schema = Schema.define(
        "record",
        id="string",
        diagnosis=("string", FieldAnnotation.parse("C4", "I,EQ")),  # DET
        patient=("string", FieldAnnotation.parse("C2", "I,EQ")),   # Mitra
        age=("int", FieldAnnotation.parse("C5", "I,RG")),          # OPE
    )
    blinder.register_schema(schema)
    records = blinder.entities("record")

    # A realistically skewed diagnosis distribution (public knowledge).
    rng = random.Random(42)
    diagnoses = (["hypertension"] * 40 + ["diabetes"] * 25
                 + ["asthma"] * 12 + ["copd"] * 6 + ["gastric-cancer"] * 2)
    rng.shuffle(diagnoses)
    truth_age = {}
    for index, diagnosis in enumerate(diagnoses):
        doc_id = records.insert({
            "id": f"r{index}", "diagnosis": diagnosis,
            "patient": f"patient-{index}", "age": 20 + index,
        })
        truth_age[doc_id] = 20 + index

    print("The cloud provider is breached: the attacker dumps the zone.\n")
    adversary = SnapshotAdversary(cloud, "breach-demo")
    print(adversary.report().render())

    # --- Attack 1: frequency analysis against the DET field ----------------
    histogram = adversary.det_token_histogram("diagnosis", schema="record")
    auxiliary = auxiliary_distribution(diagnoses)
    result = frequency_attack(histogram, auxiliary)
    print("\n[class 4 / DET] diagnosis tokens and frequency-matched "
          "guesses:")
    for token, guess in sorted(result.guesses.items(),
                               key=lambda kv: -histogram[kv[0]]):
        print(f"  token {token[:8].hex()}…  seen {histogram[token]:>3}x  "
              f"-> guessed '{guess}'")
    print("  (with skewed public distributions the ranking is exact — "
          "the Naveed et al. attack the paper cites)")

    # --- Attack 2: sorting attack against the OPE field --------------------
    order = adversary.ope_ciphertext_order("age", schema="record")
    sort_result = sorting_attack(order, list(truth_age.values()),
                                 truth_age)
    print(f"\n[class 5 / OPE] dense-domain sorting attack on 'age': "
          f"{sort_result.render()}")

    # --- The stronger classes give the attacker nothing --------------------
    mitra_view = adversary.sse_visible_structure("patient",
                                                 schema="record")
    print(f"\n[class 2 / Mitra] 'patient' index as seen in the snapshot: "
          f"{mitra_view['entries']} opaque entries at pseudorandom "
          f"addresses, {mitra_view['bytes']:,} bytes — no frequencies, "
          f"no order, nothing to rank.")
    print("\nThis is the trade the Fig. 2 annotation model prices: "
          "class 4/5 buy cheap, expressive queries by leaking exactly "
          "what these attacks consume.")


if __name__ == "__main__":
    main()
