"""FHIR models, annotated schemas and the synthetic data generator."""

import pytest

from repro.core.registry import TacticRegistry
from repro.core.selection import TacticSelector
from repro.fhir.generator import MedicalDataGenerator
from repro.fhir.model import (
    MedicationDispense,
    Observation,
    Patient,
    benchmark_observation_schema,
    medication_dispense_schema,
    observation_schema,
    patient_schema,
)
from repro.tactics import register_builtin_tactics


@pytest.fixture(scope="module")
def selector():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return TacticSelector(registry)


class TestModels:
    def test_observation_document_roundtrip(self):
        observation = Observation(
            id="f001", identifier=6323, status="final", code="glucose",
            subject="John Doe", effective=1359966610, issued=1362407410,
            performer="John Smith", value=6.3, interpretation="high",
        )
        document = observation.to_document()
        assert document["value"] == 6.3
        assert Observation.from_document(document) == observation

    def test_from_document_ignores_extras(self):
        document = Observation(
            id="x", identifier=1, status="final", code="c", subject="s",
            effective=0, issued=0, performer="p", value=1.0,
        ).to_document()
        document["_id"] = "storage-id"
        assert Observation.from_document(document).id == "x"

    def test_patient_roundtrip(self):
        patient = Patient(id="p1", name="Jane Roe",
                          birth_date="1980-01-01", gender="female",
                          address_city="Leuven", condition="asthma")
        assert Patient.from_document(patient.to_document()) == patient

    def test_dispense_roundtrip(self):
        dispense = MedicationDispense(
            id="m1", patient="Jane Roe", medication="Doxycycline",
            performer="Nurse Adams", quantity=30,
            when_handed_over=1359966610,
        )
        assert MedicationDispense.from_document(
            dispense.to_document()
        ) == dispense


class TestSchemas:
    def test_observation_schema_matches_paper_annotations(self):
        schema = observation_schema()
        assert schema.annotation("status").describe() == "C3, op [BL,EQ,I]"
        assert schema.annotation("effective").describe() == (
            "C5, op [BL,EQ,I,RG]"
        )
        assert schema.annotation("performer").describe() == "C1, op [I]"
        assert schema.annotation("value").describe() == (
            "C3, op [BL,EQ,I], agg [avg]"
        )

    @pytest.mark.parametrize("factory", [
        observation_schema, benchmark_observation_schema, patient_schema,
        medication_dispense_schema,
    ])
    def test_all_schemas_are_plannable(self, factory, selector):
        plans = selector.plan_schema(factory())
        assert plans

    def test_schemas_validate_generated_documents(self):
        generator = MedicalDataGenerator(1)
        dataset = generator.dataset(patients=3, observations_per_patient=2,
                                    dispenses_per_patient=1)
        obs_schema = observation_schema()
        for observation in dataset.observations:
            obs_schema.validate(observation.to_document())
        pat_schema = patient_schema()
        for patient in dataset.patients:
            pat_schema.validate(patient.to_document())
        med_schema = medication_dispense_schema()
        for dispense in dataset.dispenses:
            med_schema.validate(dispense.to_document())


class TestGenerator:
    def test_seed_reproducibility(self):
        a = MedicalDataGenerator(42).dataset(patients=5)
        b = MedicalDataGenerator(42).dataset(patients=5)
        assert [p.name for p in a.patients] == [p.name for p in b.patients]
        assert [o.value for o in a.observations] == [
            o.value for o in b.observations
        ]

    def test_different_seeds_differ(self):
        a = MedicalDataGenerator(1).dataset(patients=10)
        b = MedicalDataGenerator(2).dataset(patients=10)
        assert [o.value for o in a.observations] != [
            o.value for o in b.observations
        ]

    def test_ids_are_unique(self):
        dataset = MedicalDataGenerator(1).dataset(patients=20)
        all_ids = ([p.id for p in dataset.patients]
                   + [o.id for o in dataset.observations]
                   + [m.id for m in dataset.dispenses])
        assert len(set(all_ids)) == len(all_ids)

    def test_observation_values_in_plausible_bounds(self):
        generator = MedicalDataGenerator(3)
        patient = generator.patient()
        for _ in range(100):
            observation = generator.observation(patient, code="glucose")
            assert 2.0 <= observation.value <= 20.0
            assert observation.issued > observation.effective
            assert observation.interpretation in ("high", "low", "normal")

    def test_observation_subject_links_patient(self):
        generator = MedicalDataGenerator(4)
        patient = generator.patient()
        assert generator.observation(patient).subject == patient.name

    def test_flat_observation_stream(self):
        observations = MedicalDataGenerator(5).observations(
            50, cohort_size=5
        )
        assert len(observations) == 50
        assert len({o.subject for o in observations}) <= 5

    def test_dataset_shape(self):
        dataset = MedicalDataGenerator(6).dataset(
            patients=4, observations_per_patient=3, dispenses_per_patient=2
        )
        assert len(dataset.patients) == 4
        assert len(dataset.observations) == 12
        assert len(dataset.dispenses) == 8
