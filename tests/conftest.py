"""Shared fixtures: a full gateway+cloud deployment in one process."""

from __future__ import annotations

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.registry import TacticRegistry
from repro.net.transport import InProcTransport
from repro.spi.context import CloudTacticContext, GatewayTacticContext
from repro.tactics import register_builtin_tactics


@pytest.fixture()
def registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


@pytest.fixture()
def cloud(registry) -> CloudZone:
    return CloudZone(registry)


@pytest.fixture()
def transport(cloud) -> InProcTransport:
    return InProcTransport(cloud.host)


@pytest.fixture()
def blinder(transport, registry) -> DataBlinder:
    return DataBlinder("testapp", transport, registry=registry)


class TacticHarness:
    """Instantiates one tactic's gateway half against a live cloud zone."""

    def __init__(self, cloud: CloudZone, transport: InProcTransport,
                 registry: TacticRegistry, application: str = "testapp"):
        from repro.gateway.service import GatewayRuntime

        self.cloud = cloud
        self.registry = registry
        self.runtime = GatewayRuntime(application, transport, registry)

    def gateway(self, tactic: str, field: str = "doc.field"):
        return self.runtime.tactic(field, tactic)

    def cloud_instance(self, tactic: str, field: str = "doc.field"):
        return self.cloud.tactic_instance(
            self.runtime.application, field, tactic
        )


@pytest.fixture()
def harness(cloud, transport, registry) -> TacticHarness:
    return TacticHarness(cloud, transport, registry)
