"""Query planner: plan IR, cache, EXPLAIN, cost-based adaptive selection,
and the engine-level fixes (prefetch drain, unified fetch chunking,
decrypt-free count)."""

import time

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.planner import walk
from repro.core.planner import ir
from repro.core.planner.compile import parameterize
from repro.core.query import And, Eq, Not, Or, Range
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport, Transport
from repro.tactics import register_builtin_tactics


def make_schema(name="rec"):
    return Schema.define(
        name,
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        code=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        subject=("string", FieldAnnotation.parse("C2", "I,EQ")),
        when=("int", FieldAnnotation.parse("C5", "I,EQ,RG", "min,max")),
        score=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
        note="string",
    )


def make_docs(n):
    return [
        {
            "status": ["draft", "active", "done"][i % 3],
            "code": ["a", "b"][i % 2],
            "subject": f"s{i % 4}",
            "when": i,
            "score": float(i % 5),
            "note": f"n{i}",
        }
        for i in range(n)
    ]


def deploy(pipeline=None, n_docs=30, transport_wrap=None):
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    transport = InProcTransport(cloud.host)
    if transport_wrap is not None:
        transport = transport_wrap(transport)
    blinder = DataBlinder("plannertest", transport, registry=registry,
                          pipeline=pipeline)
    blinder.register_schema(make_schema())
    entities = blinder.entities("rec")
    if n_docs:
        entities.insert_many(make_docs(n_docs))
    return blinder, entities


class CountingTransport(Transport):
    """Counts (service-suffix, method) call pairs."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = {}

    def call(self, service, method, **kwargs):
        key = (service.rsplit("/", 1)[-1], method)
        self.calls[key] = self.calls.get(key, 0) + 1
        return self.inner.call(service, method, **kwargs)

    def method_calls(self, method):
        return sum(
            count for (_, m), count in self.calls.items() if m == method
        )

    def stats(self):
        return self.inner.stats()


class TestParameterize:
    def test_values_leave_the_shape(self):
        p1 = And([Eq("status", "draft"), Range("when", 3, 9)])
        p2 = And([Eq("status", "done"), Range("when", 0, 50)])
        _, values1, shape1 = parameterize(p1)
        _, values2, shape2 = parameterize(p2)
        assert shape1 == shape2
        assert values1 == ["draft", 3, 9]
        assert values2 == ["done", 0, 50]

    def test_open_bounds_change_the_shape(self):
        _, _, low_only = parameterize(Range("when", low=3))
        _, _, high_only = parameterize(Range("when", high=3))
        assert low_only != high_only

    def test_duplicate_literals_get_distinct_slots(self):
        # CNF dedup may only merge structurally identical Params, never
        # two user literals that happen to share a value — otherwise a
        # cached plan would be wrong for same-shape different-value runs.
        _, values, _ = parameterize(
            Or([Eq("status", "draft"), Eq("status", "draft")])
        )
        assert values == ["draft", "draft"]

    def test_none_predicate(self):
        assert parameterize(None) == (None, [], None)


class TestPlanCache:
    def test_same_shape_hits_different_values_work(self):
        blinder, entities = deploy()
        shape = lambda lo, hi: And(
            [Eq("status", "draft"), Range("when", lo, hi)]
        )
        first = entities.find(shape(0, 10))
        second = entities.find(shape(10, 29))
        stats = blinder.planner_stats("rec")
        assert stats["cache_hits"] >= 1
        # Values bound per execution: results differ, both correct.
        assert {d["when"] for d in first} == {0, 3, 6, 9}
        assert {d["when"] for d in second} == {12, 15, 18, 21, 24, 27}

    def test_different_shapes_miss(self):
        blinder, entities = deploy()
        before = blinder.planner_stats("rec")
        entities.find(Eq("status", "draft"))
        entities.find(Eq("code", "a"))
        entities.find(Range("when", 1, 2))
        after = blinder.planner_stats("rec")
        assert after["cache_hits"] == before["cache_hits"]
        assert after["cache_misses"] - before["cache_misses"] == 3

    def test_cache_disabled_compiles_every_time(self):
        blinder, entities = deploy(PipelineConfig(plan_cache=False))
        before = blinder.planner_stats("rec")["compiles"]
        entities.find(Eq("status", "draft"))
        entities.find(Eq("status", "active"))
        after = blinder.planner_stats("rec")["compiles"]
        assert after - before == 2

    def test_migrate_schema_invalidates(self):
        blinder, entities = deploy(n_docs=8)
        entities.find(Eq("status", "draft"))
        entities.find(Eq("status", "active"))
        executor = blinder._executor("rec")
        assert executor.planner.cached_plans() > 0
        blinder.migrate_schema("rec")
        new_executor = blinder._executor("rec")
        assert new_executor is not executor
        stats = blinder.planner_stats("rec")
        assert stats["invalidations"] >= 1
        # The old executor's find plans are gone: the same shape misses
        # again on the new planner, recompiles, and still answers.
        # (The migration itself may have cached write plans — only the
        # read-path shapes matter here.)
        docs = blinder.entities("rec").find(Eq("status", "draft"))
        assert {d["status"] for d in docs} <= {"draft"}
        assert (
            blinder.planner_stats("rec")["cache_misses"]
            == stats["cache_misses"] + 1
        )


class TestExplain:
    def test_stable_and_side_effect_free(self):
        blinder, entities = deploy(n_docs=6)
        predicate = And([Eq("status", "draft"), Range("when", 1, 4)])
        before = blinder.planner_stats("rec")
        cached_before = blinder._executor("rec").planner.cached_plans()
        one = blinder.explain("rec", predicate)
        two = blinder.explain("rec", predicate)
        assert one == two
        after = blinder.planner_stats("rec")
        assert after["compiles"] == before["compiles"]
        assert after["cache_hits"] == before["cache_hits"]
        assert after["cache_misses"] == before["cache_misses"]
        assert blinder._executor("rec").planner.cached_plans() == (
            cached_before
        )

    def test_renders_cost_and_leakage_for_every_predicate_form(self):
        blinder, entities = deploy(n_docs=6)
        plans = {
            "eq-sensitive": blinder.explain("rec", Eq("subject", "s1")),
            "eq-plain": blinder.explain("rec", Eq("note", "n1")),
            "range": blinder.explain("rec", Range("when", 1, 4)),
            "and-or-not": blinder.explain("rec", And([
                Or([Eq("status", "draft"), Eq("code", "a")]),
                Not(Eq("subject", "s1")),
            ])),
            "count": blinder.explain("rec", Eq("status", "draft"),
                                     operation="count"),
            "aggregate": blinder.explain(
                "rec", operation="aggregate", function="min", field="when"
            ),
            "sorted": blinder.explain(
                "rec", operation="find_sorted", field="when"
            ),
            "write": blinder.explain("rec", operation="insert"),
        }
        for text in plans.values():
            assert "cost" in text and "ms" in text
        assert "IndexLookup" in plans["eq-sensitive"]
        assert "leaks" in plans["eq-sensitive"]
        assert "plaintext field" in plans["eq-plain"]
        assert "leaks order" in plans["range"]
        assert "BoolQuery" in plans["and-or-not"]
        assert "SetOp(diff)" in plans["and-or-not"]
        assert "Count" in plans["count"]
        assert "Extreme(min(when)" in plans["aggregate"]
        assert "OrderedScan" in plans["sorted"]
        assert "WritePipeline" in plans["write"]
        assert "StoreWrite(insert_many)" in plans["write"]

    def test_entities_explain_passthrough(self):
        blinder, entities = deploy(n_docs=0)
        assert "plan: find" in entities.explain(Eq("status", "draft"))


class TestPlanShape:
    def test_count_plan_is_decrypt_free_for_exact_indexes(self):
        blinder, _ = deploy(n_docs=0)
        plan = blinder._executor("rec").planner.explain_plan(
            operation="count", predicate=Eq("status", "draft")
        )
        kinds = [node.kind for node, _ in walk(plan.root)]
        assert "FetchDocs" not in kinds and "Verify" not in kinds

    def test_count_plan_keeps_verify_for_approximate_indexes(self):
        blinder, _ = deploy(n_docs=0)
        plan = blinder._executor("rec").planner.explain_plan(
            operation="count", predicate=Range("when", 1, 4)
        )
        kinds = [node.kind for node, _ in walk(plan.root)]
        assert "FetchDocs" in kinds and "Verify" in kinds

    def test_boolean_clauses_compile_to_one_bool_query(self):
        blinder, _ = deploy(n_docs=0)
        plan = blinder._executor("rec").planner.explain_plan(
            predicate=And([Eq("status", "draft"), Eq("code", "a")])
        )
        bool_nodes = [
            node for node, _ in walk(plan.root)
            if isinstance(node, ir.BoolQuery)
        ]
        assert len(bool_nodes) == 1
        assert len(bool_nodes[0].clauses) == 2


class TestDecryptFreeCount:
    def test_exact_count_fetches_no_documents(self):
        wrapper = {}

        def wrap(inner):
            wrapper["t"] = CountingTransport(inner)
            return wrapper["t"]

        blinder, entities = deploy(n_docs=24, transport_wrap=wrap)
        counting = wrapper["t"]
        baseline = counting.method_calls("get_many")
        exact = entities.count(Eq("status", "draft"))
        assert counting.method_calls("get_many") == baseline
        assert exact == len(entities.find(Eq("status", "draft")))

    def test_approximate_count_still_verifies(self):
        wrapper = {}

        def wrap(inner):
            wrapper["t"] = CountingTransport(inner)
            return wrapper["t"]

        blinder, entities = deploy(n_docs=24, transport_wrap=wrap)
        counting = wrapper["t"]
        baseline = counting.method_calls("get_many")
        verified = entities.count(Range("when", 3, 11))
        assert counting.method_calls("get_many") > baseline
        assert verified == len(entities.find(Range("when", 3, 11)))

    def test_count_correct_after_delete(self):
        _, entities = deploy(n_docs=12)
        victim = sorted(entities.find_ids(Eq("status", "draft")))[0]
        assert entities.delete(victim)
        assert entities.count(Eq("status", "draft")) == len(
            entities.find(Eq("status", "draft"))
        )


class TestFetchChunkKnob:
    def _get_many_calls(self, pipeline, action):
        wrapper = {}

        def wrap(inner):
            wrapper["t"] = CountingTransport(inner)
            return wrapper["t"]

        _, entities = deploy(pipeline, n_docs=40, transport_wrap=wrap)
        counting = wrapper["t"]
        before = counting.method_calls("get_many")
        action(entities)
        return counting.method_calls("get_many") - before

    def test_find_respects_override(self):
        unlimited = lambda e: e.find(Eq("code", "a"))  # 20 matches
        assert self._get_many_calls(None, unlimited) == 1  # legacy 64
        assert self._get_many_calls(
            PipelineConfig(fetch_chunk=5), unlimited
        ) == 4

    def test_find_sorted_respects_override(self):
        sweep = lambda e: e.find_sorted("when")  # 40 docs
        assert self._get_many_calls(None, sweep) == 2  # legacy 32
        assert self._get_many_calls(
            PipelineConfig(fetch_chunk=8), sweep
        ) == 5

    def test_extreme_respects_override(self):
        # min() touches only the head of the order index: one chunk,
        # whose size is the knob (legacy 16).
        wrapper = {}

        def wrap(inner):
            wrapper["t"] = CountingTransport(inner)
            return wrapper["t"]

        _, entities = deploy(PipelineConfig(fetch_chunk=4), n_docs=40,
                             transport_wrap=wrap)
        assert entities.min("when") == 0
        assert wrapper["t"].method_calls("get_many") >= 1


class SlowGetMany(Transport):
    """Delays get_many and tracks in-flight fetches."""

    def __init__(self, inner, delay=0.03):
        self.inner = inner
        self.delay = delay
        self.in_flight = 0
        self.total = 0
        import threading

        self._lock = threading.Lock()

    def call(self, service, method, **kwargs):
        if method == "get_many":
            with self._lock:
                self.in_flight += 1
                self.total += 1
            try:
                time.sleep(self.delay)
                return self.inner.call(service, method, **kwargs)
            finally:
                with self._lock:
                    self.in_flight -= 1
        return self.inner.call(service, method, **kwargs)

    def stats(self):
        return self.inner.stats()


class TestPrefetchDrain:
    def test_early_limit_return_leaves_no_pending_fetch(self):
        wrapper = {}

        def wrap(inner):
            wrapper["t"] = SlowGetMany(inner)
            return wrapper["t"]

        _, entities = deploy(
            PipelineConfig(prefetch=True), n_docs=80, transport_wrap=wrap
        )
        slow = wrapper["t"]
        results = entities.find(Range("when", 0, 79), limit=1)
        assert len(results) == 1
        # The prefetched next chunk must be cancelled or drained before
        # find() returns — nothing may still be on the wire.
        assert slow.in_flight == 0
        settled = slow.total
        time.sleep(slow.delay * 3)
        assert slow.total == settled  # and nothing fires later either

    def test_prefetch_still_overlaps_and_is_correct(self):
        _, entities = deploy(PipelineConfig(prefetch=True,
                                            fetch_chunk=8), n_docs=40)
        docs = entities.find(Range("when", 0, 39))
        assert {d["when"] for d in docs} == set(range(40))


class DelayTactic(Transport):
    """Penalises every call to one tactic's cloud services."""

    def __init__(self, inner, tactic, delay=0.02):
        self.inner = inner
        self.tactic = tactic
        self.delay = delay

    def call(self, service, method, **kwargs):
        if service.rsplit("/", 1)[-1] == self.tactic:
            time.sleep(self.delay)
        return self.inner.call(service, method, **kwargs)

    def stats(self):
        return self.inner.stats()


class TestAdaptiveSelection:
    def test_alternatives_are_recorded_per_role(self):
        blinder, _ = deploy(n_docs=0)
        plan = blinder._executor("rec").plans["subject"]
        assert plan.alternatives.get("eq"), (
            "C2 equality field should admit runner-up tactics"
        )

    def test_cost_based_selection_switches_off_slow_primary(self):
        registry = TacticRegistry()
        register_builtin_tactics(registry)
        cloud = CloudZone(registry)
        probe = DataBlinder(
            "probe", InProcTransport(CloudZone(registry).host),
            registry=registry,
        )
        probe.register_schema(make_schema())
        plan = probe._executor("rec").plans["subject"]
        primary = plan.roles["eq"]
        alternatives = plan.alternatives["eq"]

        transport = DelayTactic(InProcTransport(cloud.host), primary)
        pipeline = PipelineConfig(adaptive_selection=True,
                                  adaptive_warmup=1)
        blinder = DataBlinder("plannertest", transport, registry=registry,
                              pipeline=pipeline)
        blinder.register_schema(make_schema())
        entities = blinder.entities("rec")
        entities.insert_many(make_docs(12))

        expected = entities.find_ids(Eq("subject", "s1"))
        assert len(expected) == 3  # i in {1, 5, 9}
        # Warmup explores each candidate once, then the EWMAs take over.
        for _ in range(2 + len(alternatives)):
            got = entities.find_ids(Eq("subject", "s1"))
            assert got == expected  # alternatives are dual-indexed
        chosen = blinder.planner_stats("rec")["chosen"]["subject.eq"]
        assert chosen in alternatives
        assert chosen != primary

    def test_adaptive_off_never_leaves_primary(self):
        blinder, entities = deploy(n_docs=12)
        primary = blinder._executor("rec").plans["subject"].roles["eq"]
        for _ in range(4):
            entities.find(Eq("subject", "s1"))
        chosen = blinder.planner_stats("rec")["chosen"]["subject.eq"]
        assert chosen == primary


class TestPlannerReport:
    def test_report_renders(self):
        blinder, entities = deploy(n_docs=6)
        entities.find(Eq("status", "draft"))
        entities.find(Eq("status", "draft"))
        report = blinder.planner_report("rec")
        assert "cache hits" in report
        assert "node timings" in report


class EpochShiftingTransport(Transport):
    """Wrapper whose topology epoch a test can move by hand."""

    def __init__(self, inner):
        self.inner = inner
        self.epoch = 1

    def call(self, service, method, **kwargs):
        return self.inner.call(service, method, **kwargs)

    def stats(self):
        return self.inner.stats()

    def topology_epoch(self):
        return self.epoch


class TestTopologyInvalidation:
    def test_epoch_move_drops_cached_plans(self):
        wrappers = []

        def wrap(inner):
            wrapper = EpochShiftingTransport(inner)
            wrappers.append(wrapper)
            return wrapper

        blinder, entities = deploy(n_docs=12, transport_wrap=wrap)
        (wrapper,) = wrappers

        entities.find_ids(Eq("status", "active"))
        entities.find_ids(Eq("status", "active"))
        warm = blinder.planner_stats("rec")
        assert warm["cache_hits"] >= 1
        assert warm["topology_invalidations"] == 0

        wrapper.epoch = 2
        assert entities.find_ids(Eq("status", "active")) \
            == entities.find_ids(Eq("status", "active"))
        stats = blinder.planner_stats("rec")
        assert stats["topology_invalidations"] == 1
        assert stats["invalidations"] >= 1
        # Same epoch again: the cache warms back up, no new drop.
        assert blinder.planner_stats("rec")["topology_invalidations"] == 1

    def test_sharded_join_invalidates_end_to_end(self):
        from repro.cloud.cluster import CloudCluster
        from repro.shard.config import ShardConfig
        from repro.shard.router import ShardedTransport

        registry = TacticRegistry()
        register_builtin_tactics(registry)
        cluster = CloudCluster(2, registry=registry)
        router = ShardedTransport(cluster.nodes(),
                                  ShardConfig(parallel_fanout=False))
        blinder = DataBlinder("plannertest", router, registry=registry)
        blinder.register_schema(make_schema())
        entities = blinder.entities("rec")
        entities.insert_many(make_docs(8))

        baseline = entities.find_ids(Eq("status", "active"))
        entities.find_ids(Eq("status", "active"))
        assert blinder.planner_stats("rec")["topology_invalidations"] == 0

        router.begin_join(*cluster.add_zone("zone-9"))
        assert entities.find_ids(Eq("status", "active")) == baseline
        assert blinder.planner_stats("rec")["topology_invalidations"] == 1

        router.finish_migration()
        # No data was migrated to zone-9, so doc fetches may miss; a
        # count (sum over shards) is placement-independent and still
        # exercises the planner.
        assert entities.count() == 8
        assert blinder.planner_stats("rec")["topology_invalidations"] == 2
        cluster.close()

    def test_report_counts_topology_drops(self):
        wrappers = []

        def wrap(inner):
            wrapper = EpochShiftingTransport(inner)
            wrappers.append(wrapper)
            return wrapper

        blinder, entities = deploy(n_docs=6, transport_wrap=wrap)
        entities.find(Eq("status", "draft"))
        wrappers[0].epoch = 5
        entities.find(Eq("status", "draft"))
        assert "(1 topology)" in blinder.planner_report("rec")
