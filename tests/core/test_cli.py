"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Equality Search" in out
        assert "DET" in out and "Paillier" in out

    def test_selection(self, capsys):
        assert main(["selection"]) == 0
        out = capsys.readouterr().out
        assert "biex-2lev" in out
        assert "det, ope" in out

    def test_leakage(self, capsys):
        assert main(["leakage"]) == 0
        out = capsys.readouterr().out
        assert "Per-operation leakage" in out
        assert "mitra" in out and "2f" in out

    def test_default_is_tables(self, capsys):
        assert main([]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "Commands" in capsys.readouterr().out
