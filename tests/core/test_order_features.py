"""Order-index features: min/max aggregates and ORDER BY (Fig. 2 lists
minimum/maximum among the aggregate functions)."""

import pytest

from repro.core.query import Eq, Range
from repro.core.schema import FieldAnnotation, Schema
from repro.errors import SelectionError, UnsupportedOperation


def reading_schema():
    return Schema.define(
        "reading",
        id="string",
        sensor=("string", FieldAnnotation.parse("C2", "I,EQ")),
        ts=("int", FieldAnnotation.parse("C5", "I,RG", "min,max")),
        level=("float", FieldAnnotation.parse("C5", "I,RG", "min,max")),
    )


@pytest.fixture()
def readings(blinder):
    blinder.register_schema(reading_schema())
    entities = blinder.entities("reading")
    data = [
        ("s1", 100, 3.5), ("s2", 200, 1.25), ("s1", 300, 9.0),
        ("s2", 400, -2.5), ("s1", 500, 4.75),
    ]
    ids = [
        entities.insert({"id": f"r{i}", "sensor": sensor, "ts": ts,
                         "level": level})
        for i, (sensor, ts, level) in enumerate(data)
    ]
    return entities, ids, data


class TestSelection:
    def test_min_max_reuse_range_tactic(self, registry):
        from repro.core.selection import TacticSelector

        plan = TacticSelector(registry).plan_field(
            "f", FieldAnnotation.parse("C5", "I,RG", "min,max")
        )
        assert plan.roles["range"] == "ope"
        assert plan.roles["agg:min"] == "ope"
        assert plan.roles["agg:max"] == "ope"

    def test_min_without_range_annotation_still_selects_order_tactic(
            self, registry):
        from repro.core.selection import TacticSelector

        plan = TacticSelector(registry).plan_field(
            "f", FieldAnnotation.parse("C5", "I", "min")
        )
        assert plan.roles["agg:min"] == "ope"

    def test_min_below_c5_rejected(self, registry):
        from repro.core.selection import TacticSelector

        with pytest.raises(SelectionError):
            TacticSelector(registry).plan_field(
                "f", FieldAnnotation.parse("C4", "I", "min")
            )


class TestMinMax:
    def test_global_extremes(self, readings):
        entities, _, _ = readings
        assert entities.min("level") == -2.5
        assert entities.max("level") == 9.0
        assert entities.min("ts") == 100
        assert entities.max("ts") == 500

    def test_filtered_extremes(self, readings):
        entities, _, _ = readings
        assert entities.min("level", where=Eq("sensor", "s1")) == 3.5
        assert entities.max("level", where=Eq("sensor", "s2")) == 1.25

    def test_empty_filter_returns_none(self, readings):
        entities, _, _ = readings
        assert entities.min("level", where=Eq("sensor", "ghost")) is None

    def test_extremes_respect_updates(self, readings):
        entities, ids, _ = readings
        entities.update(ids[3], {"level": 100.0})  # was the minimum
        assert entities.min("level") == 1.25
        assert entities.max("level") == 100.0

    def test_extremes_respect_deletes(self, readings):
        entities, ids, _ = readings
        entities.delete(ids[2])  # was the level maximum
        assert entities.max("level") == 4.75

    def test_unannotated_aggregate_rejected(self, readings):
        entities, _, _ = readings
        with pytest.raises(UnsupportedOperation):
            entities.min("sensor")


class TestOrderBy:
    def test_sorted_ascending(self, readings):
        entities, _, data = readings
        docs = entities.find_sorted("level")
        assert [d["level"] for d in docs] == sorted(x[2] for x in data)

    def test_sorted_descending_with_limit(self, readings):
        entities, _, data = readings
        docs = entities.find_sorted("ts", limit=2, descending=True)
        assert [d["ts"] for d in docs] == [500, 400]

    def test_sorted_skips_deleted(self, readings):
        entities, ids, _ = readings
        entities.delete(ids[0])
        docs = entities.find_sorted("ts", limit=2)
        assert [d["ts"] for d in docs] == [200, 300]

    def test_sorted_on_unindexed_field_rejected(self, readings):
        entities, _, _ = readings
        with pytest.raises(UnsupportedOperation):
            entities.find_sorted("sensor")

    def test_combined_with_range_predicate(self, readings):
        entities, _, _ = readings
        in_range = entities.find(Range("ts", 150, 450))
        assert {d["ts"] for d in in_range} == {200, 300, 400}
