"""Batched writes, parallel fan-out and prefetch through the executor.

Every test compares a pipelined deployment against the unbatched
baseline: identical results, fewer (or equally many) wire frames.
"""

import copy

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Not, Or, Range
from repro.core.registry import TacticRegistry
from repro.fhir.generator import MedicalDataGenerator
from repro.fhir.model import benchmark_observation_schema, observation_schema
from repro.net.batch import PipelineConfig
from repro.net.latency import NetworkStats
from repro.net.transport import InProcTransport, Transport
from repro.tactics import register_builtin_tactics

FULL_PIPELINE = PipelineConfig(batch_writes=True, fanout_workers=4,
                               prefetch=True)


def make_deployment(pipeline=None, schema=None, transport_wrapper=None):
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    transport = InProcTransport(cloud.host)
    outer = transport_wrapper(transport) if transport_wrapper else transport
    blinder = DataBlinder("testapp", outer, registry=registry,
                          pipeline=pipeline)
    blinder.register_schema((schema or observation_schema)())
    return blinder.entities("observation"), transport


def documents(count=8, seed=7):
    generator = MedicalDataGenerator(seed)
    return [o.to_document() for o in
            generator.observations(count, cohort_size=3)]


class TestBatchedWrites:
    def test_multi_field_insert_is_one_frame(self):
        entities, transport = make_deployment(
            PipelineConfig(batch_writes=True),
            schema=benchmark_observation_schema,
        )
        before = transport.stats().messages_sent
        entities.insert(documents(1)[0])
        # 8 tactic index writes + the document-store write: one frame.
        assert transport.stats().messages_sent - before == 1

    def test_unbatched_insert_stays_per_rpc(self):
        entities, transport = make_deployment(
            schema=benchmark_observation_schema
        )
        before = transport.stats().messages_sent
        entities.insert(documents(1)[0])
        # The baseline still pays one round trip per index write.
        assert transport.stats().messages_sent - before == 9

    def test_insert_many_is_one_frame(self):
        entities, transport = make_deployment(
            PipelineConfig(batch_writes=True),
            schema=benchmark_observation_schema,
        )
        before = transport.stats().messages_sent
        entities.insert_many(documents(5))
        assert transport.stats().messages_sent - before == 1

    def test_update_is_two_frames(self):
        entities, transport = make_deployment(
            PipelineConfig(batch_writes=True),
            schema=benchmark_observation_schema,
        )
        doc_id = entities.insert(documents(1)[0])
        before = transport.stats().messages_sent
        entities.update(doc_id, {"status": "amended"})
        # One read of the old document + one batch of every write.
        assert transport.stats().messages_sent - before == 2

    def test_delete_is_two_frames_and_returns_bool(self):
        entities, transport = make_deployment(
            PipelineConfig(batch_writes=True),
            schema=benchmark_observation_schema,
        )
        doc_id = entities.insert(documents(1)[0])
        before = transport.stats().messages_sent
        assert entities.delete(doc_id) is True
        # One read + one batch whose final element is the result-bearing
        # document-store delete.
        assert transport.stats().messages_sent - before == 2
        assert entities.delete(doc_id) is False


class TestEquivalence:
    """The pipelined deployment is an optimisation, not a behaviour."""

    PREDICATES = [
        Eq("subject", None),  # subject filled per-dataset below
        And([Eq("status", "final"), Eq("code", "HR")]),
        Or([Eq("code", "HR"), Eq("code", "GLU")]),
        And([Eq("status", "final"),
             Or([Eq("code", "HR"), Eq("code", "GLU")])]),
        Not(Eq("status", "final")),
        And([Not(Eq("code", "HR")), Not(Eq("status", "amended"))]),
    ]

    def _predicates(self, docs):
        subject = docs[0]["subject"]
        predicates = list(self.PREDICATES)
        predicates[0] = Eq("subject", subject)
        return predicates

    def test_full_pipeline_matches_baseline(self):
        docs = documents(10)
        baseline, _ = make_deployment()
        pipelined, _ = make_deployment(FULL_PIPELINE)
        base_ids = baseline.insert_many(copy.deepcopy(docs))
        pipe_ids = pipelined.insert_many(copy.deepcopy(docs))

        for predicate in self._predicates(docs):
            base_found = {d["subject"] for d in baseline.find(predicate)}
            pipe_found = {d["subject"] for d in pipelined.find(predicate)}
            assert base_found == pipe_found, predicate

        # Point reads and full scans agree too.
        assert baseline.get(base_ids[0])["value"] == pytest.approx(
            pipelined.get(pipe_ids[0])["value"]
        )
        assert baseline.count() == pipelined.count() == len(docs)

    def test_update_and_delete_equivalence(self):
        docs = documents(4)
        baseline, _ = make_deployment()
        pipelined, _ = make_deployment(FULL_PIPELINE)
        base_ids = baseline.insert_many(copy.deepcopy(docs))
        pipe_ids = pipelined.insert_many(copy.deepcopy(docs))

        baseline.update(base_ids[0], {"status": "amended", "value": 1.5})
        pipelined.update(pipe_ids[0], {"status": "amended", "value": 1.5})
        assert baseline.get(base_ids[0])["status"] == "amended"
        assert pipelined.get(pipe_ids[0])["status"] == "amended"
        assert (baseline.find_ids(Eq("status", "amended")) ==
                {base_ids[0]})
        assert (pipelined.find_ids(Eq("status", "amended")) ==
                {pipe_ids[0]})

        assert baseline.delete(base_ids[1]) is True
        assert pipelined.delete(pipe_ids[1]) is True
        assert baseline.count() == pipelined.count() == len(docs) - 1

    def test_range_queries_with_fanout(self):
        docs = documents(12)
        baseline, _ = make_deployment()
        pipelined, _ = make_deployment(FULL_PIPELINE)
        baseline.insert_many(copy.deepcopy(docs))
        pipelined.insert_many(copy.deepcopy(docs))
        issued = sorted(d["issued"] for d in docs)
        predicate = And([
            Range("issued", issued[2], issued[-3]),
            Or([Eq("status", "final"), Eq("status", "amended")]),
        ])
        assert ({d["id"] for d in baseline.find(predicate)} ==
                {d["id"] for d in pipelined.find(predicate)})


class SpyTransport(Transport):
    """Counts (service, method) pairs crossing the zone boundary."""

    def __init__(self, inner):
        self._inner = inner
        self.methods = []

    def call(self, service, method, **kwargs):
        self.methods.append((service, method))
        return self._inner.call(service, method, **kwargs)

    def call_batch(self, requests):
        self.methods.extend((r.service, r.method) for r in requests)
        return self._inner.call_batch(requests)

    def stats(self) -> NetworkStats:
        return self._inner.stats()

    def count(self, method):
        return sum(1 for _, m in self.methods if m == method)


class TestAllIdsCache:
    def _deployment(self, pipeline=None):
        spies = []

        def wrap(transport):
            spy = SpyTransport(transport)
            spies.append(spy)
            return spy

        entities, _ = make_deployment(pipeline, transport_wrapper=wrap)
        return entities, spies[0]

    def test_all_ids_fetched_once_per_evaluation(self):
        entities, spy = self._deployment()
        entities.insert_many(documents(6))
        spy.methods.clear()
        # Two negated literals in two clauses: both need the universe,
        # but one evaluation fetches it once.
        entities.find_ids(And([Not(Eq("status", "final")),
                               Not(Eq("code", "HR"))]))
        assert spy.count("all_ids") == 1

    def test_all_ids_fetched_once_with_fanout(self):
        entities, spy = self._deployment(
            PipelineConfig(fanout_workers=4)
        )
        entities.insert_many(documents(6))
        spy.methods.clear()
        entities.find_ids(And([Not(Eq("status", "final")),
                               Not(Eq("code", "HR"))]))
        assert spy.count("all_ids") == 1

    def test_cache_does_not_leak_across_evaluations(self):
        entities, spy = self._deployment()
        ids = entities.insert_many(documents(6))
        spy.methods.clear()
        assert entities.find_ids(Not(Eq("status", "no-such"))) == set(ids)
        entities.delete(ids[0])
        # A later evaluation sees the post-delete universe.
        found = entities.find_ids(Not(Eq("status", "no-such")))
        assert found == set(ids[1:])


class TestPrefetch:
    def test_prefetch_returns_all_chunks(self):
        # find() fetches get_many in chunks of 64: 70 documents force
        # the prefetch path to pipeline a second chunk.
        docs = documents(70)
        pipelined, _ = make_deployment(
            PipelineConfig(prefetch=True, fanout_workers=2),
            schema=benchmark_observation_schema,
        )
        pipelined.insert_many(copy.deepcopy(docs))
        found = pipelined.find()
        assert len(found) == len(docs)
        assert ({d["id"] for d in found} == {d["id"] for d in docs})

    def test_prefetch_respects_limit(self):
        docs = documents(40)
        pipelined, _ = make_deployment(
            PipelineConfig(prefetch=True, fanout_workers=2),
            schema=benchmark_observation_schema,
        )
        pipelined.insert_many(copy.deepcopy(docs))
        assert len(pipelined.find(limit=5)) == 5
