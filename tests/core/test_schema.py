"""Schemas, field annotations and document validation."""

import pytest

from repro.core.schema import FieldAnnotation, FieldSpec, Schema
from repro.errors import SchemaError, SchemaValidationError
from repro.spi.descriptors import Aggregate, Operation
from repro.spi.leakage import ProtectionClass


class TestFieldAnnotation:
    def test_parse_paper_notation(self):
        annotation = FieldAnnotation.parse("C3", "I,EQ,BL", "avg")
        assert annotation.protection_class is ProtectionClass.C3
        assert annotation.operations == frozenset(
            {Operation.INSERT, Operation.EQUALITY, Operation.BOOLEAN}
        )
        assert annotation.aggregates == frozenset({Aggregate.AVG})

    def test_parse_list_form(self):
        annotation = FieldAnnotation.parse(5, ["I", "RG"], ["sum", "avg"])
        assert annotation.protection_class is ProtectionClass.C5
        assert Operation.RANGE in annotation.operations
        assert annotation.aggregates == {Aggregate.SUM, Aggregate.AVG}

    def test_insert_is_mandatory(self):
        with pytest.raises(SchemaError):
            FieldAnnotation.parse("C2", "EQ")

    def test_requires(self):
        annotation = FieldAnnotation.parse("C2", "I,EQ")
        assert annotation.requires(Operation.EQUALITY)
        assert not annotation.requires(Operation.RANGE)

    def test_describe_roundtrips_notation(self):
        annotation = FieldAnnotation.parse("C3", "I,EQ,BL", "avg")
        assert annotation.describe() == "C3, op [BL,EQ,I], agg [avg]"


class TestFieldSpec:
    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            FieldSpec("f", "decimal")

    def test_sensitive_flag(self):
        assert not FieldSpec("f", "string").sensitive
        assert FieldSpec("f", "string",
                         annotation=FieldAnnotation.parse("C1", "I")
                         ).sensitive

    @pytest.mark.parametrize("field_type,good,bad", [
        ("string", "x", 5),
        ("int", 5, "x"),
        ("float", 2.5, "x"),
        ("bool", True, 1),
        ("bytes", b"x", "x"),
    ])
    def test_type_validation(self, field_type, good, bad):
        spec = FieldSpec("f", field_type)
        spec.validate_value(good)
        with pytest.raises(SchemaValidationError):
            spec.validate_value(bad)

    def test_float_accepts_int(self):
        FieldSpec("f", "float").validate_value(5)

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(SchemaValidationError):
            FieldSpec("f", "int").validate_value(True)

    def test_required(self):
        spec = FieldSpec("f", "string", required=True)
        with pytest.raises(SchemaValidationError):
            spec.validate_value(None)
        FieldSpec("f", "string").validate_value(None)  # optional is fine


class TestSchema:
    def make(self):
        return Schema.define(
            "obs",
            id="string",
            status=("string", FieldAnnotation.parse("C3", "I,EQ")),
            value=("float", FieldAnnotation.parse("C4", "I,EQ", "avg")),
        )

    def test_field_partition(self):
        schema = self.make()
        assert [f.name for f in schema.sensitive_fields()] == ["status",
                                                               "value"]
        assert [f.name for f in schema.plain_fields()] == ["id"]

    def test_annotation_lookup(self):
        schema = self.make()
        assert schema.annotation("status").protection_class is (
            ProtectionClass.C3
        )
        with pytest.raises(SchemaError):
            schema.annotation("id")
        with pytest.raises(SchemaError):
            schema.annotation("missing")

    def test_validate_accepts_conforming(self):
        self.make().validate({"id": "x", "status": "final", "value": 1.5})

    def test_validate_rejects_unknown_fields(self):
        with pytest.raises(SchemaValidationError):
            self.make().validate({"id": "x", "bogus": 1})

    def test_validate_allows_id_passthrough(self):
        self.make().validate({"_id": "abc", "id": "x"})

    def test_validate_rejects_type_mismatch(self):
        with pytest.raises(SchemaValidationError):
            self.make().validate({"status": 42})

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", [FieldSpec("a"), FieldSpec("a")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", [])
        with pytest.raises(SchemaError):
            Schema("", [FieldSpec("a")])

    def test_define_rejects_bad_spec(self):
        with pytest.raises(SchemaError):
            Schema.define("s", f=123)

    def test_serialization_roundtrip(self):
        schema = self.make()
        restored = Schema.from_dict(schema.to_dict())
        assert restored.name == schema.name
        assert set(restored.fields) == set(schema.fields)
        assert restored.annotation("value").aggregates == {Aggregate.AVG}
        assert restored.fields["id"].annotation is None
