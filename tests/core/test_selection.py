"""Adaptive tactic selection — including the paper's §5.1 use case."""

import pytest

from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation
from repro.core.selection import TacticSelector
from repro.errors import SelectionError
from repro.fhir.model import benchmark_observation_schema, observation_schema
from repro.tactics import register_builtin_tactics


@pytest.fixture(scope="module")
def selector():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return TacticSelector(registry)


# The paper's §5.1 table: Sensitives -> Tactic Selection.
PAPER_USE_CASE = {
    "status": ("C3", "I,EQ,BL", "", {"biex-2lev"}),
    "code": ("C3", "I,EQ,BL", "", {"biex-2lev"}),
    "subject": ("C2", "I,EQ", "", {"mitra"}),
    "effective": ("C5", "I,EQ,BL,RG", "", {"det", "ope"}),
    "issued": ("C5", "I,EQ,BL,RG", "", {"det", "ope"}),
    "performer": ("C1", "I", "", {"rnd"}),
    "value": ("C3", "I,EQ,BL", "avg", {"biex-2lev", "paillier"}),
}


class TestPaperUseCase:
    @pytest.mark.parametrize("field,config", sorted(PAPER_USE_CASE.items()))
    def test_field_selection_matches_paper(self, selector, field, config):
        cls, ops, aggs, expected = config
        plan = selector.plan_field(
            field, FieldAnnotation.parse(cls, ops, aggs)
        )
        assert set(plan.tactic_names) == expected

    def test_full_schema_plan(self, selector):
        plans = selector.plan_schema(observation_schema())
        assert set(plans) == set(PAPER_USE_CASE)
        for field, (_, _, _, expected) in PAPER_USE_CASE.items():
            assert set(plans[field].tactic_names) == expected

    def test_benchmark_schema_is_8_tactics(self, selector):
        """§5.2: 'in total 8 tactics ... Mitra, RND, Paillier, and five
        times DET'."""
        plans = selector.plan_schema(benchmark_observation_schema())
        instances = [t for plan in plans.values()
                     for t in plan.tactic_names]
        assert len(instances) == 8
        assert instances.count("det") == 5
        assert instances.count("mitra") == 1
        assert instances.count("rnd") == 1
        assert instances.count("paillier") == 1


class TestSelectionRules:
    def test_class_constrains_candidates(self, selector):
        # C2 cannot use DET (equalities leakage): gets Mitra instead.
        plan = selector.plan_field("f", FieldAnnotation.parse("C2", "I,EQ"))
        assert plan.roles["eq"] == "mitra"

    def test_c1_equality_is_rnd(self, selector):
        plan = selector.plan_field("f", FieldAnnotation.parse("C1", "I,EQ"))
        assert plan.roles["eq"] == "rnd"

    def test_c4_equality_is_det(self, selector):
        plan = selector.plan_field("f", FieldAnnotation.parse("C4", "I,EQ"))
        assert plan.roles["eq"] == "det"

    def test_boolean_at_c3_is_native_biex(self, selector):
        plan = selector.plan_field("f",
                                   FieldAnnotation.parse("C3", "I,BL"))
        assert plan.roles["bool"] == "biex-2lev"

    def test_boolean_at_c5_prefers_det_via_equality(self, selector):
        plan = selector.plan_field(
            "f", FieldAnnotation.parse("C5", "I,EQ,BL")
        )
        assert plan.roles["bool"] == "det"
        assert plan.roles["eq"] == "det"

    def test_range_prefers_ope_over_ore(self, selector):
        plan = selector.plan_field("f", FieldAnnotation.parse("C5", "I,RG"))
        assert plan.roles["range"] == "ope"

    def test_range_below_c5_impossible(self, selector):
        with pytest.raises(SelectionError):
            selector.plan_field("f", FieldAnnotation.parse("C4", "I,RG"))

    def test_boolean_reuses_eq_tactic(self, selector):
        plan = selector.plan_field(
            "f", FieldAnnotation.parse("C3", "I,EQ,BL")
        )
        assert plan.roles["eq"] == plan.roles["bool"] == "biex-2lev"
        assert plan.tactic_names == ["biex-2lev"]

    def test_product_aggregate_selects_elgamal(self, selector):
        plan = selector.plan_field(
            "f", FieldAnnotation.parse("C4", "I", "product")
        )
        assert plan.roles["agg:product"] == "elgamal"

    def test_unsupported_aggregate_fails(self, selector):
        with pytest.raises(SelectionError):
            selector.plan_field("f", FieldAnnotation.parse("C4", "I", "min"))

    def test_insert_only_picks_most_secure(self, selector):
        plan = selector.plan_field("f", FieldAnnotation.parse("C5", "I"))
        assert plan.roles["store"] == "rnd"

    def test_empty_registry_fails(self):
        selector = TacticSelector(TacticRegistry())
        with pytest.raises(SelectionError):
            selector.plan_field("f", FieldAnnotation.parse("C5", "I"))

    def test_plan_reasons_populated(self, selector):
        plan = selector.plan_field(
            "value", FieldAnnotation.parse("C3", "I,EQ,BL", "avg")
        )
        assert set(plan.reasons) == {"biex-2lev", "paillier"}

    def test_weakest_link_never_violated(self, selector):
        """Every plan for every class/op combination respects the class."""
        registry = selector._registry
        for cls in ("C1", "C2", "C3", "C4", "C5"):
            for ops in ("I", "I,EQ", "I,EQ,BL"):
                try:
                    plan = selector.plan_field(
                        "f", FieldAnnotation.parse(cls, ops)
                    )
                except SelectionError:
                    continue
                levels = [
                    int(registry.descriptor(t).leakage.level)
                    for t in plan.tactic_names
                    if registry.descriptor(t).protection_class is not None
                ]
                assert max(levels) <= int(
                    plan.annotation.protection_class
                )
