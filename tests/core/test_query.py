"""Query AST: construction, normalisation, reference evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.query import (
    And,
    Eq,
    Not,
    Or,
    Range,
    evaluate_plain,
    iter_literals,
    push_negations,
    to_cnf,
)
from repro.errors import QueryError


class TestConstruction:
    def test_operators(self):
        predicate = Eq("a", 1) & Eq("b", 2) | ~Eq("c", 3)
        assert isinstance(predicate, Or)

    def test_fields(self):
        predicate = (Eq("a", 1) | Range("b", 0, 9)) & ~Eq("c", 3)
        assert predicate.fields() == {"a", "b", "c"}

    def test_empty_combinators_rejected(self):
        with pytest.raises(QueryError):
            And([])
        with pytest.raises(QueryError):
            Or([])

    def test_unbounded_range_rejected(self):
        with pytest.raises(QueryError):
            Range("f")

    def test_half_open_ranges_allowed(self):
        assert Range("f", low=1).fields() == {"f"}
        assert Range("f", high=9).fields() == {"f"}


class TestNormalisation:
    def test_double_negation(self):
        assert push_negations(Not(Not(Eq("a", 1)))) == Eq("a", 1)

    def test_de_morgan_and(self):
        result = push_negations(Not(And([Eq("a", 1), Eq("b", 2)])))
        assert isinstance(result, Or)
        assert set(result.parts) == {Not(Eq("a", 1)), Not(Eq("b", 2))}

    def test_de_morgan_or(self):
        result = push_negations(Not(Or([Eq("a", 1), Eq("b", 2)])))
        assert isinstance(result, And)

    def test_cnf_of_literal(self):
        assert to_cnf(Eq("a", 1)) == [[Eq("a", 1)]]

    def test_cnf_of_conjunction(self):
        cnf = to_cnf(And([Eq("a", 1), Or([Eq("b", 2), Eq("c", 3)])]))
        assert [[Eq("a", 1)], [Eq("b", 2), Eq("c", 3)]] == cnf

    def test_cnf_distributes_or_over_and(self):
        # (a AND b) OR c => (a OR c) AND (b OR c)
        cnf = to_cnf(Or([And([Eq("a", 1), Eq("b", 2)]), Eq("c", 3)]))
        assert len(cnf) == 2
        assert all(Eq("c", 3) in clause for clause in cnf)

    def test_cnf_deduplicates_clause_literals(self):
        cnf = to_cnf(Or([Eq("a", 1), Eq("a", 1)]))
        assert cnf == [[Eq("a", 1)]]

    def test_cnf_complexity_guard(self):
        # 2^12 clauses would be produced by distributing this disjunction
        # of conjunctions; the normaliser must refuse.
        big = Or([And([Eq(f"f{i}", 1), Eq(f"g{i}", 2)])
                  for i in range(12)])
        with pytest.raises(QueryError):
            to_cnf(big)

    def test_iter_literals(self):
        predicate = (Eq("a", 1) | Range("b", 0, 5)) & ~Eq("c", 2)
        literals = list(iter_literals(predicate))
        assert Eq("a", 1) in literals
        assert Range("b", 0, 5) in literals
        assert Not(Eq("c", 2)) in literals


class TestEvaluation:
    DOC = {"a": 1, "b": 5, "s": "x"}

    @pytest.mark.parametrize("predicate,expected", [
        (Eq("a", 1), True),
        (Eq("a", 2), False),
        (Eq("missing", None), True),  # absent field compares as None
        (Range("b", 0, 10), True),
        (Range("b", 6, 10), False),
        (Range("b", None, 5), True),
        (Range("missing", 0, 1), False),
        (And([Eq("a", 1), Eq("s", "x")]), True),
        (And([Eq("a", 1), Eq("s", "y")]), False),
        (Or([Eq("a", 2), Eq("s", "x")]), True),
        (Not(Eq("a", 2)), True),
        (Not(Not(Eq("a", 1))), True),
    ])
    def test_evaluate_plain(self, predicate, expected):
        assert evaluate_plain(predicate, self.DOC) is expected


@st.composite
def predicates(draw, depth=2):
    if depth == 0:
        field = draw(st.sampled_from(["x", "y", "z"]))
        kind = draw(st.sampled_from(["eq", "range"]))
        if kind == "eq":
            return Eq(field, draw(st.integers(0, 5)))
        low = draw(st.integers(0, 5))
        return Range(field, low, low + draw(st.integers(0, 3)))
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(predicates(depth=0))
    if kind == "not":
        return Not(draw(predicates(depth=depth - 1)))
    parts = draw(st.lists(predicates(depth=depth - 1), min_size=1,
                          max_size=3))
    return And(parts) if kind == "and" else Or(parts)


@given(predicate=predicates(),
       doc=st.fixed_dictionaries({
           "x": st.integers(0, 6),
           "y": st.integers(0, 6),
           "z": st.integers(0, 6),
       }))
def test_cnf_preserves_semantics(predicate, doc):
    """Evaluating the CNF clause-wise must agree with the original tree."""
    original = evaluate_plain(predicate, doc)
    cnf = to_cnf(predicate)
    via_cnf = all(
        any(evaluate_plain(lit, doc) for lit in clause) for clause in cnf
    )
    assert via_cnf == original
