"""DataBlinder facade and the Entities interface over a live deployment."""

import pytest

from repro.core.middleware import DataBlinder
from repro.core.query import AggregateQuery, Eq, Range
from repro.core.schema import FieldAnnotation, Schema
from repro.errors import (
    PolicyError,
    SchemaError,
    SchemaValidationError,
    UnsupportedOperation,
)
from repro.fhir.model import observation_schema
from repro.spi.descriptors import Aggregate


@pytest.fixture()
def entities(blinder):
    blinder.register_schema(observation_schema())
    return blinder.entities("observation")


def make_doc(i, status="final", code="glucose", subject="John Doe",
             value=6.3):
    return {
        "id": f"f{i:03d}", "identifier": 6000 + i, "status": status,
        "code": code, "subject": subject,
        "effective": 1359966610 + i * 1000, "issued": 1362407410 + i,
        "performer": "Dr. Smith", "value": value,
    }


class TestSchemaInterface:
    def test_register_returns_reports(self, blinder):
        reports = blinder.register_schema(observation_schema())
        assert {r.field for r in reports} == {
            "status", "code", "subject", "effective", "issued",
            "performer", "value",
        }
        assert all(r.compliant for r in reports)

    def test_double_registration_rejected(self, blinder):
        blinder.register_schema(observation_schema())
        with pytest.raises(SchemaError):
            blinder.register_schema(observation_schema())

    def test_unregistered_schema_rejected(self, blinder):
        with pytest.raises(SchemaError):
            blinder.entities("ghost")

    def test_policy_report_rendering(self, blinder):
        blinder.register_schema(observation_schema())
        table = blinder.policy_report("observation")
        assert "mitra" in table and "Reason" in table

    def test_schema_names(self, blinder):
        blinder.register_schema(observation_schema())
        assert blinder.schema_names() == ["observation"]

    def test_restore_schema_from_metadata(self, blinder, transport,
                                          registry):
        blinder.register_schema(observation_schema())
        blinder.entities("observation").insert(make_doc(1))

        # A second gateway sharing local state simulates a restart.
        restarted = DataBlinder(
            "testapp-2", transport, registry=registry,
            keystore=blinder.keystore,
            local_kv=blinder.runtime.local_kv,
        )
        reports = restarted.restore_schema("observation")
        assert all(r.compliant for r in reports)
        with pytest.raises(SchemaError):
            restarted.restore_schema("observation")


class TestCrud:
    def test_insert_get(self, entities):
        doc_id = entities.insert(make_doc(1))
        document = entities.get(doc_id)
        assert document["value"] == 6.3
        assert document["performer"] == "Dr. Smith"
        assert document["identifier"] == 6001
        assert document["_id"] == doc_id

    def test_explicit_id_preserved(self, entities):
        doc = dict(make_doc(1), _id="custom-id")
        assert entities.insert(doc) == "custom-id"

    def test_schema_validation_on_insert(self, entities):
        with pytest.raises(SchemaValidationError):
            entities.insert({"bogus_field": 1})
        with pytest.raises(SchemaValidationError):
            entities.insert(dict(make_doc(1), value="not-a-number"))

    def test_update_merges_changes(self, entities):
        doc_id = entities.insert(make_doc(1, status="preliminary"))
        entities.update(doc_id, {"status": "final", "value": 7.0})
        document = entities.get(doc_id)
        assert document["status"] == "final"
        assert document["value"] == 7.0
        assert document["code"] == "glucose"  # untouched field survives

    def test_update_reindexes_search(self, entities):
        doc_id = entities.insert(make_doc(1, subject="Old Name"))
        entities.update(doc_id, {"subject": "New Name"})
        assert entities.find_ids(Eq("subject", "New Name")) == {doc_id}
        assert entities.find_ids(Eq("subject", "Old Name")) == set()

    def test_update_validates(self, entities):
        doc_id = entities.insert(make_doc(1))
        with pytest.raises(SchemaValidationError):
            entities.update(doc_id, {"value": "bad"})

    def test_delete(self, entities):
        doc_id = entities.insert(make_doc(1))
        assert entities.delete(doc_id)
        assert not entities.delete(doc_id)
        assert entities.count() == 0
        assert entities.find_ids(Eq("status", "final")) == set()


class TestSearch:
    @pytest.fixture()
    def populated(self, entities):
        ids = {}
        ids["a"] = entities.insert(make_doc(1, status="final",
                                            code="glucose", value=6.3))
        ids["b"] = entities.insert(make_doc(2, status="final", code="hr",
                                            subject="Jane Roe", value=72.0))
        ids["c"] = entities.insert(make_doc(3, status="preliminary",
                                            code="glucose",
                                            subject="Jane Roe", value=5.1))
        return entities, ids

    def test_equality_biex(self, populated):
        entities, ids = populated
        assert entities.find_ids(Eq("status", "final")) == {ids["a"],
                                                            ids["b"]}

    def test_equality_mitra(self, populated):
        entities, ids = populated
        assert entities.find_ids(Eq("subject", "Jane Roe")) == {ids["b"],
                                                                ids["c"]}

    def test_equality_det(self, populated):
        entities, ids = populated
        assert entities.find_ids(Eq("effective", 1359967610)) == {ids["a"]}

    def test_cross_field_boolean(self, populated):
        entities, ids = populated
        assert entities.find_ids(
            Eq("status", "final") & Eq("code", "glucose")
        ) == {ids["a"]}

    def test_disjunction(self, populated):
        entities, ids = populated
        assert entities.find_ids(
            Eq("code", "hr") | Eq("status", "preliminary")
        ) == {ids["b"], ids["c"]}

    def test_negation(self, populated):
        entities, ids = populated
        assert entities.find_ids(~Eq("status", "final")) == {ids["c"]}

    def test_range_ope(self, populated):
        entities, ids = populated
        assert entities.find_ids(
            Range("effective", 1359967000, 1359969000)
        ) == {ids["a"], ids["b"]}

    def test_mixed_predicate(self, populated):
        entities, ids = populated
        assert entities.find_ids(
            Eq("subject", "Jane Roe") & Range("effective", None, 1359969000)
        ) == {ids["b"]}

    def test_plain_field_search(self, populated):
        entities, ids = populated
        assert entities.find_ids(Eq("identifier", 6002)) == {ids["b"]}

    def test_find_returns_decrypted_documents(self, populated):
        entities, ids = populated
        results = entities.find(Eq("code", "hr"))
        assert len(results) == 1
        assert results[0]["value"] == 72.0

    def test_find_one(self, populated):
        entities, ids = populated
        assert entities.find_one(Eq("code", "hr"))["_id"] == ids["b"]
        assert entities.find_one(Eq("code", "nothing")) is None

    def test_find_all(self, populated):
        entities, _ = populated
        assert len(entities.find()) == 3

    def test_count_with_predicate(self, populated):
        entities, _ = populated
        assert entities.count(Eq("code", "glucose")) == 2

    def test_unsupported_operation_rejected(self, populated):
        entities, _ = populated
        # performer is annotated op [I] only.
        with pytest.raises(UnsupportedOperation):
            entities.find(Eq("performer", "Dr. Smith"))
        # status has no RG annotation.
        with pytest.raises(UnsupportedOperation):
            entities.find(Range("status", "a", "z"))

    def test_unknown_field_rejected(self, populated):
        entities, _ = populated
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            entities.find(Eq("ghost", 1))


class TestAggregates:
    def test_average_all(self, entities):
        for i, value in enumerate([6.0, 7.0, 8.0]):
            entities.insert(make_doc(i, value=value))
        assert entities.average("value") == pytest.approx(7.0)

    def test_average_filtered(self, entities):
        entities.insert(make_doc(1, subject="A", value=4.0))
        entities.insert(make_doc(2, subject="A", value=6.0))
        entities.insert(make_doc(3, subject="B", value=100.0))
        assert entities.average(
            "value", where=Eq("subject", "A")
        ) == pytest.approx(5.0)

    def test_average_excludes_deleted(self, entities):
        entities.insert(make_doc(1, value=10.0))
        doomed = entities.insert(make_doc(2, value=90.0))
        entities.delete(doomed)
        assert entities.average("value") == pytest.approx(10.0)

    def test_average_respects_updates(self, entities):
        doc_id = entities.insert(make_doc(1, value=10.0))
        entities.update(doc_id, {"value": 20.0})
        assert entities.average("value") == pytest.approx(20.0)

    def test_count_aggregate_without_tactic(self, entities):
        entities.insert(make_doc(1))
        assert entities.aggregate(
            AggregateQuery(Aggregate.COUNT, "value")
        ) == 1

    def test_unsupported_aggregate(self, entities):
        entities.insert(make_doc(1))
        with pytest.raises(UnsupportedOperation):
            entities.aggregate(AggregateQuery(Aggregate.SUM, "status"))

    def test_empty_average_is_none(self, entities):
        entities.insert(make_doc(1, subject="X"))
        assert entities.average("value",
                                where=Eq("subject", "Nobody")) is None


class TestPolicyEnforcement:
    def test_register_rejects_unsatisfiable_schema(self, blinder):
        schema = Schema.define(
            "impossible",
            f=("int", FieldAnnotation.parse("C2", "I,RG")),  # range < C5
        )
        from repro.errors import SelectionError

        with pytest.raises((PolicyError, SelectionError)):
            blinder.register_schema(schema)
