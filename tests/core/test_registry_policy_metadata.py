"""Registry, policy auditing and the metadata subsystem."""

import pytest

from repro.core.metadata import MetadataRepository
from repro.core.policy import audit_plan, audit_plans, render_policy_table
from repro.core.registry import TacticRegistry, default_registry
from repro.core.schema import FieldAnnotation
from repro.core.selection import FieldPlan, TacticSelector
from repro.errors import PolicyError, RegistryError
from repro.fhir.model import observation_schema
from repro.spi.descriptors import Operation
from repro.spi.leakage import LeakageLevel
from repro.stores.kv import KeyValueStore
from repro.tactics import DET_DESCRIPTOR, register_builtin_tactics
from repro.tactics.det import DetCloud, DetGateway


@pytest.fixture()
def registry():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


class TestRegistry:
    def test_builtin_names(self, registry):
        assert set(registry.names()) == {
            "det", "mitra", "sophos", "rnd", "biex-2lev", "biex-zmf",
            "ope", "ore", "paillier", "elgamal", "sse-stateless",
            "blind-index",
        }

    def test_get_unknown_raises(self, registry):
        with pytest.raises(RegistryError):
            registry.get("nope")

    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.register(DET_DESCRIPTOR, DetGateway, DetCloud)

    def test_replace_allowed_when_requested(self, registry):
        registry.register(DET_DESCRIPTOR, DetGateway, DetCloud,
                          replace=True)

    def test_unregister(self, registry):
        registry.unregister("ore")
        with pytest.raises(RegistryError):
            registry.get("ore")
        with pytest.raises(RegistryError):
            registry.unregister("ore")

    def test_setup_interface_is_mandatory(self, registry):
        class NoSetupGateway:
            pass

        with pytest.raises(RegistryError):
            registry.register(DET_DESCRIPTOR, NoSetupGateway, DetCloud,
                              replace=True)
        with pytest.raises(RegistryError):
            registry.register(DET_DESCRIPTOR, DetGateway, NoSetupGateway,
                              replace=True)

    def test_supporting_queries(self, registry):
        boolean = {d.name for d in registry.supporting(Operation.BOOLEAN)}
        assert "biex-2lev" in boolean
        assert "det" in boolean  # via equality
        assert "ope" not in boolean

    def test_spi_summary(self, registry):
        summary = registry.get("det").spi_summary()
        assert len(summary["gateway"]) == 9
        assert len(summary["cloud"]) == 6

    def test_default_registry_is_cached(self):
        assert default_registry() is default_registry()


class TestPolicy:
    def test_audit_compliant_plan(self, registry):
        selector = TacticSelector(registry)
        plan = selector.plan_field(
            "status", FieldAnnotation.parse("C3", "I,EQ,BL")
        )
        report = audit_plan(plan, registry)
        assert report.compliant
        assert report.effective_level is LeakageLevel.PREDICATES

    def test_audit_detects_violation(self, registry):
        # Hand-craft a plan that assigns DET (equalities) to a C2 field.
        bad_plan = FieldPlan(
            field="f",
            annotation=FieldAnnotation.parse("C2", "I,EQ"),
            roles={"eq": "det"},
            reasons={},
        )
        report = audit_plan(bad_plan, registry)
        assert not report.compliant
        with pytest.raises(PolicyError):
            audit_plans({"f": bad_plan}, registry)

    def test_aggregate_only_plan_has_no_level(self, registry):
        plan = FieldPlan(
            field="f",
            annotation=FieldAnnotation.parse("C1", "I", "avg"),
            roles={"agg:avg": "paillier"},
            reasons={},
        )
        report = audit_plan(plan, registry)
        assert report.compliant and report.effective_level is None

    def test_render_policy_table(self, registry):
        selector = TacticSelector(registry)
        plans = selector.plan_schema(observation_schema())
        table = render_policy_table(audit_plans(plans, registry))
        assert "Sensitives" in table
        assert "biex-2lev" in table
        assert "det, ope" in table


class TestMetadata:
    def test_schema_and_plan_roundtrip(self, registry):
        repo = MetadataRepository(KeyValueStore())
        schema = observation_schema()
        plans = TacticSelector(registry).plan_schema(schema)
        repo.save_schema(schema, plans)

        restored_schema = repo.load_schema("observation")
        assert set(restored_schema.fields) == set(schema.fields)
        restored_plans = repo.load_plans("observation")
        assert {
            f: set(p.tactic_names) for f, p in restored_plans.items()
        } == {f: set(p.tactic_names) for f, p in plans.items()}

    def test_schema_names_listing(self, registry):
        repo = MetadataRepository(KeyValueStore())
        schema = observation_schema()
        plans = TacticSelector(registry).plan_schema(schema)
        repo.save_schema(schema, plans)
        assert repo.schema_names() == ["observation"]
        repo.delete_schema("observation")
        assert repo.schema_names() == []

    def test_load_missing_raises(self):
        repo = MetadataRepository(KeyValueStore())
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            repo.load_schema("ghost")
        with pytest.raises(SchemaError):
            repo.load_plans("ghost")

    def test_persistent_metadata_survives_restart(self, registry,
                                                  tmp_path):
        kv = KeyValueStore(tmp_path)
        repo = MetadataRepository(kv)
        schema = observation_schema()
        repo.save_schema(schema,
                        TacticSelector(registry).plan_schema(schema))
        kv.close()

        reloaded = MetadataRepository(KeyValueStore(tmp_path))
        assert reloaded.schema_names() == ["observation"]
        assert reloaded.load_plans("observation")["subject"].roles[
            "eq"] == "mitra"
