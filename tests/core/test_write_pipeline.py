"""Pipelined bulk writes (``PipelineConfig.write_chunk``): the chunked
crypto/wire overlap must answer every query identically to the
single-pass kernelised path, and its explain rows must show the
overlap (``Crypto:insert + Wire:insert > WritePipeline:insert``)."""

from __future__ import annotations

import pytest

from repro.cloud.cluster import CloudCluster
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Range
from repro.core.registry import TacticRegistry
from repro.crypto.kernels.config import CryptoConfig
from repro.fhir.model import observation_schema
from repro.net.batch import PipelineConfig
from repro.net.latency import NetworkModel
from repro.net.transport import InProcTransport
from repro.shard.config import ShardConfig
from repro.shard.router import ShardedTransport
from repro.tactics import register_builtin_tactics

APP = "pipeapp"
DOCS = 14  # crosses three chunk boundaries at write_chunk=4


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i < 6 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


def pipeline(write_chunk: int = 0) -> PipelineConfig:
    return PipelineConfig(
        batch_writes=True,
        crypto=CryptoConfig(precompute=True),
        write_chunk=write_chunk,
    )


def deploy(config: PipelineConfig, shards: int = 0,
           latency_ms: float = 0.0):
    registry = fresh_registry()
    network = NetworkModel(one_way_latency_ms=latency_ms,
                           sleep=latency_ms > 0)
    if shards:
        closer = CloudCluster(shards, registry=registry, network=network)
        transport = ShardedTransport(closer.nodes(), ShardConfig())
    else:
        closer = CloudZone(registry)
        transport = InProcTransport(closer.host, network)
    blinder = DataBlinder(APP, transport, registry=registry,
                          pipeline=config)
    blinder.register_schema(observation_schema())
    return blinder, blinder.entities("observation"), closer


def query_results(observations) -> dict:
    def identifiers(doc_ids) -> list[int]:
        return sorted(observations.get(d)["identifier"] for d in doc_ids)

    return {
        "count": observations.count(),
        "eq": identifiers(observations.find_ids(Eq("status", "final"))),
        "bool": identifiers(observations.find_ids(
            And([Eq("status", "final"), Eq("code", "glucose")])
        )),
        "range": identifiers(observations.find_ids(
            Range("effective", 1002, 1010)
        )),
        "avg": observations.average("value"),
        "sorted": [
            doc["identifier"]
            for doc in observations.find_sorted("effective",
                                                descending=True, limit=5)
        ],
    }


def insert_timings(blinder) -> dict[str, list]:
    return blinder._executor("observation").planner.stats.node_timings


class TestChunkedEquivalence:
    @pytest.mark.parametrize("write_chunk", [1, 4, 5])
    def test_chunked_matches_single_pass(self, write_chunk):
        base_blinder, base, base_closer = deploy(pipeline())
        pipe_blinder, piped, pipe_closer = deploy(pipeline(write_chunk))
        try:
            documents = [make_doc(i) for i in range(DOCS)]
            base_ids = base.insert_many([dict(d) for d in documents])
            pipe_ids = piped.insert_many([dict(d) for d in documents])
            assert len(base_ids) == len(pipe_ids) == DOCS
            assert query_results(piped) == query_results(base)
        finally:
            base_closer.close()
            pipe_closer.close()

    def test_small_batch_keeps_single_pass(self):
        # len(documents) <= write_chunk: no pipelining, one frame.
        blinder, observations, closer = deploy(pipeline(write_chunk=32))
        try:
            observations.insert_many([make_doc(i) for i in range(4)])
            assert observations.count() == 4
        finally:
            closer.close()


class TestOverlapSignature:
    def test_crypto_and_wire_rows_overlap(self):
        # A slept 5 ms link makes every flush long enough that chunk
        # N+1's crypto demonstrably runs while chunk N's frame flies.
        blinder, observations, closer = deploy(
            pipeline(write_chunk=4), latency_ms=5.0
        )
        try:
            observations.insert_many([make_doc(i) for i in range(DOCS)])
            timings = insert_timings(blinder)
            crypto = timings["Crypto:insert"][1]
            wire = timings["Wire:insert"][1]
            total = timings["WritePipeline:insert"][1]
            assert crypto > 0 and wire > 0
            # The overlap signature: phases sum to more than the wall
            # clock.  The single-pass path can never exhibit this.
            assert crypto + wire > total
        finally:
            closer.close()

    def test_single_pass_phases_fit_inside_wall_clock(self):
        blinder, observations, closer = deploy(
            pipeline(), latency_ms=5.0
        )
        try:
            observations.insert_many([make_doc(i) for i in range(DOCS)])
            timings = insert_timings(blinder)
            crypto = timings["Crypto:insert"][1]
            wire = timings["Wire:insert"][1]
            assert crypto + wire <= timings["WritePipeline:insert"][1]
        finally:
            closer.close()


class TestShardedPipeline:
    def test_chunked_insert_over_shards(self):
        blinder, observations, closer = deploy(
            pipeline(write_chunk=4), shards=4
        )
        try:
            documents = [make_doc(i) for i in range(DOCS)]
            ids = observations.insert_many(
                [dict(d) for d in documents]
            )
            assert len(ids) == DOCS
            assert observations.count() == DOCS
            assert sorted(
                observations.get(d)["identifier"] for d in ids
            ) == list(range(DOCS))
            # Pool-thread frame flushes still attribute per-shard time.
            timings = insert_timings(blinder)
            assert any(kind.startswith("Shard:") for kind in timings)
        finally:
            closer.close()
