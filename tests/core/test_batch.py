"""Bulk insertion through the Entities interface."""

import pytest

from repro.core.query import Eq
from repro.errors import SchemaValidationError
from repro.fhir.generator import MedicalDataGenerator
from repro.fhir.model import observation_schema


@pytest.fixture()
def entities(blinder):
    blinder.register_schema(observation_schema())
    return blinder.entities("observation")


class TestInsertMany:
    def test_bulk_equivalent_to_singles(self, entities):
        generator = MedicalDataGenerator(3)
        documents = [o.to_document() for o in
                     generator.observations(12, cohort_size=4)]
        ids = entities.insert_many(documents)
        assert len(ids) == 12
        assert len(set(ids)) == 12
        assert entities.count() == 12
        # Everything is searchable and decryptable.
        subject = documents[0]["subject"]
        expected = {
            doc_id for doc_id, doc in zip(ids, documents)
            if doc["subject"] == subject
        }
        assert entities.find_ids(Eq("subject", subject)) == expected
        assert entities.get(ids[0])["value"] == documents[0]["value"]

    def test_bulk_uses_one_docstore_round_trip(self, blinder, transport):
        blinder.register_schema(observation_schema())
        entities = blinder.entities("observation")
        generator = MedicalDataGenerator(4)
        documents = [o.to_document() for o in
                     generator.observations(5, cohort_size=2)]

        before = transport.stats().messages_sent
        entities.insert_many(documents)
        batched = transport.stats().messages_sent - before

        before = transport.stats().messages_sent
        for document in [o.to_document() for o in
                         generator.observations(5, cohort_size=2)]:
            entities.insert(document)
        singles = transport.stats().messages_sent - before

        # Same tactic traffic, but 1 document-store RPC instead of 5.
        assert batched == singles - 4

    def test_validation_failure_aborts_storage(self, entities):
        bad = [{"id": "x", "value": "not-a-float"}]
        with pytest.raises(SchemaValidationError):
            entities.insert_many(bad)
        assert entities.count() == 0

    def test_empty_batch(self, entities):
        assert entities.insert_many([]) == []

    def test_aggregates_over_bulk(self, entities):
        generator = MedicalDataGenerator(5)
        documents = [o.to_document() for o in
                     generator.observations(10, cohort_size=3)]
        entities.insert_many(documents)
        expected = sum(d["value"] for d in documents) / len(documents)
        assert entities.average("value") == pytest.approx(expected,
                                                          rel=1e-6)
