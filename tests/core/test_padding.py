"""Body padding: hiding value lengths from a snapshot adversary."""

import pytest

from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.schema import FieldAnnotation, Schema
from repro.net.transport import InProcTransport


def note_schema():
    return Schema.define(
        "note",
        author=("string", FieldAnnotation.parse("C2", "I,EQ")),
        body=("string", FieldAnnotation.parse("C1", "I")),
    )


def stored_body_sizes(cloud, application):
    _, documents = cloud.application_stores(application)
    return [len(d["body"]) for d in documents.iter_documents()]


class TestBodyPadding:
    def test_padded_bodies_have_uniform_bucket_sizes(self, cloud,
                                                     registry):
        blinder = DataBlinder("padded", InProcTransport(cloud.host),
                              registry=registry, pad_bucket=512)
        blinder.register_schema(note_schema())
        notes = blinder.entities("note")
        notes.insert({"author": "a", "body": "x"})
        notes.insert({"author": "b", "body": "y" * 300})
        sizes = stored_body_sizes(cloud, "padded")
        # Same bucket despite a 300x plaintext length difference
        # (nonce + tag overhead is constant).
        assert len(set(sizes)) == 1

    def test_unpadded_bodies_leak_lengths(self, cloud, registry):
        blinder = DataBlinder("bare", InProcTransport(cloud.host),
                              registry=registry)
        blinder.register_schema(note_schema())
        notes = blinder.entities("note")
        notes.insert({"author": "a", "body": "x"})
        notes.insert({"author": "b", "body": "y" * 300})
        sizes = stored_body_sizes(cloud, "bare")
        assert len(set(sizes)) == 2  # the leakage padding removes

    def test_padding_is_transparent_to_queries(self, cloud, registry):
        blinder = DataBlinder("padded2", InProcTransport(cloud.host),
                              registry=registry, pad_bucket=256)
        blinder.register_schema(note_schema())
        notes = blinder.entities("note")
        doc_id = notes.insert({"author": "alice", "body": "hello " * 20})
        assert notes.get(doc_id)["body"] == "hello " * 20
        assert notes.find_ids(Eq("author", "alice")) == {doc_id}
        notes.update(doc_id, {"body": "short"})
        assert notes.get(doc_id)["body"] == "short"

    def test_oversize_document_spills_to_next_bucket(self, cloud,
                                                     registry):
        blinder = DataBlinder("padded3", InProcTransport(cloud.host),
                              registry=registry, pad_bucket=128)
        blinder.register_schema(note_schema())
        notes = blinder.entities("note")
        notes.insert({"author": "a", "body": "x"})
        notes.insert({"author": "b", "body": "y" * 500})
        sizes = sorted(stored_body_sizes(cloud, "padded3"))
        assert sizes[0] < sizes[1]
        # Both are bucket multiples (minus the constant AEAD framing).
        overhead = 12 + 16  # nonce + tag
        assert (sizes[0] - overhead) % 128 == 0
        assert (sizes[1] - overhead) % 128 == 0
