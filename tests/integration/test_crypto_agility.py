"""Crypto agility: plugging a new tactic into the SPI at runtime.

The paper's differentiating claim is that tactic providers can add
schemes without touching applications.  This test implements a toy
third-party tactic (keyed-hash equality tokens — a simplified DET), wires
it through the SPI, registers it with a *better* performance rank, and
checks the selector adopts it transparently.
"""

from typing import Any

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.crypto.encoding import Value, encode_value
from repro.crypto.primitives.hmac_prf import prf
from repro.errors import RegistryError
from repro.net.transport import InProcTransport
from repro.spi import interfaces as spi
from repro.spi.descriptors import (
    Operation,
    PerformanceMetrics,
    TacticDescriptor,
)
from repro.spi.leakage import (
    LeakageLevel,
    LeakageProfile,
    OperationLeakage,
    ProtectionClass,
)
from repro.tactics import register_builtin_tactics
from repro.tactics.base import CloudTactic, GatewayTactic


class HashTagGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayEqQuery,
    spi.GatewayEqResolution,
):
    """Third-party tactic: PRF tags as equality tokens."""

    def setup(self) -> None:
        self._key = self.ctx.derive_key("hashtag")
        self.ctx.call("setup")

    def _tag(self, value: Value) -> bytes:
        return prf(self._key, b"tag", encode_value(value))

    def insert(self, doc_id: str, value: Value) -> None:
        self.ctx.call("insert", doc_id=doc_id, tag=self._tag(value))

    def eq_query(self, value: Value) -> Any:
        return self.ctx.call("eq_query", tag=self._tag(value))

    def resolve_eq(self, raw: Any) -> set[str]:
        return set(raw)


class HashTagCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudEqQuery,
):
    def setup(self, **params: Any) -> None:
        self._ns = self.ctx.state_key(b"tags")

    def insert(self, doc_id: str, tag: bytes) -> None:
        self.ctx.kv.set_add(self._ns + b"/" + tag, doc_id.encode())

    def eq_query(self, tag: bytes) -> list[str]:
        return sorted(
            m.decode() for m in self.ctx.kv.set_members(self._ns + b"/" + tag)
        )


HASHTAG_DESCRIPTOR = TacticDescriptor(
    name="hashtag",
    display_name="HashTag",
    operations=frozenset({Operation.INSERT, Operation.EQUALITY}),
    aggregates=frozenset(),
    leakage=LeakageProfile({
        "insert": OperationLeakage(LeakageLevel.EQUALITIES),
        "eq_search": OperationLeakage(LeakageLevel.EQUALITIES),
    }),
    performance=PerformanceMetrics(rank=0),  # faster than DET
    protection_class=ProtectionClass.C4,
    challenge="third-party plugin",
    implementation="test fixture",
)


@pytest.fixture()
def agile_registry():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    registry.register(HASHTAG_DESCRIPTOR, HashTagGateway, HashTagCloud)
    return registry


class TestPluginRegistration:
    def test_plugin_is_listed(self, agile_registry):
        assert "hashtag" in agile_registry.names()

    def test_spi_counts_derived(self, agile_registry):
        summary = agile_registry.get("hashtag").spi_summary()
        assert summary["gateway"] == ["Setup", "Insertion", "EqQuery",
                                      "EqResolution"]
        assert summary["cloud"] == ["Setup", "Insertion", "EqQuery"]

    def test_plugin_without_setup_rejected(self, agile_registry):
        class Broken:
            pass

        with pytest.raises(RegistryError):
            agile_registry.register(HASHTAG_DESCRIPTOR, Broken,
                                    HashTagCloud, replace=True)


class TestAdaptiveAdoption:
    def test_selector_adopts_faster_plugin(self, agile_registry):
        """A C4 equality field now selects the plugin (same class,
        better rank) — no application change needed."""
        from repro.core.selection import TacticSelector

        plan = TacticSelector(agile_registry).plan_field(
            "f", FieldAnnotation.parse("C4", "I,EQ")
        )
        assert plan.roles["eq"] == "hashtag"

    def test_end_to_end_with_plugin(self, agile_registry):
        cloud = CloudZone(agile_registry)
        blinder = DataBlinder("agileapp", InProcTransport(cloud.host),
                              registry=agile_registry)
        schema = Schema.define(
            "record",
            id="string",
            label=("string", FieldAnnotation.parse("C4", "I,EQ")),
        )
        reports = blinder.register_schema(schema)
        assert any("hashtag" in r.tactics for r in reports)
        records = blinder.entities("record")
        doc_id = records.insert({"id": "r1", "label": "urgent"})
        records.insert({"id": "r2", "label": "routine"})
        assert records.find_ids(Eq("label", "urgent")) == {doc_id}

    def test_builtin_behaviour_unchanged_without_plugin(self, registry):
        """The same schema on a plugin-free registry falls back to DET —
        the application code would not change either way."""
        from repro.core.selection import TacticSelector

        plan = TacticSelector(registry).plan_field(
            "f", FieldAnnotation.parse("C4", "I,EQ")
        )
        assert plan.roles["eq"] == "det"


class TestKeyRotationDrill:
    def test_root_rotation_invalidates_old_tokens(self, agile_registry):
        """Rotating the application root re-keys everything derived —
        the crypto-agility maintenance scenario."""
        cloud = CloudZone(agile_registry)
        blinder = DataBlinder("rotapp", InProcTransport(cloud.host),
                              registry=agile_registry)
        schema = Schema.define(
            "record",
            id="string",
            label=("string", FieldAnnotation.parse("C4", "I,EQ")),
        )
        blinder.register_schema(schema)
        records = blinder.entities("record")
        records.insert({"id": "r1", "label": "before-rotation"})

        blinder.keystore.rotate_root()
        # Old index entries no longer match tokens derived from the new
        # root: the operator must re-index (re-insert) the corpus.
        executor = blinder._executor("record")
        for by_role in executor._instances.values():
            for instance in by_role.values():
                instance.setup()  # re-derive keys from the rotated root
        assert records.find_ids(Eq("label", "before-rotation")) == set()
