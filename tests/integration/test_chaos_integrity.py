"""Integrity chaos suite: tamper/rollback injection, verified reads.

The acceptance criteria for the integrity subsystem: with proof-on-fetch
verification on, **every** injected tamper/rollback delivery surfaces as
a typed :class:`~repro.errors.IntegrityError` /
:class:`~repro.errors.StaleStateError` (100% detection), and a
fault-free run of the same seed raises nothing (zero false positives)
while producing correct results.  The seed comes from
``DATABLINDER_CHAOS_SEED``; a failing run dumps its fault schedule to
``DATABLINDER_CHAOS_ARTIFACTS`` for reproduction — same protocol as the
transport chaos suite.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.analysis.snapshot import zone_fingerprint
from repro.cloud.cluster import CloudCluster
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.errors import IntegrityError, StaleStateError
from repro.fhir.model import observation_schema
from repro.integrity import MODE_AUDIT, IntegrityConfig
from repro.net.batch import PipelineConfig
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.tcp import TcpRpcServer, TcpTransport
from repro.net.transport import InProcTransport, Transport
from repro.shard.config import ShardConfig
from repro.shard.rebalance import Resharder
from repro.shard.router import ShardedTransport
from repro.tactics import register_builtin_tactics

APP = "integrityapp"

CHAOS_SEED = int(os.environ.get("DATABLINDER_CHAOS_SEED", "1337"))

#: The acceptance schedule: 15% tampered deliveries, 10% rolled back.
PLAN = FaultPlan(tamper=0.15, rollback=0.10)

FETCH = PipelineConfig(integrity=IntegrityConfig())


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i % 3 == 0 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


@contextmanager
def chaos_deployment(kind: str, plan: FaultPlan, seed: int):
    registry = fresh_registry()
    cloud = CloudZone(registry)
    server = None
    if kind == "tcp":
        server = TcpRpcServer(cloud.host)
        server.serve_in_background()
        inner: Transport = TcpTransport(server.endpoint)
    else:
        inner = InProcTransport(cloud.host)
    faulty = FaultInjectingTransport(inner, plan, seed=seed)
    try:
        yield cloud, faulty, registry
    finally:
        faulty.close()
        if server is not None:
            server.shutdown()
            server.server_close()


@contextmanager
def schedule_artifact(faulty: FaultInjectingTransport, label: str):
    try:
        yield
    except BaseException:
        directory = os.environ.get("DATABLINDER_CHAOS_ARTIFACTS")
        if directory:
            path = Path(directory)
            path.mkdir(parents=True, exist_ok=True)
            (path / f"{label}-seed{faulty.seed}.json").write_text(
                faulty.schedule_json()
            )
        raise


def scenario_ops(observations, ids: list[str]) -> list:
    """The guarded read/update matrix: every op is one thunk.

    Updates interleave between the two read passes so the second pass
    has superseded envelopes for the rollback injector to replay.
    """
    ops = []
    for doc_id in ids:
        ops.append(lambda d=doc_id: observations.get(d))
    for offset, doc_id in enumerate(ids[: len(ids) // 2]):
        ops.append(
            lambda d=doc_id, v=float(100 + offset):
            observations.update(d, {"value": v})
        )
    for doc_id in ids + ids:
        ops.append(lambda d=doc_id: observations.get(d))
    return ops


def run_guarded(ops) -> tuple[int, int, list]:
    """Run every op, counting typed integrity detections."""
    detected = stale = 0
    outcomes = []
    for op in ops:
        try:
            outcomes.append(op())
        except StaleStateError:
            detected += 1
            stale += 1
            outcomes.append(None)
        except IntegrityError:
            detected += 1
            outcomes.append(None)
    return detected, stale, outcomes


class TestChaosDetection:
    @pytest.mark.parametrize("kind", ["inproc", "tcp"])
    def test_every_injected_fault_is_detected(self, kind):
        with chaos_deployment(kind, PLAN, CHAOS_SEED) as (
            _, faulty, registry
        ):
            with schedule_artifact(faulty, f"integrity-{kind}"):
                blinder = DataBlinder(APP, faulty, registry=registry,
                                      pipeline=FETCH)
                blinder.register_schema(observation_schema())
                observations = blinder.entities("observation")
                # Writes are never tampered (only proven reads are
                # eligible), so the corpus lands intact.
                ids = [observations.insert(make_doc(i)) for i in range(10)]

                detected, stale, _ = run_guarded(
                    scenario_ops(observations, ids)
                )
                applied = faulty.fault_count("tamper", "rollback")
                assert applied > 0, "schedule fired no integrity fault"
                # 100% detection: every applied fault surfaced as a
                # typed error, and nothing else did.
                assert detected == applied
                stats = blinder.runtime.transport.stats()
                assert stats.integrity_failures + stats.stale_detected \
                    == applied
                assert stats.stale_detected == stale

    def test_fault_free_run_has_zero_false_positives(self):
        with chaos_deployment("inproc", FaultPlan(), CHAOS_SEED) as (
            _, faulty, registry
        ):
            blinder = DataBlinder(APP, faulty, registry=registry,
                                  pipeline=FETCH)
            blinder.register_schema(observation_schema())
            observations = blinder.entities("observation")
            ids = [observations.insert(make_doc(i)) for i in range(10)]

            detected, stale, outcomes = run_guarded(
                scenario_ops(observations, ids)
            )
            assert detected == 0 and stale == 0
            assert faulty.fault_count() == 0
            stats = blinder.runtime.transport.stats()
            assert stats.integrity_failures == 0
            assert stats.stale_detected == 0
            # Verified results are correct, not just unexceptional.
            second_pass = outcomes[-len(ids):]
            assert [doc["identifier"] for doc in second_pass] \
                == list(range(10))
            assert [doc["value"] for doc in second_pass[:5]] \
                == [100.0, 101.0, 102.0, 103.0, 104.0]


class TestTypedErrors:
    def test_tampered_delivery_raises_integrity_error(self):
        with chaos_deployment("inproc", FaultPlan(tamper=1.0),
                              CHAOS_SEED) as (_, faulty, registry):
            blinder = DataBlinder(APP, faulty, registry=registry,
                                  pipeline=FETCH)
            blinder.register_schema(observation_schema())
            observations = blinder.entities("observation")
            doc_id = observations.insert(make_doc(0))
            with pytest.raises(IntegrityError):
                observations.get(doc_id)
            assert faulty.fault_count("tamper") >= 1

    def test_rolled_back_delivery_raises_stale_state_error(self):
        with chaos_deployment("inproc", FaultPlan(rollback=1.0),
                              CHAOS_SEED) as (_, faulty, registry):
            blinder = DataBlinder(APP, faulty, registry=registry,
                                  pipeline=FETCH)
            blinder.register_schema(observation_schema())
            observations = blinder.entities("observation")
            doc_id = observations.insert(make_doc(0))
            # First read captures the envelope the injector will replay;
            # it is identical to the live reply, so it passes.
            assert observations.get(doc_id)["identifier"] == 0
            observations.update(doc_id, {"value": 99.0})
            # The replayed pre-update envelope is valid but retired.
            with pytest.raises(StaleStateError):
                observations.get(doc_id)
            assert faulty.fault_count("rollback") >= 1


class TestAuditPass:
    def test_audit_catches_out_of_band_tampering(self):
        registry = fresh_registry()
        cloud = CloudZone(registry)
        blinder = DataBlinder(
            APP, InProcTransport(cloud.host), registry=registry,
            pipeline=PipelineConfig(
                integrity=IntegrityConfig(mode=MODE_AUDIT)
            ),
        )
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(4)]
        clean = blinder.integrity_audit()
        assert clean["roots_checked"] > 0

        # The snapshot adversary writes to "MongoDB" directly: no
        # mutation observer fires, the incremental report still matches
        # the ledger — only root recomputation can tell.
        store = cloud._documents[APP]
        store._documents[ids[0]]["schema"] = "forged"
        with pytest.raises(IntegrityError):
            blinder.integrity_audit()

    def test_audit_mode_reads_are_untouched(self):
        registry = fresh_registry()
        cloud = CloudZone(registry)
        blinder = DataBlinder(
            APP, InProcTransport(cloud.host), registry=registry,
            pipeline=PipelineConfig(
                integrity=IntegrityConfig(mode=MODE_AUDIT)
            ),
        )
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        doc_id = observations.insert(make_doc(3))
        assert observations.get(doc_id)["identifier"] == 3
        assert sorted(
            observations.get(d)["identifier"]
            for d in observations.find_ids(Eq("status", "amended"))
        ) == [3]


class TestIntegrityIsReadSideOnly:
    @staticmethod
    def _workload(pipeline: PipelineConfig) -> tuple[CloudZone,
                                                     DataBlinder, list]:
        registry = fresh_registry()
        cloud = CloudZone(registry)
        blinder = DataBlinder(APP, InProcTransport(cloud.host),
                              registry=registry, pipeline=pipeline)
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(6)]
        observations.update(ids[1], {"value": 50.0})
        observations.delete(ids[5])
        return cloud, blinder, ids

    def test_verified_reads_and_audit_leave_the_zone_untouched(self):
        """Verification never writes: fingerprint before a fully
        verified read pass plus an audit equals the one after."""
        cloud, blinder, ids = self._workload(FETCH)
        before = zone_fingerprint(cloud, APP)
        observations = blinder.entities("observation")
        for doc_id in ids[:5]:
            observations.get(doc_id)
        observations.find_ids(Eq("status", "final"))
        blinder.integrity_audit()
        assert zone_fingerprint(cloud, APP) == before

    def test_integrity_adds_no_stored_state(self):
        """The same workload leaves structurally identical zones with
        integrity on or off: trackers are pure bookkeeping over the
        stores, never entries inside them.  (Byte-level fingerprints
        cannot be compared across deployments — each generates fresh
        encryption keys — so this checks the store shapes.)"""
        from repro.analysis.snapshot import SnapshotAdversary

        with_integrity, _, _ = self._workload(FETCH)
        without, _, _ = self._workload(PipelineConfig())
        on = SnapshotAdversary(with_integrity, APP).report()
        off = SnapshotAdversary(without, APP).report()
        assert on.documents == off.documents
        assert on.kv_entries == off.kv_entries


class TestReshardingInvariance:
    def _deploy(self, pipeline: PipelineConfig):
        registry = fresh_registry()
        cluster = CloudCluster(3, registry=registry)
        router = ShardedTransport(cluster.nodes(),
                                  ShardConfig(parallel_fanout=False))
        blinder = DataBlinder(APP, router, registry=registry,
                              pipeline=pipeline)
        blinder.register_schema(observation_schema())
        return cluster, router, blinder

    def _verify_all(self, observations, ids: list[str]) -> None:
        for i, doc_id in enumerate(ids):
            assert observations.get(doc_id)["identifier"] == i

    def test_join_and_leave_preserve_the_cluster_digest(self):
        cluster, router, blinder = self._deploy(FETCH)
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(16)]
        self._verify_all(observations, ids)

        report = Resharder(router, chunk_size=8).add_node(
            *cluster.add_zone("zone-3")
        )
        assert report.integrity_verified is True
        # Proven reads stay live on the new topology: the ledger
        # re-syncs to the post-migration roots on the next fetch.
        self._verify_all(observations, ids)

        report = Resharder(router, chunk_size=8).remove_node("zone-2")
        assert report.integrity_verified is True
        self._verify_all(observations, ids)

    def test_without_integrity_the_check_is_skipped_not_failed(self):
        cluster, router, blinder = self._deploy(PipelineConfig())
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(8)]
        report = Resharder(router, chunk_size=8).add_node(
            *cluster.add_zone("zone-3")
        )
        assert report.integrity_verified is False
        self._verify_all(observations, ids)


class TestChaosWithCache:
    """The read cache can never mask what verification would catch.

    The same acceptance schedule as :class:`TestChaosDetection`, with
    the gateway read-cache tier forced on: a cached hit is served only
    after a forced freshness-ledger re-sync over the *faulty* transport,
    so tampered or rolled-back deliveries — fetches and re-sync reports
    alike — still surface as typed errors, 100% of the time.  The
    paper's Observation schema itself carries a C1 ``performer`` field,
    which the admission floor refuses; the chaos leg runs on a C2
    variant so the plaintext levels actually serve hits under fire.
    """

    @staticmethod
    def _cached_schema():
        from repro.core.schema import Schema, FieldAnnotation

        return Schema.define(
            "observation",
            id="string",
            identifier="int",
            status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
            code=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
            subject=("string", FieldAnnotation.parse("C2", "I,EQ")),
            effective=("int", FieldAnnotation.parse("C5", "I,EQ,BL,RG")),
            issued=("int", FieldAnnotation.parse("C5", "I,EQ,BL,RG")),
            performer=("string", FieldAnnotation.parse("C2", "I")),
            value=("float", FieldAnnotation.parse("C3", "I,EQ,BL",
                                                  "avg")),
            interpretation="string",
        )

    @classmethod
    def _deploy(cls, faulty, registry):
        from repro.cache import CacheConfig

        blinder = DataBlinder(
            APP, faulty, registry=registry,
            pipeline=PipelineConfig(integrity=IntegrityConfig(),
                                    cache=CacheConfig()),
        )
        blinder.register_schema(cls._cached_schema())
        return blinder

    def test_every_injected_fault_is_detected_with_caching_on(self):
        with chaos_deployment("inproc", PLAN, CHAOS_SEED) as (
            _, faulty, registry
        ):
            with schedule_artifact(faulty, "integrity-cache"):
                blinder = self._deploy(faulty, registry)
                observations = blinder.entities("observation")
                ids = [observations.insert(make_doc(i))
                       for i in range(10)]

                detected, stale, _ = run_guarded(
                    scenario_ops(observations, ids)
                )
                applied = faulty.fault_count("tamper", "rollback")
                assert applied > 0, "schedule fired no integrity fault"
                assert detected == applied
                stats = blinder.runtime.transport.stats()
                assert stats.integrity_failures + stats.stale_detected \
                    == applied
                assert stats.stale_detected == stale

    def test_fault_free_cached_run_is_quiet_correct_and_warm(self):
        with chaos_deployment("inproc", FaultPlan(), CHAOS_SEED) as (
            _, faulty, registry
        ):
            blinder = self._deploy(faulty, registry)
            observations = blinder.entities("observation")
            ids = [observations.insert(make_doc(i)) for i in range(10)]

            detected, stale, outcomes = run_guarded(
                scenario_ops(observations, ids)
            )
            assert detected == 0 and stale == 0
            assert faulty.fault_count() == 0
            # Same correctness bar as the uncached run: the second read
            # pass sees every interleaved update.
            second_pass = outcomes[-len(ids):]
            assert [doc["identifier"] for doc in second_pass] \
                == list(range(10))
            assert [doc["value"] for doc in second_pass[:5]] \
                == [100.0, 101.0, 102.0, 103.0, 104.0]
            # And the cache was live, not inert: the repeat pass served
            # validated document hits.
            snapshot = blinder.runtime.cache_tier.snapshot()
            assert snapshot["documents"]["hits"] > 0
