"""Online resharding: node join/leave under a live workload, and
replicated failover when a shard dies outright."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cloud.cluster import CloudCluster
from repro.core.middleware import DataBlinder
from repro.core.query import Eq, Range
from repro.core.registry import TacticRegistry
from repro.errors import TransportError
from repro.fhir.model import observation_schema
from repro.net.resilience import (
    BreakerConfig,
    ResilienceConfig,
    ResilientTransport,
    RetryPolicy,
)
from repro.net.rpc import Request
from repro.net.transport import Transport
from repro.shard.config import ShardConfig
from repro.shard.rebalance import Resharder
from repro.shard.router import ShardedTransport
from repro.tactics import register_builtin_tactics

APP = "reshardapp"


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i % 3 == 0 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


def deploy(n_nodes: int, config: ShardConfig | None = None):
    registry = fresh_registry()
    cluster = CloudCluster(n_nodes, registry=registry)
    router = ShardedTransport(
        cluster.nodes(), config or ShardConfig(parallel_fanout=False)
    )
    blinder = DataBlinder(APP, router, registry=registry)
    blinder.register_schema(observation_schema())
    return cluster, router, blinder


def verify_workload(observations, ids_by_identifier: dict[int, str]):
    """Full sweep: every doc readable, every query shape correct."""
    for i, doc_id in ids_by_identifier.items():
        assert observations.get(doc_id)["identifier"] == i
    identifiers = sorted(ids_by_identifier)
    assert observations.count() == len(identifiers)
    assert sorted(
        observations.get(d)["identifier"]
        for d in observations.find_ids(Eq("status", "final"))
    ) == [i for i in identifiers if i % 2 == 0]
    lo, hi = 1000 + identifiers[2], 1000 + identifiers[-3]
    assert sorted(
        observations.get(d)["identifier"]
        for d in observations.find_ids(Range("effective", lo, hi))
    ) == [i for i in identifiers if lo <= 1000 + i <= hi]


class TestNodeJoin:
    def test_join_during_live_workload_loses_nothing(self):
        cluster, router, blinder = deploy(3)
        observations = blinder.entities("observation")
        ids = {i: observations.insert(make_doc(i)) for i in range(40)}

        stop = threading.Event()
        errors: list[Exception] = []
        live_ids: dict[int, str] = {}

        def writer():
            i = 100
            while not stop.is_set() and i < 160:
                try:
                    live_ids[i] = observations.insert(make_doc(i))
                except Exception as exc:  # noqa: BLE001 - fail the test
                    errors.append(exc)
                    return
                i += 1

        def reader():
            probes = [ids[0], ids[17], ids[39]]
            while not stop.is_set():
                try:
                    for doc_id in probes:
                        assert observations.get(doc_id)["_id"] == doc_id
                except Exception as exc:  # noqa: BLE001 - fail the test
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        time.sleep(0.01)  # let the live workload overlap the migration
        try:
            report = Resharder(router, chunk_size=8).add_node(
                *cluster.add_zone("zone-3")
            )
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        assert not router.forwarding_active()
        assert report.documents_moved > 0
        assert report.index_entries_total > 0
        assert report.services_replayed > 0

        all_ids = {**ids, **live_ids}
        verify_workload(observations, all_ids)
        # The joiner genuinely took ownership of part of the keyspace.
        joined = cluster.zone("zone-3").application_stores(APP)[1]
        assert len(joined.all_ids()) > 0
        cluster.close()

    def test_join_is_invisible_to_results(self):
        cluster, router, blinder = deploy(2)
        observations = blinder.entities("observation")
        ids = {i: observations.insert(make_doc(i)) for i in range(20)}
        before = sorted(
            observations.get(d)["identifier"]
            for d in observations.find_ids(Eq("status", "final"))
        )
        Resharder(router).add_node(*cluster.add_zone("zone-2"))
        after = sorted(
            observations.get(d)["identifier"]
            for d in observations.find_ids(Eq("status", "final"))
        )
        assert after == before
        verify_workload(observations, ids)
        cluster.close()


class TestNodeLeave:
    def test_remove_node_drains_completely(self):
        cluster, router, blinder = deploy(4)
        observations = blinder.entities("observation")
        ids = {i: observations.insert(make_doc(i)) for i in range(30)}

        report = Resharder(router, chunk_size=8).remove_node("zone-2")
        assert "zone-2" not in router.node_names()
        verify_workload(observations, ids)
        # The departed zone kept nothing behind.
        drained = cluster.zone("zone-2").application_stores(APP)[1]
        assert drained.all_ids() == []
        assert report.documents_moved > 0
        cluster.close()

    def test_last_node_cannot_leave(self):
        cluster, router, _ = deploy(1)
        with pytest.raises(TransportError):
            Resharder(router).remove_node("zone-0")
        cluster.close()


class TestReplicationGuard:
    def test_resharding_requires_single_replica(self):
        cluster, router, _ = deploy(
            3, ShardConfig(replication=2, parallel_fanout=False)
        )
        with pytest.raises(TransportError):
            Resharder(router).add_node(*cluster.add_zone("zone-3"))
        cluster.close()


class KillSwitch(Transport):
    """A shard link that can be cut dead mid-test."""

    def __init__(self, inner: Transport):
        self._inner = inner
        self.dead = False

    def _check(self) -> None:
        if self.dead:
            raise TransportError("shard is down")

    def call(self, service, method, **kwargs):
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request):
        self._check()
        return self._inner.call_request(request)

    def call_batch(self, requests):
        self._check()
        return self._inner.call_batch(requests)

    def stats(self):
        return self._inner.stats()


class TestShardKillFailover:
    def test_replicated_reads_survive_a_dead_shard(self):
        registry = fresh_registry()
        cluster = CloudCluster(4, registry=registry)
        switches: dict[str, KillSwitch] = {}
        nodes = []
        for name in cluster.names():
            switch = KillSwitch(cluster.transport(name))
            switches[name] = switch
            # Per-shard breaker: the first failed call opens it, so the
            # router's replica chain can skip the dead shard afterwards.
            nodes.append((name, ResilientTransport(
                switch, RetryPolicy.no_retry(),
                breaker=BreakerConfig(failure_threshold=1,
                                      reset_timeout=10 ** 9),
                seed=0,
            )))
        router = ShardedTransport(
            nodes, ShardConfig(replication=2, parallel_fanout=False)
        )
        blinder = DataBlinder(
            APP, router, registry=registry,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=4, sleep=False),
                breaker=BreakerConfig(failure_threshold=10 ** 9),
            ),
        )
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        ids = {i: observations.insert(make_doc(i)) for i in range(16)}

        switches["zone-1"].dead = True

        # Reads fail over to the surviving replica of every key.
        for i, doc_id in ids.items():
            assert observations.get(doc_id)["identifier"] == i
        assert observations.count() == 16
        assert sorted(
            observations.get(d)["identifier"]
            for d in observations.find_ids(Eq("status", "final"))
        ) == [i for i in ids if i % 2 == 0]
        # Writes land on the surviving owner too.
        ids[99] = observations.insert(make_doc(99))
        assert observations.get(ids[99])["identifier"] == 99
        assert observations.count() == 17
        assert router.stats().failovers > 0
        cluster.close()
