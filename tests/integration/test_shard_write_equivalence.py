"""Parallel-vs-sequential sharded write equivalence, by record/replay.

Gateway crypto is randomised (document ids, AEAD nonces, SSE salts), so
two *runs* of the same workload never store the same bytes.  The stream
of requests the gateway emits, however, is independent of how the
router below it is configured — the recorder sits above the router.  So
the sweep records one workload's post-batching, post-resilience request
stream against a plain single zone, then replays those exact frames
through differently configured routers into fresh identical clusters:
the per-zone :func:`~repro.analysis.snapshot.zone_fingerprint` digests
must match the sequential baseline byte for byte at every shard count,
replication factor and write quorum.

The chaos leg replays the same stream while every shard link drops 10%
and duplicates 5% of its frames (per-link seeded retries below the
router, quorum writes above): after ``drain_async_writes`` the cluster
still converges byte-identical to the fault-free replay.
"""

from __future__ import annotations

import pytest

from repro.analysis.snapshot import zone_fingerprint
from repro.cloud.cluster import CloudCluster
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.registry import TacticRegistry
from repro.fhir.model import observation_schema
from repro.net.batch import PipelineConfig
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.resilience import (
    BreakerConfig,
    ResilienceConfig,
    RetryPolicy,
    wrap_resilient,
)
from repro.net.rpc import Request, Response
from repro.net.transport import InProcTransport, Transport
from repro.shard.config import ShardConfig
from repro.shard.router import ShardedTransport
from repro.tactics import register_builtin_tactics

APP = "writequivapp"

PLAN = FaultPlan(drop=0.10, duplicate=0.05)
CHAOS_SEED = 1337

#: Per-shard-link resilience for the chaos leg: link faults retry below
#: the router, so every quorum leg eventually delivers and the final
#: state is a pure function of the recorded stream.
RESILIENCE = ResilienceConfig(
    retry=RetryPolicy(max_attempts=10, sleep=False),
    breaker=BreakerConfig(failure_threshold=50),
    seed=CHAOS_SEED,
)


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i < 6 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


class RecordingTransport(Transport):
    """Logs every frame crossing the gateway/cloud boundary, in order."""

    def __init__(self, inner: Transport):
        self._inner = inner
        self.log: list[tuple[str, object]] = []

    def call(self, service, method, **kwargs):
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request):
        self.log.append(("call", request))
        return self._inner.call_request(request)

    def call_batch(self, requests) -> list[Response]:
        requests = list(requests)
        self.log.append(("batch", requests))
        return self._inner.call_batch(requests)

    def stats(self):
        return self._inner.stats()

    def labeled_stats(self):
        return self._inner.labeled_stats()

    def topology_epoch(self):
        return self._inner.topology_epoch()

    def drain_shard_timings(self):
        return self._inner.drain_shard_timings()

    def drain_async_writes(self, timeout=None):
        return self._inner.drain_async_writes(timeout)

    def close(self):
        self._inner.close()


def run_write_workload(blinder: DataBlinder) -> None:
    blinder.register_schema(observation_schema())
    observations = blinder.entities("observation")
    ids = [observations.insert(make_doc(i)) for i in range(6)]
    ids += observations.insert_many([make_doc(i) for i in range(6, 14)])
    observations.update(ids[3], {"value": 30.0})
    observations.update(ids[9], {"status": "amended"})
    assert observations.delete(ids[13])


@pytest.fixture(scope="module")
def recorded_stream() -> list[tuple[str, object]]:
    """The workload's request stream, recorded once against one zone."""
    registry = fresh_registry()
    zone = CloudZone(registry)
    recorder = RecordingTransport(InProcTransport(zone.host))
    blinder = DataBlinder(
        APP, recorder, registry=registry,
        pipeline=PipelineConfig(batch_writes=True),
    )
    run_write_workload(blinder)
    zone.close()
    assert any(kind == "batch" for kind, _ in recorder.log)
    return recorder.log


def replay_fingerprints(log, shards: int, config: ShardConfig,
                        chaos: bool = False):
    """Fire the recorded stream into a fresh cluster; digest each zone."""
    registry = fresh_registry()
    cluster = CloudCluster(shards, registry=registry)
    nodes = cluster.nodes()
    injectors: list[FaultInjectingTransport] = []
    if chaos:
        chaotic = []
        for index, (name, transport) in enumerate(nodes):
            injector = FaultInjectingTransport(
                transport, PLAN, seed=CHAOS_SEED + index
            )
            injectors.append(injector)
            chaotic.append((name, wrap_resilient(injector, RESILIENCE)))
        nodes = chaotic
    router = ShardedTransport(nodes, config)
    try:
        for kind, payload in log:
            if kind == "batch":
                router.call_batch(list(payload))
            else:
                router.call_request(payload)
        router.drain_async_writes(timeout=30.0)
        assert router.async_write_failures() == 0
        fingerprints = {
            name: zone_fingerprint(cluster.zone(name), APP)
            for name in cluster.names()
        }
        scatters = router.scatter_count()
        faults = sum(i.fault_count() for i in injectors)
    finally:
        router.close()
        cluster.close()
    return fingerprints, scatters, faults


@pytest.fixture(scope="module")
def sequential_baseline(recorded_stream):
    """Sequential-replay fingerprints, cached per (shards, replication)."""
    cache: dict[tuple[int, int], dict[str, str]] = {}

    def get(shards: int, replication: int) -> dict[str, str]:
        key = (shards, replication)
        if key not in cache:
            fingerprints, _, _ = replay_fingerprints(
                recorded_stream, shards,
                ShardConfig(replication=replication,
                            parallel_fanout=False),
            )
            cache[key] = fingerprints
        return cache[key]

    return get


#: (shards, replication, write_quorum) — quorum 0 is the legacy
#: wait-all mode; 1 and 2 are explicit W-of-R acks.
CASES = [(1, 1, 0), (4, 1, 0), (8, 1, 0),
         (4, 2, 0), (4, 2, 1), (4, 2, 2),
         (8, 2, 0), (8, 2, 1), (8, 2, 2)]


class TestParallelWriteEquivalence:
    def test_sequential_baseline_spreads_data(self, recorded_stream,
                                              sequential_baseline):
        fingerprints = sequential_baseline(4, 1)
        assert len(fingerprints) == 4
        # 13 surviving documents over 4 shards: no two zones hold
        # identical state, and none is the single-zone recording.
        assert len(set(fingerprints.values())) > 1

    @pytest.mark.parametrize("shards,replication,quorum", CASES)
    def test_parallel_replay_matches_sequential(
        self, recorded_stream, sequential_baseline, shards, replication,
        quorum
    ):
        baseline = sequential_baseline(shards, replication)
        fingerprints, scatters, _ = replay_fingerprints(
            recorded_stream, shards,
            ShardConfig(replication=replication, write_quorum=quorum,
                        parallel_fanout=True),
        )
        assert fingerprints == baseline
        if shards > 1:
            assert scatters > 0

    def test_replication_stores_every_frame_twice(self, recorded_stream,
                                                  sequential_baseline):
        # Replicated zones hold strictly more than their replication=1
        # counterparts (same stream, every chain delivered twice).
        single = sequential_baseline(4, 1)
        doubled = sequential_baseline(4, 2)
        assert single != doubled

    def test_chaos_quorum_writes_converge_byte_identical(
        self, recorded_stream
    ):
        config = ShardConfig(replication=2, write_quorum=1,
                             parallel_fanout=True)
        clean, _, _ = replay_fingerprints(recorded_stream, 4, config)
        chaotic, _, faults = replay_fingerprints(
            recorded_stream, 4, config, chaos=True
        )
        assert faults > 0  # the schedule actually fired
        assert chaotic == clean
