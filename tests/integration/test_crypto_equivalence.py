"""Kernel-vs-sequential equivalence sweep.

Two gateway runtimes share ONE KeyStore (same HSM, same derived keys,
same re-derived keypairs, same OPRF keys) against two independent cloud
zones.  The baseline runtime runs the seed per-value insert loop; the
kernel runtime drives the same entries through the batch SPI under an
active :class:`CryptoConfig`.  For deterministic tactics the resulting
cloud state must be byte-identical; randomized tactics are checked by
protocol round trip (retrieval / aggregate decryption).

A second sweep exercises the full middleware stack: a kernelised
deployment's bulk insert must answer every query identically to a
default deployment over the same documents.
"""

from __future__ import annotations

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import AggregateQuery, And, Eq, Range
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.crypto.kernels.config import FORCE_POOL_ENV, CryptoConfig
from repro.keys.keystore import KeyStore
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport
from repro.spi.descriptors import Aggregate
from repro.tactics import register_builtin_tactics

BATCH_SIZES = [1, 7, 64]

KERNEL_CONFIGS = [
    pytest.param(CryptoConfig(precompute=True), id="inline-precompute"),
    pytest.param(CryptoConfig(workers=1, precompute=True, min_submit=4),
                 id="pooled"),
]


@pytest.fixture(scope="module")
def registry():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def build_runtime(registry, keystore, config):
    from repro.gateway.service import GatewayRuntime

    cloud = CloudZone(registry)
    runtime = GatewayRuntime(
        keystore.application, InProcTransport(cloud.host), registry,
        keystore=keystore, pipeline=PipelineConfig(crypto=config),
    )
    return runtime, cloud


def string_values(size):
    return [f"value-{i % 5}" for i in range(size)]


def numeric_values(size):
    return [float(i % 9) * 1.5 - 3.0 for i in range(size)]


def entries_for(tactic, size):
    values = (numeric_values(size)
              if tactic in ("ope", "ore", "paillier") else
              [i % 7 + 1 for i in range(size)] if tactic == "elgamal" else
              string_values(size))
    return [(f"doc-{i:03d}", value) for i, value in enumerate(values)]


def paired_instances(registry, config, tactic, field="obs.field"):
    """The same tactic instance in a baseline and a kernel runtime,
    sharing one keystore, plus both cloud halves for state dumps."""
    keystore = KeyStore("equiv")
    base_rt, base_cloud = build_runtime(registry, keystore, None)
    kern_rt, kern_cloud = build_runtime(registry, keystore, config)
    return (
        base_rt.tactic(field, tactic),
        kern_rt.tactic(field, tactic),
        base_cloud.tactic_instance("equiv", field, tactic),
        kern_cloud.tactic_instance("equiv", field, tactic),
    )


class TestDeterministicTactics:
    """Seed loop and batch SPI must produce byte-identical cloud state."""

    @pytest.mark.parametrize("config", KERNEL_CONFIGS)
    @pytest.mark.parametrize("size", BATCH_SIZES)
    @pytest.mark.parametrize("tactic", ["det", "blind-index", "ope", "ore"])
    def test_cloud_state_byte_identical(self, registry, config, tactic,
                                        size):
        base, kern, base_cloud, kern_cloud = paired_instances(
            registry, config, tactic
        )
        entries = entries_for(tactic, size)
        for doc_id, value in entries:       # the seed per-value loop
            base.insert(doc_id, value)
        kern.index_many(entries)            # the kernelised batch
        assert kern_cloud.shard_dump() == base_cloud.shard_dump()

    @pytest.mark.parametrize("tactic", ["det", "blind-index", "ope", "ore"])
    def test_single_token_matches_batch(self, registry, tactic):
        _, kern, _, _ = paired_instances(
            registry, CryptoConfig(precompute=True), tactic
        )
        value = 4.5 if tactic in ("ope", "ore") else "value-1"
        assert kern.tokens_many([value, value]) == [
            kern.token(value), kern.token(value)
        ]

    @pytest.mark.parametrize("tactic", ["det", "blind-index", "ope", "ore"])
    def test_inactive_config_batch_equals_seed(self, registry, tactic):
        """With the defaults, index_many degrades to the seed loop."""
        base, kern, base_cloud, kern_cloud = paired_instances(
            registry, None, tactic
        )
        entries = entries_for(tactic, 7)
        for doc_id, value in entries:
            base.insert(doc_id, value)
        kern.index_many(entries)
        assert kern_cloud.shard_dump() == base_cloud.shard_dump()


class TestRandomizedTactics:
    """Fresh randomness forbids byte comparison; the protocols must
    still round-trip over kernel-produced ciphertexts."""

    @pytest.mark.parametrize("config", KERNEL_CONFIGS)
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_rnd_retrieval_round_trip(self, registry, config, size):
        _, kern, _, _ = paired_instances(registry, config, "rnd")
        entries = entries_for("rnd", size)
        kern.index_many(entries)
        for doc_id, value in entries:
            assert kern.retrieve(doc_id) == value

    @pytest.mark.parametrize("config", KERNEL_CONFIGS)
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_paillier_aggregate_round_trip(self, registry, config, size):
        _, kern, _, _ = paired_instances(registry, config, "paillier")
        entries = entries_for("paillier", size)
        kern.index_many(entries)
        total = sum(value for _, value in entries)
        assert kern.aggregate("sum") == pytest.approx(total)
        assert kern.aggregate("avg") == pytest.approx(total / len(entries))

    @pytest.mark.parametrize("config", KERNEL_CONFIGS)
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_elgamal_product_round_trip(self, registry, config, size):
        _, kern, _, _ = paired_instances(registry, config, "elgamal")
        entries = entries_for("elgamal", size)
        kern.index_many(entries)
        product = 1
        for _, value in entries:
            product *= value
        assert kern.aggregate("product") == product

    def test_pool_audit_carries_only_public_ints(self, registry):
        """Forkserver safety against real tactic traffic: everything
        submitted to the pool is plain public data."""
        from repro.crypto.kernels.executor import ensure_plain_args

        config = CryptoConfig(workers=1, precompute=True, min_submit=4)
        keystore = KeyStore("equiv")
        runtime, _ = build_runtime(registry, keystore, config)
        for tactic in ("paillier", "elgamal"):
            runtime.tactic("obs.field", tactic).index_many(
                entries_for(tactic, 8)
            )
        assert runtime.kernels.audit, "expected pooled submissions"
        paillier_key = keystore.paillier_keypair("obs.field", "paillier",
                                                 1024)
        elgamal_key = keystore.elgamal_keypair("obs.field", "elgamal", 256)
        secrets_set = {paillier_key.lam, paillier_key.mu, paillier_key.p,
                       paillier_key.q, elgamal_key.x}
        for _, args in runtime.kernels.audit:
            ensure_plain_args(args)
            flat = [item for item in args if isinstance(item, int)]
            assert not (set(flat) & secrets_set)


SCHEMA_FIELDS = dict(
    status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
    kind=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
    patient=("string", FieldAnnotation.parse("C2", "I,EQ")),
    effective=("int", FieldAnnotation.parse("C5", "I,EQ,RG", "min,max")),
    value=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
    note="string",
)


def build_deployment(crypto):
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    blinder = DataBlinder(
        "equiv", InProcTransport(cloud.host), registry=registry,
        pipeline=PipelineConfig(batch_writes=True, crypto=crypto),
    )
    blinder.register_schema(Schema.define("obs", **SCHEMA_FIELDS))
    entities = blinder.entities("obs")
    entities.insert_many([
        {
            "_id": f"d{i:03d}",
            "status": ["final", "draft", "amended"][i % 3],
            "kind": ["hr", "bp"][i % 2],
            "patient": f"p{i % 5}",
            "effective": i * 3 % 50,
            "value": float(i % 7),
            "note": f"note {i}",
        }
        for i in range(48)
    ])
    return blinder, entities


class TestDeploymentEquivalence:
    """Full middleware: kernelised bulk insert answers queries exactly
    like the default deployment over the same documents."""

    @pytest.fixture(scope="class")
    def deployments(self):
        # Shield the baseline from the CI matrix's forced-pool override:
        # this class asserts *defaults* behaviour (no crypto/wire rows),
        # which the override would deliberately change.
        with pytest.MonkeyPatch.context() as patcher:
            patcher.delenv(FORCE_POOL_ENV, raising=False)
            baseline = build_deployment(None)
            kernel = build_deployment(
                CryptoConfig(workers=1, precompute=True, min_submit=4)
            )
        return baseline, kernel

    @pytest.mark.parametrize("predicate", [
        Eq("status", "final"),
        Eq("patient", "p2"),
        Eq("note", "note 4"),
        Range("effective", 10, 30),
        And([Eq("status", "final"), Eq("kind", "hr")]),
        And([Eq("kind", "bp"), Range("effective", 0, 25)]),
    ], ids=["eq-bl", "eq", "plain", "range", "and-bool", "and-range"])
    def test_find_ids_match(self, deployments, predicate):
        (_, base_entities), (_, kern_entities) = deployments
        assert kern_entities.find_ids(predicate) == base_entities.find_ids(
            predicate
        )

    @pytest.mark.parametrize("function,field", [
        (Aggregate.SUM, "value"),
        (Aggregate.AVG, "value"),
        (Aggregate.MIN, "effective"),
        (Aggregate.MAX, "effective"),
    ])
    def test_aggregates_match(self, deployments, function, field):
        (_, base_entities), (_, kern_entities) = deployments
        query = AggregateQuery(function, field, None)
        assert kern_entities.aggregate(query) == pytest.approx(
            base_entities.aggregate(query)
        )

    def test_retrieval_matches(self, deployments):
        (_, base_entities), (_, kern_entities) = deployments
        for doc_id in ("d000", "d023", "d047"):
            assert kern_entities.get(doc_id) == base_entities.get(doc_id)

    def test_explain_shows_crypto_wire_split(self, deployments):
        (baseline, _), (kernel, _) = deployments
        rendered = kernel.explain("obs", operation="insert")
        assert "observed crypto/wire split" in rendered
        assert "Crypto:insert" in rendered
        assert "Wire:insert" in rendered
        # The defaults run the seed loop and record no split rows.
        assert "crypto/wire split" not in baseline.explain(
            "obs", operation="insert"
        )
