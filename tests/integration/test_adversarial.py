"""Adversarial and failure-injection tests.

The untrusted zone may be curious *and* faulty: these tests tamper with
stored ciphertexts, corrupt index entries, and inject service failures
mid-protocol, checking that the trusted zone fails loudly (authenticated
encryption) or degrades soundly (verification drops bad candidates) and
never returns silently wrong data.
"""

import pytest

from repro.core.query import Eq
from repro.errors import DataBlinderError, RemoteError
from repro.fhir.model import observation_schema


def make_doc(i, **overrides):
    doc = {
        "id": f"f{i}", "identifier": i, "status": "final",
        "code": "glucose", "subject": "Pat One", "effective": 1000 + i,
        "issued": 2000 + i, "performer": "Dr", "value": float(i),
        "interpretation": "",
    }
    doc.update(overrides)
    return doc


@pytest.fixture()
def deployed(blinder, cloud):
    blinder.register_schema(observation_schema())
    entities = blinder.entities("observation")
    ids = [entities.insert(make_doc(i)) for i in range(4)]
    return entities, cloud, ids


class TestTamperedCiphertexts:
    def test_tampered_body_fails_loudly_on_get(self, deployed):
        entities, cloud, ids = deployed
        _, documents = cloud.application_stores("testapp")
        stored = documents.get(ids[0])
        body = bytearray(stored["body"])
        body[-1] ^= 0xFF
        documents.replace(dict(stored, body=bytes(body)))
        with pytest.raises(DataBlinderError):
            entities.get(ids[0])

    def test_tampered_body_is_dropped_from_find(self, deployed):
        """A search whose candidate body fails authentication must not
        silently return garbage."""
        entities, cloud, ids = deployed
        _, documents = cloud.application_stores("testapp")
        stored = documents.get(ids[1])
        body = bytearray(stored["body"])
        body[20] ^= 0x01
        documents.replace(dict(stored, body=bytes(body)))
        with pytest.raises(DataBlinderError):
            entities.find(Eq("status", "final"))

    def test_swapped_bodies_detected(self, deployed):
        """The cloud cannot swap two documents' bodies unnoticed: ids are
        bound via the probabilistic envelope, so decryption still works,
        but verification catches predicate mismatches."""
        entities, cloud, ids = deployed
        _, documents = cloud.application_stores("testapp")
        a = documents.get(ids[0])
        b = documents.get(ids[1])
        documents.replace(dict(a, body=b["body"]))
        # The value of doc a now reads as doc b's; an equality query on
        # a DET-indexed field catches the inconsistency via gateway-side
        # verification (candidate fails the plaintext predicate).
        matches = entities.find(Eq("effective", 1000))
        assert all(d["effective"] == 1000 for d in matches)


class TestCorruptedIndexes:
    def test_corrupted_det_index_never_fabricates_results(self, deployed,
                                                          cloud):
        """Planting a foreign doc id under a DET token yields candidates
        that verification removes — results stay sound."""
        entities, cloud, ids = deployed
        kv, _ = cloud.application_stores("testapp")
        # Find a DET token set and plant another document's id in it.
        for name in list(kv._sets):
            if b"/det/token/" in name or (b"det" in name
                                          and b"token" in name):
                kv.set_add(name, ids[0].encode())
        results = entities.find(Eq("effective", 1002))
        assert {d["_id"] for d in results} == {ids[2]}

    def test_cloud_dropping_index_entries_loses_recall_not_soundness(
            self, deployed, cloud):
        entities, cloud, ids = deployed
        kv, _ = cloud.application_stores("testapp")
        kv.flush_all()  # the cloud "loses" every secure index
        # Searches on index-backed fields return nothing — degraded
        # recall — but never wrong documents, and reads still work.
        assert entities.find(Eq("effective", 1000)) == []
        assert entities.get(ids[0])["value"] == 0.0


class TestServiceFailures:
    def test_remote_failure_surfaces_as_remote_error(self, deployed,
                                                     transport):
        entities, _, _ = deployed
        original = transport._host.dispatch

        from repro.net.rpc import Response

        def failing(request):
            if request.service.endswith("/paillier"):
                return Response(ok=False, error_type="RuntimeError",
                                error_message="cloud exploded")
            return original(request)

        transport._host.dispatch = failing
        try:
            with pytest.raises(RemoteError):
                entities.average("value")
        finally:
            transport._host.dispatch = original

    def test_failure_during_insert_leaves_prior_data_intact(self,
                                                            deployed,
                                                            transport):
        entities, _, ids = deployed
        original = transport._host.dispatch

        from repro.net.rpc import Response

        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] == 3:  # fail mid-way through the tactic fan-out
                return Response(ok=False, error_type="OSError",
                                error_message="connection reset")
            return original(request)

        transport._host.dispatch = flaky
        try:
            with pytest.raises(RemoteError):
                entities.insert(make_doc(99))
        finally:
            transport._host.dispatch = original
        # Previously stored documents are unaffected.
        assert entities.count() == 4
        assert entities.get(ids[0])["value"] == 0.0


class TestConcurrentClients:
    def test_parallel_inserts_and_searches(self, blinder):
        import threading

        blinder.register_schema(observation_schema())
        entities = blinder.entities("observation")
        errors = []

        def writer(base):
            try:
                for i in range(6):
                    entities.insert(make_doc(base * 100 + i,
                                             subject=f"W{base}"))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                for _ in range(10):
                    entities.find(Eq("status", "final"))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = ([threading.Thread(target=writer, args=(n,))
                    for n in range(3)]
                   + [threading.Thread(target=reader) for _ in range(2)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert entities.count() == 18
        for base in range(3):
            assert len(entities.find(Eq("subject", f"W{base}"))) == 6
