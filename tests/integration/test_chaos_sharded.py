"""Sharded chaos: the chaos scenario matrix over a 4-shard ring with
per-shard fault injection (10% dropped frames, 5% duplicated).

Each shard link gets its own seeded
:class:`repro.net.faults.FaultInjectingTransport`; the resilience layer
sits *above* the router, so a dropped scatter leg retries the logical
operation and the per-host dedup windows absorb the re-deliveries.  A
failing run dumps one fault schedule per shard to
``DATABLINDER_CHAOS_ARTIFACTS``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.analysis.snapshot import SnapshotAdversary
from repro.cloud.cluster import CloudCluster
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Range
from repro.core.registry import TacticRegistry
from repro.fhir.model import observation_schema
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.resilience import (
    BreakerConfig,
    ResilienceConfig,
    RetryPolicy,
)
from repro.shard.config import ShardConfig
from repro.shard.router import ShardedTransport
from repro.tactics import register_builtin_tactics

APP = "chaosshardapp"
SHARDS = 4

#: Same acceptance schedule as the single-zone chaos suite.
PLAN = FaultPlan(drop=0.10, duplicate=0.05)

CHAOS_SEED = int(os.environ.get("DATABLINDER_CHAOS_SEED", "1337"))

#: A scatter leg fails when any shard's frame drops, so logical retries
#: fire more often than in the single-zone suite; the budget and the
#: breaker threshold are sized for a 4-way fan-out of independent 10%
#: drops.
RESILIENCE = ResilienceConfig(
    retry=RetryPolicy(max_attempts=10, sleep=False),
    breaker=BreakerConfig(failure_threshold=50),
    seed=CHAOS_SEED,
)


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i < 4 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


def run_scenario(blinder: DataBlinder) -> dict:
    blinder.register_schema(observation_schema())
    observations = blinder.entities("observation")
    ids = [observations.insert(make_doc(i)) for i in range(8)]
    observations.update(ids[2], {"value": 20.0})
    assert observations.delete(ids[7])

    def identifiers(doc_ids) -> list[int]:
        return sorted(observations.get(d)["identifier"] for d in doc_ids)

    return {
        "count": observations.count(),
        "eq": identifiers(observations.find_ids(Eq("status", "final"))),
        "bool": identifiers(observations.find_ids(
            And([Eq("status", "final"), Eq("code", "glucose")])
        )),
        "range": identifiers(observations.find_ids(
            Range("effective", 1002, 1005)
        )),
        "avg": observations.average("value"),
    }


EXPECTED = {
    "count": 7,
    "eq": [0, 2, 4, 6],
    "bool": [0, 2],
    "range": [2, 3, 4, 5],
    "avg": pytest.approx(39.0 / 7.0),
}


@contextmanager
def sharded_chaos_deployment(seed: int):
    """A 4-shard cluster with an independent fault plan per shard link."""
    registry = fresh_registry()
    cluster = CloudCluster(SHARDS, registry=registry)
    faulty: dict[str, FaultInjectingTransport] = {}
    nodes = []
    for index, name in enumerate(cluster.names()):
        wrapper = FaultInjectingTransport(
            cluster.transport(name), PLAN, seed=seed + index
        )
        faulty[name] = wrapper
        nodes.append((name, wrapper))
    router = ShardedTransport(nodes, ShardConfig(parallel_fanout=False))
    try:
        yield cluster, router, faulty, registry
    finally:
        cluster.close()


@contextmanager
def schedule_artifacts(faulty: dict[str, FaultInjectingTransport]):
    """On failure, dump every shard's fault schedule for reproduction."""
    try:
        yield
    except BaseException:
        directory = os.environ.get("DATABLINDER_CHAOS_ARTIFACTS")
        if directory:
            path = Path(directory)
            path.mkdir(parents=True, exist_ok=True)
            for name, transport in faulty.items():
                (path / f"chaos-sharded-{name}-seed{transport.seed}.json"
                 ).write_text(transport.schedule_json())
        raise


def sharded_baseline() -> tuple[dict, int, int]:
    """Fault-free 4-shard run: results plus zone-total state counts."""
    registry = fresh_registry()
    cluster = CloudCluster(SHARDS, registry=registry)
    router = ShardedTransport(cluster.nodes(),
                              ShardConfig(parallel_fanout=False))
    blinder = DataBlinder(APP, router, registry=registry)
    results = run_scenario(blinder)
    documents = 0
    kv_entries = 0
    for name in cluster.names():
        report = SnapshotAdversary(cluster.zone(name), APP).report()
        documents += report.documents
        kv_entries += report.kv_entries
    cluster.close()
    return results, documents, kv_entries


class TestShardedChaos:
    def test_scenarios_survive_faults_on_every_shard_link(self):
        clean_results, clean_docs, clean_entries = sharded_baseline()
        assert clean_results == EXPECTED

        with sharded_chaos_deployment(CHAOS_SEED) as (
            cluster, router, faulty, registry
        ):
            with schedule_artifacts(faulty):
                blinder = DataBlinder(APP, router, registry=registry,
                                      resilience=RESILIENCE)
                results = run_scenario(blinder)
                assert results == clean_results

                # The run was genuinely chaotic: faults fired on the
                # shard links and the layer above the router absorbed
                # every lethal one.
                injected = sum(
                    t.fault_count() for t in faulty.values()
                )
                assert injected > 0
                stats = blinder.runtime.transport.stats()
                assert stats.faults_injected == injected
                assert stats.retries > 0

                # Zero duplicate applications across the whole ring:
                # zone-by-zone placement differs from the baseline (ids
                # are random), but the ring-wide totals must match the
                # fault-free run exactly.
                chaotic_docs = 0
                chaotic_entries = 0
                for name in cluster.names():
                    report = SnapshotAdversary(cluster.zone(name),
                                               APP).report()
                    chaotic_docs += report.documents
                    chaotic_entries += report.kv_entries
                assert chaotic_docs == clean_docs
                assert chaotic_entries == clean_entries

    def test_documents_stay_spread_under_chaos(self):
        with sharded_chaos_deployment(CHAOS_SEED + 17) as (
            cluster, router, faulty, registry
        ):
            with schedule_artifacts(faulty):
                blinder = DataBlinder(APP, router, registry=registry,
                                      resilience=RESILIENCE)
                blinder.register_schema(observation_schema())
                observations = blinder.entities("observation")
                for i in range(24):
                    observations.insert(make_doc(i))
                assert observations.count() == 24
                counts = [
                    len(cluster.zone(n).application_stores(APP)[1]
                        .all_ids())
                    for n in cluster.names()
                ]
                assert sum(counts) == 24
                assert max(counts) < 24
