"""Sharding equivalence: off, 1-node ring and 4-shard ring all answer
every query shape identically to the plain unsharded deployment."""

from __future__ import annotations

import pytest

from repro.cloud.cluster import CloudCluster
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Range
from repro.core.registry import TacticRegistry
from repro.fhir.model import observation_schema
from repro.net.transport import InProcTransport
from repro.shard.config import ShardConfig
from repro.shard.router import ShardedTransport
from repro.tactics import register_builtin_tactics

APP = "equivapp"


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i < 6 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


def run_workload(blinder: DataBlinder) -> dict:
    """Insert/update/delete plus every query shape, as comparable data.

    Documents get random ids per deployment, so results are projected
    onto the deterministic ``identifier`` field (and full content
    multisets) before comparison.
    """
    blinder.register_schema(observation_schema())
    observations = blinder.entities("observation")
    ids = [observations.insert(make_doc(i)) for i in range(12)]
    observations.update(ids[3], {"value": 30.0})
    assert observations.delete(ids[11])

    def identifiers(doc_ids) -> list[int]:
        return sorted(observations.get(d)["identifier"] for d in doc_ids)

    def content(doc_ids) -> list[tuple]:
        docs = []
        for doc_id in doc_ids:
            doc = dict(observations.get(doc_id))
            doc.pop("_id", None)
            docs.append(tuple(sorted(doc.items())))
        return sorted(docs)

    everything = observations.find_ids(Range("effective", 1000, 1020))
    return {
        "count": observations.count(),
        "eq": identifiers(observations.find_ids(Eq("status", "final"))),
        "bool": identifiers(observations.find_ids(
            And([Eq("status", "final"), Eq("code", "glucose")])
        )),
        "range": identifiers(observations.find_ids(
            Range("effective", 1002, 1008)
        )),
        "avg": observations.average("value"),
        "sorted": [
            doc["identifier"]
            for doc in observations.find_sorted("effective",
                                                descending=True, limit=5)
        ],
        "content": content(everything),
    }


@pytest.fixture(scope="module")
def unsharded_results() -> dict:
    registry = fresh_registry()
    cloud = CloudZone(registry)
    blinder = DataBlinder(APP, InProcTransport(cloud.host),
                          registry=registry)
    assert not isinstance(blinder.runtime.transport, ShardedTransport)
    return run_workload(blinder)


class TestEquivalence:
    def test_unsharded_baseline_is_sane(self, unsharded_results):
        assert unsharded_results["count"] == 11
        assert unsharded_results["eq"] == [0, 2, 4, 6, 8, 10]
        assert unsharded_results["bool"] == [0, 2, 4]
        assert unsharded_results["range"] == [2, 3, 4, 5, 6, 7, 8]
        assert unsharded_results["sorted"] == [10, 9, 8, 7, 6]
        assert len(unsharded_results["content"]) == 11

    def test_single_node_ring_matches_unsharded(self, unsharded_results):
        registry = fresh_registry()
        cluster = CloudCluster(1, registry=registry)
        router = ShardedTransport(cluster.nodes())
        blinder = DataBlinder(APP, router, registry=registry)
        try:
            assert run_workload(blinder) == unsharded_results
        finally:
            cluster.close()

    @pytest.mark.parametrize("parallel", [False, True])
    def test_four_shards_match_unsharded(self, unsharded_results,
                                         parallel):
        registry = fresh_registry()
        cluster = CloudCluster(4, registry=registry)
        router = ShardedTransport(
            cluster.nodes(), ShardConfig(parallel_fanout=parallel)
        )
        blinder = DataBlinder(APP, router, registry=registry)
        try:
            assert run_workload(blinder) == unsharded_results
            assert router.scatter_count() > 0
        finally:
            cluster.close()

    def test_four_shards_spread_the_data(self, unsharded_results):
        registry = fresh_registry()
        cluster = CloudCluster(4, registry=registry)
        blinder = DataBlinder(APP, ShardedTransport(cluster.nodes()),
                              registry=registry)
        try:
            results = run_workload(blinder)
            assert results == unsharded_results
            counts = [
                len(cluster.zone(n).application_stores(APP)[1].all_ids())
                for n in cluster.names()
            ]
            assert sum(counts) == 11
            # 12 random ids over 4 shards: no shard holds everything.
            assert max(counts) < 11
        finally:
            cluster.close()
