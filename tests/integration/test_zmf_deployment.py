"""Full-middleware deployment on the BIEX-ZMF variant.

The default selection prefers BIEX-2Lev (read-efficient); this suite
re-ranks the registry so ZMF wins, then runs the same correctness
checks — including the false-positive path that only ZMF can exercise —
proving the two variants are drop-in interchangeable behind the SPI.
"""

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq, evaluate_plain
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.net.transport import InProcTransport
from repro.tactics import register_builtin_tactics


@pytest.fixture()
def zmf_blinder():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    registry.unregister("biex-2lev")  # force the ZMF variant
    cloud = CloudZone(registry)
    blinder = DataBlinder("zmfapp", InProcTransport(cloud.host),
                          registry=registry)
    schema = Schema.define(
        "rec",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        code=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        city=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
    )
    reports = blinder.register_schema(schema)
    assert all(r.tactics == ["biex-zmf"] for r in reports)
    return blinder


class TestZmfDeployment:
    CORPUS = [
        {"status": "final", "code": "glucose", "city": "leuven"},
        {"status": "final", "code": "hr", "city": "ghent"},
        {"status": "prelim", "code": "glucose", "city": "leuven"},
        {"status": "final", "code": "glucose", "city": "ghent"},
        {"status": "amended", "code": "bp", "city": "leuven"},
    ]

    def load(self, blinder):
        records = blinder.entities("rec")
        ids = [records.insert(dict(doc)) for doc in self.CORPUS]
        return records, ids

    def expected(self, predicate, ids):
        return {
            doc_id for doc_id, doc in zip(ids, self.CORPUS)
            if evaluate_plain(predicate, doc)
        }

    @pytest.mark.parametrize("predicate_factory", [
        lambda: Eq("status", "final"),
        lambda: Eq("status", "final") & Eq("code", "glucose"),
        lambda: (Eq("status", "final") | Eq("status", "prelim"))
        & Eq("city", "leuven"),
        lambda: Eq("code", "glucose") & Eq("city", "ghent")
        & Eq("status", "final"),
        lambda: ~Eq("city", "leuven"),
    ])
    def test_queries_match_reference(self, zmf_blinder, predicate_factory):
        records, ids = self.load(zmf_blinder)
        predicate = predicate_factory()
        assert records.find_ids(predicate) == self.expected(predicate, ids)

    def test_update_and_delete(self, zmf_blinder):
        records, ids = self.load(zmf_blinder)
        records.update(ids[2], {"status": "final"})
        assert records.find_ids(
            Eq("status", "final") & Eq("code", "glucose")
        ) == {ids[0], ids[2], ids[3]}
        records.delete(ids[0])
        assert records.find_ids(
            Eq("status", "final") & Eq("code", "glucose")
        ) == {ids[2], ids[3]}

    def test_verification_trims_filter_false_positives(self, zmf_blinder):
        """Even if the Bloom filter reports a false positive, the
        gateway's plaintext verification keeps results exact.  We force
        the situation by saturating a tiny filter."""
        records, ids = self.load(zmf_blinder)
        # Saturate the filter by inserting many co-occurrence pairs.
        for i in range(40):
            records.insert({"status": f"s{i}", "code": f"c{i}",
                            "city": f"x{i}"})
        predicate = Eq("status", "final") & Eq("code", "bp")
        assert records.find_ids(predicate) == set()  # exact despite load
