"""Deployment modes: real TCP split, persistence across restarts,
simulated network costs."""

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.fhir.model import observation_schema
from repro.keys.keystore import KeyStore
from repro.net.latency import NetworkModel
from repro.net.tcp import TcpRpcServer, TcpTransport
from repro.net.transport import InProcTransport
from repro.stores.kv import KeyValueStore
from repro.tactics import register_builtin_tactics


def make_doc(i, **overrides):
    doc = {
        "id": f"f{i}", "identifier": i, "status": "final",
        "code": "glucose", "subject": "Pat One", "effective": 1000 + i,
        "issued": 2000 + i, "performer": "Dr", "value": float(i),
        "interpretation": "",
    }
    doc.update(overrides)
    return doc


class TestTcpDeployment:
    """Gateway and cloud on opposite ends of a real socket."""

    @pytest.fixture()
    def tcp_blinder(self, registry):
        cloud = CloudZone(registry)
        server = TcpRpcServer(cloud.host)
        server.serve_in_background()
        transport = TcpTransport(server.endpoint)
        blinder = DataBlinder("tcpapp", transport, registry=registry)
        yield blinder
        transport.close()
        server.shutdown()
        server.server_close()

    def test_full_flow_over_tcp(self, tcp_blinder):
        tcp_blinder.register_schema(observation_schema())
        observations = tcp_blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(5)]
        assert observations.count() == 5
        assert observations.find_ids(Eq("status", "final")) == set(ids)
        assert observations.average("value") == pytest.approx(2.0)
        observations.update(ids[0], {"value": 10.0})
        assert observations.average("value") == pytest.approx(4.0)
        assert observations.delete(ids[1])
        assert observations.count() == 4


class TestPersistenceAcrossRestarts:
    def test_cloud_zone_restart_preserves_search(self, registry,
                                                 tmp_path):
        keystore = KeyStore("restartapp")
        gateway_kv_dir = tmp_path / "gateway"
        cloud_dir = tmp_path / "cloud"

        cloud = CloudZone(registry, data_dir=cloud_dir)
        blinder = DataBlinder(
            "restartapp", InProcTransport(cloud.host), registry=registry,
            keystore=keystore, local_kv=KeyValueStore(gateway_kv_dir),
        )
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        doc_id = observations.insert(make_doc(1, subject="Durable Jane"))
        cloud.close()
        blinder.runtime.local_kv.close()

        # Fresh processes: same durable directories, same keystore.
        cloud2 = CloudZone(registry, data_dir=cloud_dir)
        blinder2 = DataBlinder(
            "restartapp", InProcTransport(cloud2.host), registry=registry,
            keystore=keystore, local_kv=KeyValueStore(gateway_kv_dir),
        )
        blinder2.restore_schema("observation")
        observations2 = blinder2.entities("observation")
        assert observations2.get(doc_id)["subject"] == "Durable Jane"
        assert observations2.find_ids(
            Eq("subject", "Durable Jane")
        ) == {doc_id}
        # DET search also survives (tokens are key-derived).
        assert observations2.find_ids(Eq("effective", 1001)) == {doc_id}


class TestTrueGatewayRestart:
    """A *fresh* KeyStore over the same HSM (nothing in process memory
    survives) must recover all keys: symmetric roots are HSM-derived and
    asymmetric keypairs are re-derived from HSM-rooted coins."""

    def test_fresh_keystore_recovers_everything(self, registry, tmp_path):
        from repro.keys.hsm import SimulatedHsm

        hsm = SimulatedHsm()
        cloud_dir = tmp_path / "cloud"
        gateway_dir = tmp_path / "gateway"

        cloud = CloudZone(registry, data_dir=cloud_dir)
        blinder = DataBlinder(
            "truerestart", InProcTransport(cloud.host), registry=registry,
            keystore=KeyStore("truerestart", hsm),
            local_kv=KeyValueStore(gateway_dir),
        )
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        doc_id = observations.insert(make_doc(1, subject="Phoenix",
                                              value=12.5))
        observations.insert(make_doc(2, subject="Phoenix", value=7.5))
        cloud.close()
        blinder.runtime.local_kv.close()
        del blinder

        # Full restart: new KeyStore instance, same HSM + durable dirs.
        cloud2 = CloudZone(registry, data_dir=cloud_dir)
        blinder2 = DataBlinder(
            "truerestart", InProcTransport(cloud2.host), registry=registry,
            keystore=KeyStore("truerestart", hsm),
            local_kv=KeyValueStore(gateway_dir),
        )
        blinder2.restore_schema("observation")
        observations2 = blinder2.entities("observation")
        # Body decryption (symmetric root recovered).
        assert observations2.get(doc_id)["value"] == 12.5
        # SSE search (Mitra keys + counters recovered).
        assert len(observations2.find_ids(Eq("subject", "Phoenix"))) == 2
        # DET search (deterministic tokens recovered).
        assert observations2.find_ids(Eq("effective", 1001)) == {doc_id}
        # Paillier aggregate over pre-restart ciphertexts (keypair
        # re-derived from HSM-rooted coins).
        assert observations2.average("value") == pytest.approx(10.0)

    def test_keypair_rederivation_is_stable(self):
        from repro.keys.hsm import SimulatedHsm

        hsm = SimulatedHsm()
        a = KeyStore("app", hsm)
        b = KeyStore("app", hsm)
        assert a.derive("f", "det") == b.derive("f", "det")
        assert a.paillier_keypair("f", bits=256).public.n == (
            b.paillier_keypair("f", bits=256).public.n
        )
        assert a.rsa_keypair("f", bits=512).n == (
            b.rsa_keypair("f", bits=512).n
        )

    def test_different_hsm_means_different_keys(self):
        from repro.keys.hsm import SimulatedHsm

        a = KeyStore("app", SimulatedHsm())
        b = KeyStore("app", SimulatedHsm())
        assert a.derive("f", "det") != b.derive("f", "det")


class TestNetworkModelDeployment:
    def test_latency_accounted_per_protocol_round(self, registry):
        cloud = CloudZone(registry)
        model = NetworkModel(one_way_latency_ms=1.0, sleep=False)
        transport = InProcTransport(cloud.host, model)
        blinder = DataBlinder("netapp", transport, registry=registry)
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        before = transport.stats()
        observations.insert(make_doc(1))
        after = transport.stats()
        rpcs = after.messages_sent - before.messages_sent
        # One insert touches several tactic services plus the doc store.
        assert rpcs >= 5
        delay = (after.simulated_delay_seconds
                 - before.simulated_delay_seconds)
        assert delay == pytest.approx(rpcs * 2 * 0.001, rel=1e-6)

    def test_traffic_meters_feed_performance_metrics(self, registry):
        cloud = CloudZone(registry)
        transport = InProcTransport(cloud.host)
        blinder = DataBlinder("meterapp", transport, registry=registry)
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        observations.insert(make_doc(1))
        stats = transport.stats()
        assert stats.bytes_sent > 500  # ciphertexts crossed the wire
        assert stats.bytes_received > 0


class TestMultiApplication:
    def test_two_applications_share_one_cloud(self, registry):
        cloud = CloudZone(registry)
        blinder_a = DataBlinder("app-a", InProcTransport(cloud.host),
                                registry=registry)
        blinder_b = DataBlinder("app-b", InProcTransport(cloud.host),
                                registry=registry)
        for blinder in (blinder_a, blinder_b):
            blinder.register_schema(observation_schema())
        obs_a = blinder_a.entities("observation")
        obs_b = blinder_b.entities("observation")
        id_a = obs_a.insert(make_doc(1, subject="Tenant A"))
        obs_b.insert(make_doc(2, subject="Tenant B"))
        assert obs_a.count() == 1
        assert obs_b.count() == 1
        assert obs_a.find_ids(Eq("subject", "Tenant A")) == {id_a}
        assert obs_a.find_ids(Eq("subject", "Tenant B")) == set()
