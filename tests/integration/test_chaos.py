"""Chaos suite: end-to-end correctness under injected network faults.

Runs the full scenario matrix (insert / equality / boolean / range /
aggregate, plus update and delete) through a seeded
:class:`repro.net.faults.FaultInjectingTransport` over both the InProc
and the real TCP transport, and asserts the results are identical to a
fault-free baseline — with zero duplicate index entries, thanks to the
retry layer's idempotency keys and the cloud's dedup window.

The seed comes from ``DATABLINDER_CHAOS_SEED`` (CI runs several); a
failing run dumps its fault schedule to ``DATABLINDER_CHAOS_ARTIFACTS``
for reproduction.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.snapshot import SnapshotAdversary, zone_fingerprint
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Range
from repro.core.registry import TacticRegistry
from repro.errors import TransportError
from repro.fhir.model import observation_schema
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.multicloud import MultiCloudTransport
from repro.net.resilience import (
    MUTATING_METHODS,
    BreakerConfig,
    ResilienceConfig,
    ResilientTransport,
    RetryPolicy,
)
from repro.net.rpc import Request
from repro.net.tcp import TcpRpcServer, TcpTransport
from repro.net.transport import InProcTransport, Transport
from repro.tactics import register_builtin_tactics

APP = "chaosapp"

#: The acceptance-criteria schedule: 10% dropped frames, 5% duplicated.
PLAN = FaultPlan(drop=0.10, duplicate=0.05)

CHAOS_SEED = int(os.environ.get("DATABLINDER_CHAOS_SEED", "1337"))

#: Enough attempts that 10% independent drops practically never exhaust
#: the budget (p ~ 1e-8 per call); breaker high enough that a chaos
#: run's scattered faults do not open a healthy endpoint's circuit.
RESILIENCE = ResilienceConfig(
    retry=RetryPolicy(max_attempts=8, sleep=False),
    breaker=BreakerConfig(failure_threshold=10),
    seed=CHAOS_SEED,
)


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i < 4 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


def run_scenario(blinder: DataBlinder) -> dict:
    """Every query shape the middleware supports, behind faults."""
    blinder.register_schema(observation_schema())
    observations = blinder.entities("observation")
    ids = [observations.insert(make_doc(i)) for i in range(8)]
    observations.update(ids[2], {"value": 20.0})
    assert observations.delete(ids[7])

    def identifiers(doc_ids) -> list[int]:
        return sorted(observations.get(d)["identifier"] for d in doc_ids)

    return {
        "count": observations.count(),
        "eq": identifiers(observations.find_ids(Eq("status", "final"))),
        "bool": identifiers(observations.find_ids(
            And([Eq("status", "final"), Eq("code", "glucose")])
        )),
        "range": identifiers(observations.find_ids(
            Range("effective", 1002, 1005)
        )),
        "avg": observations.average("value"),
    }


EXPECTED = {
    "count": 7,
    "eq": [0, 2, 4, 6],
    "bool": [0, 2],
    "range": [2, 3, 4, 5],
    "avg": pytest.approx(39.0 / 7.0),
}


@contextmanager
def chaos_deployment(kind: str, plan: FaultPlan, seed: int):
    """A CloudZone plus a fault-wrapped transport of the given kind."""
    registry = fresh_registry()
    cloud = CloudZone(registry)
    server = None
    if kind == "tcp":
        server = TcpRpcServer(cloud.host)
        server.serve_in_background()
        inner: Transport = TcpTransport(server.endpoint)
    else:
        inner = InProcTransport(cloud.host)
    faulty = FaultInjectingTransport(inner, plan, seed=seed)
    try:
        yield cloud, faulty, registry
    finally:
        faulty.close()
        if server is not None:
            server.shutdown()
            server.server_close()


@contextmanager
def schedule_artifact(faulty: FaultInjectingTransport, label: str):
    """Dump the fault schedule for reproduction when the body fails."""
    try:
        yield
    except BaseException:
        directory = os.environ.get("DATABLINDER_CHAOS_ARTIFACTS")
        if directory:
            path = Path(directory)
            path.mkdir(parents=True, exist_ok=True)
            (path / f"{label}-seed{faulty.seed}.json").write_text(
                faulty.schedule_json()
            )
        raise


def baseline() -> tuple[dict, CloudZone]:
    registry = fresh_registry()
    cloud = CloudZone(registry)
    blinder = DataBlinder(APP, InProcTransport(cloud.host),
                          registry=registry)
    return run_scenario(blinder), cloud


class TestChaosScenarios:
    @pytest.mark.parametrize("kind", ["inproc", "tcp"])
    def test_scenarios_survive_drop_and_duplicate_faults(self, kind):
        expected_results, baseline_cloud = baseline()
        assert expected_results == EXPECTED

        with chaos_deployment(kind, PLAN, CHAOS_SEED) as (
            cloud, faulty, registry
        ):
            with schedule_artifact(faulty, f"chaos-{kind}"):
                blinder = DataBlinder(APP, faulty, registry=registry,
                                      resilience=RESILIENCE)
                results = run_scenario(blinder)
                assert results == expected_results

                # The run was genuinely chaotic and the resilience layer
                # is what absorbed it: every lethal fault was retried.
                stats = blinder.runtime.transport.stats()
                assert faulty.fault_count() > 0
                assert stats.faults_injected == faulty.fault_count()
                lethal = faulty.fault_count("drop", "corrupt",
                                            "disconnect")
                assert stats.retries >= lethal
                assert stats.breaker_opens == 0

                # Zero duplicate applications: the chaotic zone holds
                # exactly as many documents and index entries as the
                # fault-free zone, despite duplicated/re-sent frames.
                clean = SnapshotAdversary(baseline_cloud, APP).report()
                chaotic = SnapshotAdversary(cloud, APP).report()
                assert chaotic.documents == clean.documents
                assert chaotic.kv_entries == clean.kv_entries

    def test_same_schedule_fails_without_retries(self):
        """Ablation: retries off, same plan+seed — the chaos bites."""
        no_retry = ResilienceConfig(
            retry=RetryPolicy.no_retry(),
            breaker=BreakerConfig(failure_threshold=10 ** 9),
        )
        with chaos_deployment("inproc", PLAN, CHAOS_SEED) as (
            _, faulty, registry
        ):
            try:
                blinder = DataBlinder(APP, faulty, registry=registry,
                                      resilience=no_retry)
                run_scenario(blinder)
            except TransportError:
                pass  # expected: a drop surfaced as a typed failure
            else:
                # Only tenable if this seed's schedule happened to fire
                # no lethal fault at all during the shorter run.
                assert faulty.fault_count(
                    "drop", "corrupt", "disconnect"
                ) == 0

    def test_retries_disabled_fails_deterministically(self):
        """Canonical hard case: every delivery drops, single attempt."""
        with chaos_deployment("inproc", FaultPlan(drop=1.0), 1337) as (
            _, faulty, registry
        ):
            with pytest.raises(TransportError):
                DataBlinder(
                    APP, faulty, registry=registry,
                    resilience=ResilienceConfig(
                        retry=RetryPolicy.no_retry()
                    ),
                )


class TestMultiCloudFailoverEndToEnd:
    def test_open_primary_fails_over_and_stays_correct(self):
        registry = fresh_registry()
        cloud = CloudZone(registry)
        primary = ResilientTransport(
            InProcTransport(cloud.host), RetryPolicy.no_retry(),
            breaker=BreakerConfig(failure_threshold=1,
                                  reset_timeout=10 ** 9),
            seed=0,
        )
        secondary = InProcTransport(cloud.host)
        transport = MultiCloudTransport([
            (lambda service: True, primary, secondary),
        ])
        blinder = DataBlinder(APP, transport, registry=registry)
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(3)]

        # Provider outage: the primary's breaker opens, so every call
        # for its routes fails over to the secondary.
        primary.breaker.record_failure()
        ids += [observations.insert(make_doc(i)) for i in range(3, 6)]
        assert observations.count() == 6
        assert sorted(
            observations.get(d)["identifier"]
            for d in observations.find_ids(Eq("status", "final"))
        ) == [0, 2, 4]
        assert observations.average("value") == pytest.approx(2.5)
        assert transport.stats().failovers > 0


class RecordingTransport(Transport):
    """Captures every request the resilience layer puts on the wire."""

    def __init__(self, inner: Transport):
        self._inner = inner
        self.requests: list[Request] = []

    def call(self, service, method, **kwargs):
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request):
        self.requests.append(request)
        return self._inner.call_request(request)

    def call_batch(self, requests):
        self.requests.extend(requests)
        return self._inner.call_batch(requests)

    def stats(self):
        return self._inner.stats()


_EXACTLY_ONCE: tuple | None = None


def exactly_once_state() -> tuple[CloudZone, list[Request],
                                  list[Request], str]:
    """One deployment, its recorded keyed writes, and its fingerprint.

    Built once and shared across hypothesis examples: replays must not
    change the zone, so sharing is exactly the property under test.
    """
    global _EXACTLY_ONCE
    if _EXACTLY_ONCE is None:
        registry = fresh_registry()
        cloud = CloudZone(registry)
        recording = RecordingTransport(InProcTransport(cloud.host))
        blinder = DataBlinder("idemapp", recording, registry=registry,
                              resilience=ResilienceConfig())
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(6)]
        observations.update(ids[0], {"value": 9.0})
        observations.delete(ids[5])
        keyed = [r for r in recording.requests if r.idem]
        unkeyed_writes = [
            r for r in recording.requests
            if r.method in MUTATING_METHODS and not r.idem
        ]
        _EXACTLY_ONCE = (cloud, keyed, unkeyed_writes,
                         zone_fingerprint(cloud, "idemapp"))
    return _EXACTLY_ONCE


class TestIdempotencyProperties:
    def test_every_write_on_the_wire_carries_a_key(self):
        _, keyed, unkeyed_writes, _ = exactly_once_state()
        assert keyed, "scenario produced no keyed writes"
        assert unkeyed_writes == []

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_replaying_any_write_prefix_is_byte_identical(self, data):
        """Re-delivering any prefix of the write history, in any order,
        leaves docstore and every secure index byte-identical."""
        cloud, keyed, _, fingerprint = exactly_once_state()
        prefix = data.draw(st.integers(min_value=0,
                                       max_value=len(keyed)))
        replay = data.draw(st.permutations(keyed[:prefix]))
        for request in replay:
            response = cloud.host.dispatch(request)
            assert response.ok or response.error_type  # well-formed
        assert zone_fingerprint(cloud, "idemapp") == fingerprint

    def test_replay_hits_the_dedup_window(self):
        cloud, keyed, _, _ = exactly_once_state()
        before = cloud.host.dedup_stats()["hits"]
        for request in keyed:
            cloud.host.dispatch(request)
        after = cloud.host.dedup_stats()["hits"]
        assert after - before == len(keyed)
