"""Full-text search over non-sensitive fields (the Elasticsearch role)."""

import pytest

from repro.core.schema import FieldAnnotation, Schema


@pytest.fixture()
def notes(blinder):
    schema = Schema.define(
        "note",
        title="string",                  # plaintext: text-searchable
        summary="string",                # plaintext: text-searchable
        author=("string", FieldAnnotation.parse("C2", "I,EQ")),
        body=("string", FieldAnnotation.parse("C1", "I")),
    )
    blinder.register_schema(schema)
    entities = blinder.entities("note")
    entities.insert({
        "title": "Quarterly budget review",
        "summary": "expenses exceeded the projected budget",
        "author": "alice", "body": "secret deliberations",
    })
    entities.insert({
        "title": "Security incident report",
        "summary": "credential stuffing attack on the login endpoint",
        "author": "bob", "body": "secret indicators of compromise",
    })
    entities.insert({
        "title": "Budget planning kickoff",
        "summary": "next year planning for the security budget",
        "author": "alice", "body": "secret allocations",
    })
    return entities


class TestTextSearch:
    def test_ranked_search(self, notes):
        results = notes.text_search("budget")
        assert len(results) == 2 or len(results) == 3
        assert all("budget" in (r["title"] + r["summary"]).lower()
                   for r in results)

    def test_results_are_decrypted_documents(self, notes):
        results = notes.text_search("incident")
        assert len(results) == 1
        # Sensitive fields come back decrypted via the body.
        assert results[0]["author"] == "bob"
        assert results[0]["body"].startswith("secret")

    def test_conjunctive_mode(self, notes):
        results = notes.text_search("security budget", require_all=True)
        assert len(results) == 1
        assert results[0]["title"] == "Budget planning kickoff"

    def test_limit(self, notes):
        assert len(notes.text_search("budget", limit=1)) == 1

    def test_no_match(self, notes):
        assert notes.text_search("unicorns") == []

    def test_sensitive_fields_are_not_text_indexed(self, notes, cloud):
        """The word 'secret' only occurs in a C1-protected field; text
        search must not find it — it never reached the index."""
        assert notes.text_search("secret") == []
        assert notes.text_search("deliberations") == []

    def test_index_follows_updates_and_deletes(self, notes):
        doc = notes.text_search("incident")[0]
        notes.update(doc["_id"], {"title": "Postmortem writeup"})
        assert notes.text_search("incident") == []   # old title gone
        assert notes.text_search("stuffing") != []   # summary remains
        assert notes.text_search("postmortem")[0]["_id"] == doc["_id"]
        notes.delete(doc["_id"])
        assert notes.text_search("postmortem") == []
        assert notes.text_search("stuffing") == []
