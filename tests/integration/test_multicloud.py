"""Multi-cloud deployment: documents and indexes on different providers."""

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.errors import TransportError
from repro.fhir.model import observation_schema
from repro.net.multicloud import (
    MultiCloudTransport,
    prefix_rule,
    split_documents_and_indexes,
)
from repro.net.transport import InProcTransport


def make_doc(i, **overrides):
    doc = {
        "id": f"f{i}", "identifier": i, "status": "final",
        "code": "glucose", "subject": "Split Pat", "effective": 1000 + i,
        "issued": 2000 + i, "performer": "Dr", "value": float(i),
        "interpretation": "",
    }
    doc.update(overrides)
    return doc


@pytest.fixture()
def split_deployment(registry):
    provider_a = CloudZone(registry)   # documents
    provider_b = CloudZone(registry)   # indexes
    transport = split_documents_and_indexes(
        InProcTransport(provider_a.host), InProcTransport(provider_b.host)
    )
    blinder = DataBlinder("splitapp", transport, registry=registry)
    blinder.register_schema(observation_schema())
    return blinder, provider_a, provider_b


class TestSplitDeployment:
    def test_full_functionality_across_providers(self, split_deployment):
        blinder, _, _ = split_deployment
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(4)]
        assert observations.count() == 4
        assert observations.find_ids(Eq("status", "final")) == set(ids)
        assert observations.find_ids(Eq("subject", "Split Pat")) == set(ids)
        assert observations.average("value") == pytest.approx(1.5)
        observations.update(ids[0], {"value": 9.0})
        assert observations.average("value") == pytest.approx(3.75)
        assert observations.delete(ids[1])
        assert observations.count() == 3

    def test_document_provider_holds_no_indexes(self, split_deployment):
        blinder, provider_a, provider_b = split_deployment
        observations = blinder.entities("observation")
        observations.insert(make_doc(1))

        kv_a, docs_a = provider_a.application_stores("splitapp")
        kv_b, docs_b = provider_b.application_stores("splitapp")
        # Provider A: documents only, zero index entries.
        assert len(docs_a) == 1
        stats_a = kv_a.stats()
        assert stats_a["map_entries"] == 0
        assert stats_a["sets"] == 0
        # Provider B: indexes only, zero documents.
        assert len(docs_b) == 0
        stats_b = kv_b.stats()
        assert stats_b["map_entries"] + stats_b["set_members"] > 0

    def test_index_provider_alone_cannot_run_snapshot_attacks_on_bodies(
            self, split_deployment):
        """The index provider sees tokens but no ciphertext objects; the
        document provider sees ciphertexts but no tokens — the combined
        snapshot the attacks need requires collusion."""
        blinder, provider_a, provider_b = split_deployment
        observations = blinder.entities("observation")
        observations.insert(make_doc(1))

        from repro.analysis.snapshot import SnapshotAdversary

        adversary_b = SnapshotAdversary(provider_b, "splitapp")
        histogram = adversary_b.det_token_histogram("effective")
        assert histogram  # the index provider does see DET structure...
        assert adversary_b.report().documents == 0  # ...but no documents

        adversary_a = SnapshotAdversary(provider_a, "splitapp")
        assert adversary_a.det_token_histogram("effective") == {}
        assert adversary_a.report().documents == 1


class TestRouter:
    def test_unroutable_service_rejected(self, registry):
        zone = CloudZone(registry)
        transport = MultiCloudTransport([
            (prefix_rule("docs/"), InProcTransport(zone.host)),
        ])
        with pytest.raises(TransportError):
            transport.call("tactic/a/f/det", "setup")

    def test_empty_routes_rejected(self):
        with pytest.raises(TransportError):
            MultiCloudTransport([])

    def test_stats_merge_providers(self, split_deployment):
        blinder, _, _ = split_deployment
        observations = blinder.entities("observation")
        observations.insert(make_doc(1))
        stats = blinder.runtime.transport.stats()
        assert stats.messages_sent > 5
        assert stats.bytes_sent > 0

    def test_first_matching_rule_wins(self, registry):
        zone_a, zone_b = CloudZone(registry), CloudZone(registry)
        ta, tb = InProcTransport(zone_a.host), InProcTransport(zone_b.host)
        transport = MultiCloudTransport([
            (prefix_rule("docs/special"), ta),
            (prefix_rule("docs/"), tb),
            (lambda s: True, tb),
        ])
        transport.call("admin", "provision_application",
                       application="special")
        transport.call("admin", "provision_application", application="x")
        transport.call("docs/special", "insert", document={
            "_id": "d", "schema": "s", "body": b"", "plain": {},
        })
        _, docs_a = zone_a.application_stores("special")
        _, docs_b = zone_b.application_stores("special")
        assert len(docs_a) == 1 and len(docs_b) == 0
