"""End-to-end: the full healthcare use case through the public API."""

import pytest

from repro.core.query import AggregateQuery, Eq, Range
from repro.errors import DocumentNotFound, RemoteError
from repro.fhir.generator import MedicalDataGenerator
from repro.fhir.model import (
    medication_dispense_schema,
    observation_schema,
)
from repro.spi.descriptors import Aggregate


@pytest.fixture()
def deployed(blinder):
    blinder.register_schema(observation_schema())
    blinder.register_schema(medication_dispense_schema())
    generator = MedicalDataGenerator(2019)
    dataset = generator.dataset(patients=8, observations_per_patient=6,
                                dispenses_per_patient=4)
    observations = blinder.entities("observation")
    dispenses = blinder.entities("medication_dispense")
    for observation in dataset.observations:
        observations.insert(observation.to_document())
    for dispense in dataset.dispenses:
        dispenses.insert(dispense.to_document())
    return blinder, dataset


class TestMotivatingQueries:
    """The paper's three motivating healthcare queries (§1)."""

    def test_boolean_search(self, deployed):
        """Find patients with a particular condition admitted at a
        particular time — a boolean cross-field search."""
        blinder, dataset = deployed
        observations = blinder.entities("observation")
        target = dataset.observations[0]
        results = observations.find(
            Eq("code", target.code) & Eq("status", target.status)
        )
        expected = {
            o.id for o in dataset.observations
            if o.code == target.code and o.status == target.status
        }
        assert {r["id"] for r in results} == expected

    def test_aggregate_average(self, deployed):
        """Calculate the average measurement value of a patient."""
        blinder, dataset = deployed
        observations = blinder.entities("observation")
        subject = dataset.observations[0].subject
        expected_values = [o.value for o in dataset.observations
                           if o.subject == subject]
        measured = observations.average("value",
                                        where=Eq("subject", subject))
        assert measured == pytest.approx(
            sum(expected_values) / len(expected_values), rel=1e-6
        )

    def test_aggregated_search(self, deployed):
        """Number of times nurses refilled a medication for a patient."""
        blinder, dataset = deployed
        dispenses = blinder.entities("medication_dispense")
        target = dataset.dispenses[0]
        predicate = (Eq("patient", target.patient)
                     & Eq("medication", target.medication))
        count = dispenses.aggregate(
            AggregateQuery(Aggregate.COUNT, "quantity", where=predicate)
        )
        expected = sum(
            1 for d in dataset.dispenses
            if d.patient == target.patient
            and d.medication == target.medication
        )
        assert count == expected

    def test_quantity_sum(self, deployed):
        blinder, dataset = deployed
        dispenses = blinder.entities("medication_dispense")
        target = dataset.dispenses[0].medication
        expected = sum(d.quantity for d in dataset.dispenses
                       if d.medication == target)
        assert dispenses.sum(
            "quantity", where=Eq("medication", target)
        ) == pytest.approx(expected)

    def test_date_range_query(self, deployed):
        blinder, dataset = deployed
        observations = blinder.entities("observation")
        times = sorted(o.effective for o in dataset.observations)
        low, high = times[len(times) // 4], times[3 * len(times) // 4]
        results = observations.find(Range("effective", low, high))
        expected = {o.id for o in dataset.observations
                    if low <= o.effective <= high}
        assert {r["id"] for r in results} == expected


class TestLifecycles:
    def test_full_document_lifecycle(self, deployed):
        blinder, _ = deployed
        observations = blinder.entities("observation")
        doc_id = observations.insert({
            "id": "fx", "identifier": 999, "status": "registered",
            "code": "bmi", "subject": "Lifecycle Test",
            "effective": 1500000000, "issued": 1500003600,
            "performer": "Dr. Smith", "value": 22.5,
            "interpretation": "normal",
        })
        assert observations.get(doc_id)["value"] == 22.5

        observations.update(doc_id, {"status": "final", "value": 23.0})
        found = observations.find(
            Eq("subject", "Lifecycle Test") & Eq("status", "final")
        )
        assert len(found) == 1 and found[0]["value"] == 23.0

        assert observations.delete(doc_id)
        with pytest.raises((DocumentNotFound, RemoteError)):
            observations.get(doc_id)

    def test_schemas_are_isolated(self, deployed):
        blinder, dataset = deployed
        observations = blinder.entities("observation")
        dispenses = blinder.entities("medication_dispense")
        # Both schemas have a `performer` field; ensure no cross-talk.
        target = dataset.dispenses[0].performer
        dispense_hits = dispenses.find(Eq("performer", target))
        assert all("medication" in d for d in dispense_hits)
        assert observations.count() == len(dataset.observations)


class TestUntrustedZoneSeesNoPlaintext:
    def test_cloud_stores_contain_no_sensitive_values(self, blinder,
                                                      cloud):
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        secret_subject = "Extremely Unique Patient Name 42"
        observations.insert({
            "id": "f1", "identifier": 1, "status": "final",
            "code": "glucose", "subject": secret_subject,
            "effective": 1359966610, "issued": 1362407410,
            "performer": "Secret Performer 99", "value": 6.3,
            "interpretation": "high",
        })
        kv, documents = cloud.application_stores("testapp")
        blob = bytearray()
        for key in kv.keys():
            blob += key + (kv.get(key) or b"")
        for name, bucket in kv._maps.items():
            blob += name
            for k, v in bucket.items():
                blob += k + v
        for name, members in kv._sets.items():
            blob += name + b"".join(members)
        import json

        for document in documents.iter_documents():
            blob += json.dumps(
                {k: v for k, v in document.items() if k != "body"},
                default=str,
            ).encode()
            blob += document["body"]
        assert secret_subject.encode() not in bytes(blob)
        assert b"Secret Performer 99" not in bytes(blob)
        assert b"glucose" not in bytes(blob)

    def test_queries_send_no_plaintext(self, blinder, transport, cloud):
        """Trapdoors, not values, cross the zone boundary for SSE fields."""
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        observations.insert({
            "id": "f1", "identifier": 1, "status": "final",
            "code": "glucose", "subject": "Wiretap Target",
            "effective": 1, "issued": 2, "performer": "P", "value": 1.0,
            "interpretation": "",
        })
        # Capture frames by wrapping the transport's host dispatch.
        captured = []
        original = transport._host.dispatch

        def spy(request):
            captured.append(repr(request.kwargs))
            return original(request)

        transport._host.dispatch = spy
        try:
            observations.find(Eq("subject", "Wiretap Target"))
        finally:
            transport._host.dispatch = original
        assert captured
        assert not any("Wiretap Target" in frame for frame in captured)
