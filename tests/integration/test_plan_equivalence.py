"""Plan-vs-seed equivalence: every read operation answered through the
query planner must match the pre-planner executor read path byte for
byte.  ``LegacyReadPath`` is a verbatim port of the seed's monolithic
``SchemaExecutor`` read methods, kept as the oracle."""

import pytest

from repro.cloud.server import CloudZone
from repro.core.legacy import LegacyReadPath
from repro.core.middleware import DataBlinder
from repro.core.query import AggregateQuery, And, Eq, Not, Or, Range
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport
from repro.spi.descriptors import Aggregate
from repro.tactics import register_builtin_tactics


def build(pipeline=None):
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    blinder = DataBlinder("equiv", InProcTransport(cloud.host),
                          registry=registry, pipeline=pipeline)
    schema = Schema.define(
        "obs",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        kind=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        patient=("string", FieldAnnotation.parse("C2", "I,EQ")),
        effective=("int", FieldAnnotation.parse("C5", "I,EQ,RG", "min,max")),
        value=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
        note="string",
    )
    blinder.register_schema(schema)
    entities = blinder.entities("obs")
    entities.insert_many([
        {
            "status": ["final", "draft", "amended"][i % 3],
            "kind": ["hr", "bp"][i % 2],
            "patient": f"p{i % 5}",
            "effective": i * 3 % 50,
            "value": float(i % 7),
            "note": f"note {i}",
        }
        for i in range(36)
    ])
    executor = blinder._executor("obs")
    return executor, entities, blinder


PREDICATES = [
    None,
    Eq("status", "final"),
    Eq("patient", "p2"),
    Eq("note", "note 4"),          # plaintext field
    Eq("status", "missing-value"),
    Range("effective", 10, 30),
    Range("effective", low=40),
    Range("effective", high=5),
    And([Eq("status", "final"), Eq("kind", "hr")]),
    And([Eq("status", "final"), Range("effective", 0, 25)]),
    Or([Eq("status", "draft"), Eq("patient", "p1")]),
    Or([Range("effective", 0, 10), Range("effective", 40, 50)]),
    Not(Eq("status", "final")),
    And([Or([Eq("kind", "hr"), Eq("kind", "bp")]),
         Not(Range("effective", 20, 50))]),
]


def doc_key(doc):
    return doc["_id"] if "_id" in doc else tuple(sorted(doc.items()))


@pytest.fixture(scope="module", params=[
    pytest.param(None, id="defaults"),
    pytest.param(
        PipelineConfig(batch_writes=True, fanout_workers=4,
                       prefetch=True, fetch_chunk=7),
        id="pipelined",
    ),
])
def deployment(request):
    return build(request.param)


class TestReadEquivalence:
    @pytest.mark.parametrize("idx", range(len(PREDICATES)))
    def test_find_matches_seed_path(self, deployment, idx):
        executor, entities, _ = deployment
        predicate = PREDICATES[idx]
        legacy = LegacyReadPath(executor)
        new = entities.find(predicate)
        old = legacy.find(predicate)
        assert sorted(map(doc_key, new)) == sorted(map(doc_key, old))

    @pytest.mark.parametrize("idx", range(len(PREDICATES)))
    def test_find_ids_and_count_match_seed_path(self, deployment, idx):
        executor, entities, _ = deployment
        predicate = PREDICATES[idx]
        legacy = LegacyReadPath(executor)
        assert entities.find_ids(predicate) == legacy.find_ids(predicate)
        assert entities.count(predicate) == legacy.count(predicate)

    def test_limit_matches_seed_path(self, deployment):
        executor, entities, _ = deployment
        legacy = LegacyReadPath(executor)
        for limit in (1, 5, 100):
            new = entities.find(Eq("kind", "hr"), limit=limit)
            old = legacy.find(Eq("kind", "hr"), limit=limit)
            assert len(new) == len(old)
            assert {doc_key(d) for d in new} <= {
                doc_key(d) for d in legacy.find(Eq("kind", "hr"))
            }

    def test_unverified_find_matches_seed_path(self, deployment):
        executor, entities, _ = deployment
        legacy = LegacyReadPath(executor)
        predicate = Range("effective", 12, 33)
        new = entities.find(predicate, verify=False)
        old = legacy.find(predicate, verify=False)
        assert sorted(map(doc_key, new)) == sorted(map(doc_key, old))

    @pytest.mark.parametrize("function,field,where", [
        (Aggregate.SUM, "value", None),
        (Aggregate.AVG, "value", Eq("status", "final")),
        (Aggregate.COUNT, "value", Range("effective", 5, 35)),
        (Aggregate.MIN, "effective", None),
        (Aggregate.MAX, "effective", Eq("kind", "bp")),
        (Aggregate.MIN, "effective", Eq("status", "missing-value")),
    ])
    def test_aggregates_match_seed_path(self, deployment, function,
                                        field, where):
        executor, entities, _ = deployment
        legacy = LegacyReadPath(executor)
        query = AggregateQuery(function, field, where)
        assert entities.aggregate(query) == pytest.approx(
            legacy.aggregate(query)
        )

    @pytest.mark.parametrize("limit,descending", [
        (None, False), (None, True), (10, False), (3, True),
    ])
    def test_find_sorted_matches_seed_path(self, deployment, limit,
                                           descending):
        executor, entities, _ = deployment
        legacy = LegacyReadPath(executor)
        new = entities.find_sorted("effective", limit=limit,
                                   descending=descending)
        old = legacy.find_sorted("effective", limit=limit,
                                 descending=descending)
        assert [d["effective"] for d in new] == [
            d["effective"] for d in old
        ]
        assert len(new) == len(old)

    def test_equivalence_survives_mutation(self, deployment):
        executor, entities, _ = deployment
        legacy = LegacyReadPath(executor)
        doc_id = entities.insert({
            "status": "final", "kind": "hr", "patient": "p9",
            "effective": 49, "value": 2.5, "note": "mutant",
        })
        entities.update(doc_id, {"status": "amended", "effective": 48})
        for predicate in (Eq("status", "amended"), Eq("patient", "p9"),
                          Range("effective", 45, 49)):
            assert entities.find_ids(predicate) == legacy.find_ids(
                predicate
            )
        entities.delete(doc_id)
        assert entities.find_ids(Eq("patient", "p9")) == legacy.find_ids(
            Eq("patient", "p9")
        )
