"""Schema migration: re-planning and re-indexing a live corpus.

The crypto-agility lifecycle beyond plugging tactics in: retiring a
scheme from the registry or tightening a field's annotation, then
migrating the stored documents to the new configuration without losing
data or searchability.
"""

import pytest

from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.errors import SchemaError
from repro.net.transport import InProcTransport
from repro.tactics import register_builtin_tactics


def schema_v1():
    return Schema.define(
        "record",
        id="string",
        code=("string", FieldAnnotation.parse("C4", "I,EQ")),   # -> DET
        amount=("float", FieldAnnotation.parse("C4", "I,EQ", "sum")),
    )


def schema_v2_tightened():
    # After a risk review: code may no longer leak equalities at rest.
    return Schema.define(
        "record",
        id="string",
        code=("string", FieldAnnotation.parse("C2", "I,EQ")),   # -> Mitra
        amount=("float", FieldAnnotation.parse("C4", "I,EQ", "sum")),
    )


@pytest.fixture()
def deployment(registry, cloud, transport):
    blinder = DataBlinder("migrapp", transport, registry=registry)
    blinder.register_schema(schema_v1())
    records = blinder.entities("record")
    ids = [
        records.insert({"id": f"r{i}", "code": code, "amount": float(i)})
        for i, code in enumerate(["a", "b", "a", "c", "a"])
    ]
    return blinder, records, ids


class TestAnnotationMigration:
    def test_tightened_annotation_switches_tactic(self, deployment):
        blinder, records, ids = deployment
        assert blinder._executor("record").plans["code"].roles["eq"] == "det"

        reports = blinder.migrate_schema("record", schema_v2_tightened())
        plan = blinder._executor("record").plans["code"]
        assert plan.roles["eq"] == "mitra"
        assert all(r.compliant for r in reports)

        # Same data, same ids, searchable under the new tactic.
        records = blinder.entities("record")
        assert records.count() == 5
        assert records.find_ids(Eq("code", "a")) == {ids[0], ids[2],
                                                     ids[4]}
        assert records.get(ids[1])["amount"] == 1.0
        # Aggregates still work (Paillier state re-indexed).
        assert records.sum("amount") == pytest.approx(10.0)

    def test_old_index_is_emptied(self, deployment, cloud):
        blinder, records, ids = deployment
        blinder.migrate_schema("record", schema_v2_tightened())
        # The retired DET instance's token sets hold no live ids.
        det_cloud = cloud.tactic_instance("migrapp", "record.code", "det")
        live = set()
        for name in det_cloud.ctx.kv._sets:  # noqa: SLF001
            if name.startswith(b"tactic/migrapp/record.code/det/token"):
                live |= det_cloud.ctx.kv.set_members(name)
        assert live == set()

    def test_migration_is_idempotent(self, deployment):
        blinder, records, ids = deployment
        blinder.migrate_schema("record", schema_v2_tightened())
        blinder.migrate_schema("record")  # re-plan with same config
        records = blinder.entities("record")
        assert records.count() == 5
        assert len(records.find_ids(Eq("code", "a"))) == 3

    def test_rename_rejected(self, deployment):
        blinder, _, _ = deployment
        other = Schema.define(
            "renamed", code=("string", FieldAnnotation.parse("C2", "I,EQ"))
        )
        with pytest.raises(SchemaError):
            blinder.migrate_schema("record", other)


class TestRegistryMigration:
    def test_retiring_a_scheme_then_migrating(self, cloud):
        registry = TacticRegistry()
        register_builtin_tactics(registry)
        blinder = DataBlinder("retireapp", InProcTransport(cloud.host),
                              registry=registry)
        blinder.register_schema(schema_v1())
        records = blinder.entities("record")
        ids = [records.insert({"id": f"r{i}", "code": "x",
                               "amount": 1.0}) for i in range(3)]

        # DET is deemed broken and retired from the registry; migrate.
        registry.unregister("det")
        reports = blinder.migrate_schema("record")
        new_tactic = blinder._executor("record").plans["code"].roles["eq"]
        assert new_tactic != "det"

        records = blinder.entities("record")
        assert records.find_ids(Eq("code", "x")) == set(ids)

    def test_migrated_metadata_survives_restart(self, registry, cloud,
                                                transport):
        blinder = DataBlinder("metamig", transport, registry=registry)
        blinder.register_schema(schema_v1())
        records = blinder.entities("record")
        doc_id = records.insert({"id": "r0", "code": "z", "amount": 2.0})
        blinder.migrate_schema("record", schema_v2_tightened())

        restarted = DataBlinder(
            "metamig-2", transport, registry=registry,
            keystore=blinder.keystore, local_kv=blinder.runtime.local_kv,
        )
        restarted.restore_schema("record")
        plan = restarted._executor("record").plans["code"]
        assert plan.roles["eq"] == "mitra"
