"""Sync/async equivalence: the event-loop execution paths must be
byte-identical to the thread-blocking ones.

Two sweeps:

* **Read equivalence** — every planner operation, over every predicate
  shape of the plan-equivalence suite, answered once by the classic
  sync ``Entities`` and once by ``AsyncEntities`` (and once more via
  the :class:`~repro.gateway.runtime.SyncGateway` façade) against the
  *same* stored corpus: results, ordering included, must match
  exactly, under both the baseline pipeline and the all-optimisations
  pipeline.

* **Write equivalence** — a recorded post-batching request stream is
  replayed into fresh identical shard clusters once through the
  router's sync scatter and once through its native asyncio scatter:
  per-zone :func:`~repro.analysis.snapshot.zone_fingerprint` digests
  must be byte-identical, including under replication with write
  quorums (the detached async legs must land the same bytes).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.snapshot import zone_fingerprint
from repro.cloud.cluster import CloudCluster
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import AggregateQuery, And, Eq, Not, Or, Range
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport, Transport
from repro.shard.config import ShardConfig
from repro.shard.router import ShardedTransport
from repro.spi.descriptors import Aggregate
from repro.tactics import register_builtin_tactics

APP = "asyncequiv"


def build(pipeline=None):
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    blinder = DataBlinder(APP, InProcTransport(cloud.host),
                          registry=registry, pipeline=pipeline)
    schema = Schema.define(
        "obs",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        kind=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        patient=("string", FieldAnnotation.parse("C2", "I,EQ")),
        effective=("int", FieldAnnotation.parse("C5", "I,EQ,RG",
                                                "min,max")),
        value=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
        note="string",
    )
    blinder.register_schema(schema)
    entities = blinder.entities("obs")
    entities.insert_many([
        {
            "status": ["final", "draft", "amended"][i % 3],
            "kind": ["hr", "bp"][i % 2],
            "patient": f"p{i % 5}",
            "effective": i * 3 % 50,
            "value": float(i % 7),
            "note": f"note {i}",
        }
        for i in range(36)
    ])
    return blinder, entities


PREDICATES = [
    None,
    Eq("status", "final"),
    Eq("patient", "p2"),
    Eq("note", "note 4"),
    Eq("status", "missing-value"),
    Range("effective", 10, 30),
    Range("effective", low=40),
    And([Eq("status", "final"), Eq("kind", "hr")]),
    And([Eq("status", "final"), Range("effective", 5, 35)]),
    Or([Eq("status", "draft"), Eq("status", "amended")]),
    Or([Eq("kind", "bp"), Range("effective", 0, 9)]),
    Not(Eq("status", "final")),
    And([Or([Eq("status", "final"), Eq("status", "draft")]),
         Not(Eq("kind", "bp"))]),
]

PIPELINES = [
    pytest.param(None, id="baseline"),
    pytest.param(
        PipelineConfig(batch_writes=True, fanout_workers=4,
                       prefetch=True, fetch_chunk=8),
        id="optimised",
    ),
]


def gather_sync(entities):
    state = {}
    for index, predicate in enumerate(PREDICATES):
        state[("find", index)] = entities.find(predicate)
        state[("ids", index)] = sorted(entities.find_ids(predicate))
        state[("count", index)] = entities.count(predicate)
    state["sum"] = entities.sum("value")
    state["avg"] = entities.average("value",
                                    where=Eq("status", "final"))
    state["min"] = entities.min("effective")
    state["max"] = entities.max("effective")
    state["sorted"] = entities.find_sorted("effective", limit=10)
    state["limited"] = entities.find(Eq("kind", "hr"), limit=5)
    return state


def gather_async(aentities):
    async def main():
        state = {}
        for index, predicate in enumerate(PREDICATES):
            state[("find", index)] = await aentities.find(predicate)
            state[("ids", index)] = sorted(
                await aentities.find_ids(predicate)
            )
            state[("count", index)] = await aentities.count(predicate)
        state["sum"] = await aentities.sum("value")
        state["avg"] = await aentities.average(
            "value", where=Eq("status", "final")
        )
        state["min"] = await aentities.min("effective")
        state["max"] = await aentities.max("effective")
        state["sorted"] = await aentities.find_sorted("effective",
                                                      limit=10)
        state["limited"] = await aentities.find(Eq("kind", "hr"),
                                                limit=5)
        return state

    return asyncio.run(main())


class TestReadEquivalence:
    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_async_entities_match_sync(self, pipeline):
        blinder, entities = build(pipeline)
        expected = gather_sync(entities)
        actual = gather_async(blinder.async_entities("obs"))
        assert actual == expected

    def test_concurrent_async_reads_match_sync(self):
        """The same sweep with every operation in flight at once."""
        blinder, entities = build(
            PipelineConfig(batch_writes=True, fanout_workers=4,
                           prefetch=True)
        )
        expected = [entities.find(p) for p in PREDICATES]
        aentities = blinder.async_entities("obs")

        async def main():
            return await asyncio.gather(
                *[aentities.find(p) for p in PREDICATES]
            )

        assert asyncio.run(main()) == expected

    def test_sync_facade_matches_plain_entities(self):
        blinder, entities = build(None)
        expected = gather_sync(entities)
        gateway = blinder.sync_gateway(principal="sweep")
        try:
            actual = gather_sync(gateway.entities("obs"))
        finally:
            gateway.close()
        assert actual == expected

    def test_async_write_path_round_trips(self):
        """Documents inserted/updated via the async write path read
        back identically through the sync path."""
        blinder, entities = build(PipelineConfig(batch_writes=True))
        aentities = blinder.async_entities("obs")

        async def main():
            doc_id = await aentities.insert({
                "status": "async", "kind": "hr", "patient": "px",
                "effective": 99, "value": 1.5, "note": "via loop",
            })
            more = await aentities.insert_many([
                {"status": "async", "kind": "bp", "patient": "py",
                 "effective": 98, "value": 2.5, "note": "bulk"},
            ])
            await aentities.update(doc_id, {"value": 7.5})
            return doc_id, more[0]

        doc_id, bulk_id = asyncio.run(main())
        assert entities.get(doc_id)["value"] == 7.5
        assert {d["_id"] for d in entities.find(Eq("status", "async"))} \
            == {doc_id, bulk_id}
        assert asyncio.run(
            blinder.async_entities("obs").delete(bulk_id)
        )
        assert entities.count(Eq("status", "async")) == 1


def fresh_registry():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


class RecordingTransport(Transport):
    """Logs every frame crossing the gateway/cloud boundary, in order."""

    def __init__(self, inner):
        self._inner = inner
        self.log = []

    def call(self, service, method, **kwargs):
        from repro.net.rpc import Request

        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request):
        self.log.append(("call", request))
        return self._inner.call_request(request)

    def call_batch(self, requests):
        requests = list(requests)
        self.log.append(("batch", requests))
        return self._inner.call_batch(requests)

    def stats(self):
        return self._inner.stats()

    def close(self):
        self._inner.close()


@pytest.fixture(scope="module")
def recorded_stream():
    """One write workload's post-batching stream, recorded once."""
    registry = fresh_registry()
    zone = CloudZone(registry)
    recorder = RecordingTransport(InProcTransport(zone.host))
    blinder = DataBlinder(APP, recorder, registry=registry,
                          pipeline=PipelineConfig(batch_writes=True))
    schema = Schema.define(
        "obs",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        effective=("int", FieldAnnotation.parse("C5", "I,EQ,RG",
                                                "min,max")),
        note="string",
    )
    blinder.register_schema(schema)
    entities = blinder.entities("obs")
    ids = entities.insert_many([
        {"status": ["final", "draft"][i % 2], "effective": i,
         "note": f"n{i}"}
        for i in range(10)
    ])
    entities.update(ids[2], {"status": "amended"})
    entities.delete(ids[7])
    zone.close()
    assert any(kind == "batch" for kind, _ in recorder.log)
    return recorder.log


def replay(log, shards, config, mode):
    """Replay the stream sync or async; digest every zone."""
    registry = fresh_registry()
    cluster = CloudCluster(shards, registry=registry)
    router = ShardedTransport(cluster.nodes(), config)
    try:
        if mode == "sync":
            for kind, payload in log:
                if kind == "batch":
                    router.call_batch(list(payload))
                else:
                    router.call_request(payload)
            router.drain_async_writes(timeout=30.0)
        else:
            async def drive():
                for kind, payload in log:
                    if kind == "batch":
                        await router.call_batch_async(list(payload))
                    else:
                        await router.call_request_async(payload)
                # Drain while the loop (and its detached delivery
                # tasks) is still alive: the ordered-shutdown contract.
                await asyncio.to_thread(router.drain_async_writes, 30.0)

            asyncio.run(drive())
        assert router.async_write_failures() == 0
        return {
            name: zone_fingerprint(cluster.zone(name), APP)
            for name in cluster.names()
        }
    finally:
        router.close()
        cluster.close()


#: (shards, replication, write_quorum)
SHARD_CASES = [(1, 1, 0), (4, 1, 0), (4, 2, 0), (4, 2, 1), (3, 3, 2)]


class TestWriteFingerprintEquivalence:
    @pytest.mark.parametrize("shards,replication,quorum", SHARD_CASES)
    def test_async_scatter_lands_identical_bytes(
        self, recorded_stream, shards, replication, quorum
    ):
        config = ShardConfig(replication=replication,
                             write_quorum=quorum)
        baseline = replay(recorded_stream, shards, config, "sync")
        via_async = replay(recorded_stream, shards, config, "async")
        assert via_async == baseline
        if replication < shards:
            # Full replication makes every zone identical; otherwise
            # the corpus must actually have spread across the ring.
            assert len(set(baseline.values())) > 1
