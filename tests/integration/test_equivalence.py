"""Property-based equivalence: the encrypted middleware must answer every
query exactly like a plaintext reference implementation.

This is the strongest correctness statement in the suite: random document
corpora, random mixed predicates, random updates/deletes — the
middleware's result sets must equal brute-force plaintext evaluation.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Not, Or, Range, evaluate_plain
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.net.transport import InProcTransport
from repro.tactics import register_builtin_tactics

STATUSES = ["draft", "active", "done"]
CODES = ["a", "b", "c"]
SUBJECTS = ["s1", "s2"]


def make_schema():
    return Schema.define(
        "rec",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        code=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        subject=("string", FieldAnnotation.parse("C2", "I,EQ")),
        when=("int", FieldAnnotation.parse("C5", "I,EQ,RG")),
        score=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
    )


documents = st.builds(
    dict,
    status=st.sampled_from(STATUSES),
    code=st.sampled_from(CODES),
    subject=st.sampled_from(SUBJECTS),
    when=st.integers(min_value=0, max_value=50),
    score=st.sampled_from([1.0, 2.5, 4.0]),
)


@st.composite
def predicates(draw, depth=2):
    if depth == 0:
        kind = draw(st.sampled_from(["status", "code", "subject", "when",
                                     "range"]))
        if kind == "range":
            low = draw(st.integers(0, 50))
            return Range("when", low, low + draw(st.integers(0, 25)))
        if kind == "when":
            return Eq("when", draw(st.integers(0, 50)))
        if kind == "status":
            return Eq("status", draw(st.sampled_from(STATUSES)))
        if kind == "code":
            return Eq("code", draw(st.sampled_from(CODES)))
        return Eq("subject", draw(st.sampled_from(SUBJECTS)))
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(predicates(depth=0))
    if kind == "not":
        return Not(draw(predicates(depth=depth - 1)))
    parts = draw(st.lists(predicates(depth=depth - 1), min_size=2,
                          max_size=3))
    return And(parts) if kind == "and" else Or(parts)


@pytest.fixture(scope="module")
def shared_registry():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(corpus=st.lists(documents, min_size=1, max_size=8),
       predicate=predicates())
def test_find_matches_plaintext_reference(shared_registry, corpus,
                                          predicate):
    cloud = CloudZone(shared_registry)
    blinder = DataBlinder("eqvapp", InProcTransport(cloud.host),
                          registry=shared_registry)
    blinder.register_schema(make_schema())
    records = blinder.entities("rec")

    expected = set()
    for index, document in enumerate(corpus):
        doc_id = records.insert(dict(document))
        if evaluate_plain(predicate, document):
            expected.add(doc_id)

    assert records.find_ids(predicate) == expected


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(corpus=st.lists(documents, min_size=2, max_size=6),
       updates=st.lists(st.tuples(st.integers(0, 5), documents),
                        max_size=3),
       deletions=st.sets(st.integers(0, 5), max_size=2),
       predicate=predicates(depth=1))
def test_mutations_preserve_equivalence(shared_registry, corpus, updates,
                                        deletions, predicate):
    cloud = CloudZone(shared_registry)
    blinder = DataBlinder("mutapp", InProcTransport(cloud.host),
                          registry=shared_registry)
    blinder.register_schema(make_schema())
    records = blinder.entities("rec")

    state = {}
    ids = []
    for document in corpus:
        doc_id = records.insert(dict(document))
        ids.append(doc_id)
        state[doc_id] = dict(document)

    for index, new_document in updates:
        doc_id = ids[index % len(ids)]
        if doc_id in state:
            records.update(doc_id, dict(new_document))
            state[doc_id].update(new_document)

    for index in deletions:
        doc_id = ids[index % len(ids)]
        if doc_id in state:
            records.delete(doc_id)
            del state[doc_id]

    expected = {
        doc_id for doc_id, document in state.items()
        if evaluate_plain(predicate, document)
    }
    assert records.find_ids(predicate) == expected


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(corpus=st.lists(documents, min_size=1, max_size=8),
       status=st.sampled_from(STATUSES))
def test_aggregates_match_plaintext_reference(shared_registry, corpus,
                                              status):
    cloud = CloudZone(shared_registry)
    blinder = DataBlinder("aggapp", InProcTransport(cloud.host),
                          registry=shared_registry)
    blinder.register_schema(make_schema())
    records = blinder.entities("rec")

    for document in corpus:
        records.insert(dict(document))

    matching = [d["score"] for d in corpus if d["status"] == status]
    measured_sum = records.sum("score", where=Eq("status", status))
    measured_avg = records.average("score", where=Eq("status", status))
    if not matching:
        assert measured_sum is None and measured_avg is None
    else:
        assert measured_sum == pytest.approx(sum(matching))
        assert measured_avg == pytest.approx(
            sum(matching) / len(matching)
        )
