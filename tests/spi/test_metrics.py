"""Per-tactic runtime performance metrics (Fig. 1 reification)."""

import pytest

from repro.core.query import Eq
from repro.fhir.model import observation_schema
from repro.spi.metrics import OperationCost, TacticMetrics


class TestTacticMetrics:
    def test_record_and_aggregate(self):
        metrics = TacticMetrics()
        metrics.record_call("tactic/a/f/det", "insert", 0.01, 100, 20)
        metrics.record_call("tactic/a/f/det", "insert", 0.03, 100, 20)
        metrics.record_call("tactic/a/f/det", "eq_query", 0.02, 50, 500)
        metrics.record_call("tactic/a/g/mitra", "insert", 0.05, 80, 10)

        by_tactic = metrics.by_tactic()
        assert by_tactic["det"].calls == 3
        assert by_tactic["det"].seconds == pytest.approx(0.06)
        assert by_tactic["det"].bytes_sent == 250
        assert by_tactic["mitra"].calls == 1

    def test_mean(self):
        cost = OperationCost()
        cost.record(0.01, 0, 0)
        cost.record(0.03, 0, 0)
        assert cost.mean_ms == pytest.approx(20.0)
        assert OperationCost().mean_ms == 0.0

    def test_render(self):
        metrics = TacticMetrics()
        metrics.record_call("tactic/a/f/paillier", "insert", 0.5, 900, 10)
        output = metrics.render()
        assert "paillier" in output
        assert "calls" in output

    def test_reset(self):
        metrics = TacticMetrics()
        metrics.record_call("tactic/a/f/det", "insert", 0.01, 1, 1)
        metrics.reset()
        assert metrics.by_tactic() == {}

    def test_instance_totals(self):
        metrics = TacticMetrics()
        metrics.record_call("s", "a", 0.1, 10, 5)
        metrics.record_call("s", "b", 0.2, 20, 5)
        instance = metrics.instances()[0]
        assert instance.total_calls == 2
        assert instance.total_seconds == pytest.approx(0.3)
        assert instance.total_bytes == 40


class TestMiddlewareIntegration:
    def test_deployment_collects_metrics(self, blinder):
        blinder.register_schema(observation_schema())
        entities = blinder.entities("observation")
        entities.insert({
            "id": "f1", "identifier": 1, "status": "final",
            "code": "glucose", "subject": "A", "effective": 1,
            "issued": 2, "performer": "P", "value": 1.0,
            "interpretation": "",
        })
        entities.find(Eq("status", "final"))
        entities.average("value")

        by_tactic = blinder.runtime.metrics.by_tactic()
        # All five schema tactics show up with real traffic.
        for tactic in ("det", "mitra", "rnd", "ope", "paillier",
                       "biex-2lev"):
            assert tactic in by_tactic, tactic
            assert by_tactic[tactic].bytes_sent > 0

        report = blinder.metrics_report()
        assert "paillier" in report and "biex-2lev" in report

    def test_rounds_match_transport_counts(self, blinder, transport):
        blinder.register_schema(observation_schema())
        entities = blinder.entities("observation")
        blinder.runtime.metrics.reset()
        before = transport.stats().messages_sent
        entities.insert({
            "id": "f2", "identifier": 2, "status": "final",
            "code": "hr", "subject": "B", "effective": 3, "issued": 4,
            "performer": "P", "value": 2.0, "interpretation": "",
        })
        transport_rounds = transport.stats().messages_sent - before
        metered_rounds = sum(
            c.rounds for c in blinder.runtime.metrics.by_tactic().values()
        )
        # Every round except the document-store write is attributed to a
        # tactic instance.
        assert metered_rounds == transport_rounds - 1
