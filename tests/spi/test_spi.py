"""SPI layer: leakage model, descriptors, interface introspection."""

import pytest

from repro.errors import PolicyError
from repro.spi.descriptors import (
    Aggregate,
    Operation,
    implemented_interfaces,
    spi_counts,
)
from repro.spi.interfaces import CLOUD_INTERFACES, GATEWAY_INTERFACES
from repro.spi.leakage import (
    LeakageLevel,
    LeakageProfile,
    OperationLeakage,
    ProtectionClass,
    weakest_link,
)
from repro.tactics import BUILTIN_TACTICS


class TestLeakageLevels:
    def test_ordering(self):
        assert (LeakageLevel.STRUCTURE < LeakageLevel.IDENTIFIERS
                < LeakageLevel.PREDICATES < LeakageLevel.EQUALITIES
                < LeakageLevel.ORDER)

    def test_labels(self):
        assert LeakageLevel.STRUCTURE.label == "Structure"
        assert LeakageLevel.ORDER.label == "Order"

    def test_weakest_link_is_max(self):
        assert weakest_link([LeakageLevel.STRUCTURE,
                             LeakageLevel.EQUALITIES,
                             LeakageLevel.IDENTIFIERS]
                            ) == LeakageLevel.EQUALITIES

    def test_weakest_link_rejects_empty(self):
        with pytest.raises(PolicyError):
            weakest_link([])


class TestProtectionClass:
    @pytest.mark.parametrize("raw,expected", [
        ("C1", 1), ("c3", 3), ("Class 5", 5), (2, 2),
        (ProtectionClass.C4, 4),
    ])
    def test_parse(self, raw, expected):
        assert int(ProtectionClass.parse(raw)) == expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(PolicyError):
            ProtectionClass.parse("high")
        with pytest.raises(ValueError):
            ProtectionClass.parse("C9")

    def test_tolerates(self):
        assert ProtectionClass.C3.tolerates(LeakageLevel.PREDICATES)
        assert not ProtectionClass.C3.tolerates(LeakageLevel.EQUALITIES)
        assert ProtectionClass.C5.tolerates(LeakageLevel.ORDER)


class TestLeakageProfile:
    def test_level_is_max_over_operations(self):
        profile = LeakageProfile({
            "insert": OperationLeakage(LeakageLevel.STRUCTURE),
            "eq_search": OperationLeakage(LeakageLevel.EQUALITIES),
        })
        assert profile.level == LeakageLevel.EQUALITIES
        assert profile.protection_class == ProtectionClass.C4

    def test_per_operation_lookup(self):
        profile = LeakageProfile({
            "insert": OperationLeakage(LeakageLevel.STRUCTURE,
                                       forward_private=True),
        })
        assert profile.for_operation("insert").forward_private
        assert profile.for_operation("nope") is None

    def test_empty_profile_is_structure(self):
        assert LeakageProfile().level == LeakageLevel.STRUCTURE


class TestOperationsAndAggregates:
    def test_operation_parse(self):
        assert Operation.parse("EQ") is Operation.EQUALITY
        assert Operation.parse(" bl ") is Operation.BOOLEAN
        assert Operation.parse(Operation.RANGE) is Operation.RANGE

    def test_aggregate_parse(self):
        assert Aggregate.parse("AVG") is Aggregate.AVG
        assert Aggregate.parse(Aggregate.SUM) is Aggregate.SUM


# The paper's Table 2 SPI counts, verbatim.
TABLE2_SPI = {
    "det": (9, 6),
    "mitra": (7, 5),
    "sophos": (6, 4),
    "rnd": (6, 4),
    "biex-2lev": (8, 5),
    "biex-zmf": (8, 5),
    "ope": (3, 3),
    "ore": (3, 3),
    "paillier": (3, 3),
}

# The paper's Table 2 protection classes.
TABLE2_CLASSES = {
    "det": 4, "mitra": 2, "sophos": 2, "rnd": 1,
    "biex-2lev": 3, "biex-zmf": 3, "ope": 5, "ore": 5,
    "paillier": None,
}


class TestTable2Fidelity:
    @pytest.mark.parametrize("name,expected", sorted(TABLE2_SPI.items()))
    def test_spi_counts_match_table2(self, name, expected):
        row = next(r for r in BUILTIN_TACTICS if r[0].name == name)
        assert spi_counts(row[1], row[2]) == expected

    @pytest.mark.parametrize("name,expected",
                             sorted(TABLE2_CLASSES.items(),
                                    key=lambda kv: kv[0]))
    def test_protection_classes_match_table2(self, name, expected):
        descriptor = next(
            r[0] for r in BUILTIN_TACTICS if r[0].name == name
        )
        if expected is None:
            assert descriptor.protection_class is None
        else:
            assert int(descriptor.protection_class) == expected

    def test_every_tactic_implements_setup(self):
        for descriptor, gateway_cls, cloud_cls in BUILTIN_TACTICS:
            assert "Setup" in implemented_interfaces(gateway_cls, "gateway")
            assert "Setup" in implemented_interfaces(cloud_cls, "cloud")

    def test_descriptor_class_agrees_with_leakage(self):
        for descriptor, _, _ in BUILTIN_TACTICS:
            if descriptor.protection_class is not None:
                assert int(descriptor.protection_class) == int(
                    descriptor.leakage.level
                )


class TestDescriptorBehaviour:
    def test_boolean_via_equality(self):
        det = next(r[0] for r in BUILTIN_TACTICS if r[0].name == "det")
        assert det.supports(Operation.BOOLEAN)  # via equality
        assert Operation.BOOLEAN not in det.operations

    def test_admissibility(self):
        det = next(r[0] for r in BUILTIN_TACTICS if r[0].name == "det")
        assert det.admissible_for(ProtectionClass.C4)
        assert det.admissible_for(ProtectionClass.C5)
        assert not det.admissible_for(ProtectionClass.C3)

    def test_aggregate_only_admissible_everywhere(self):
        paillier = next(
            r[0] for r in BUILTIN_TACTICS if r[0].name == "paillier"
        )
        assert paillier.admissible_for(ProtectionClass.C1)
        assert paillier.supports_aggregate(Aggregate.AVG)
        assert not paillier.supports_aggregate(Aggregate.PRODUCT)


def test_interface_tables_cover_table1_names():
    assert set(GATEWAY_INTERFACES) >= {
        "Insertion", "DocIDGen", "SecureEnc", "Update", "Retrieval",
        "Deletion", "EqQuery", "EqResolution", "BoolQuery",
        "BoolResolution", "AggFunctionResolution", "Setup",
    }
    assert set(CLOUD_INTERFACES) >= {
        "Insertion", "Update", "Retrieval", "Deletion", "EqQuery",
        "BoolQuery", "AggFunction", "Setup",
    }
