"""Cloud-side tracker tests: incremental vs recomputed roots, domains,
counter canonicalisation, WAL seq seeding, and the tactic SPI digest."""

from __future__ import annotations

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.fhir.model import observation_schema
from repro.integrity import IntegrityConfig
from repro.integrity.tracker import (
    IntegrityTracker,
    digest_of_namespace_dump,
    tree_for_key,
)
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport
from repro.stores.docstore import DocumentStore
from repro.stores.kv import KeyValueStore
from repro.tactics import register_builtin_tactics

APP = "trackapp"


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i % 3 == 0 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


def integrity_deployment() -> tuple[CloudZone, DataBlinder]:
    registry = fresh_registry()
    cloud = CloudZone(registry)
    blinder = DataBlinder(
        APP, InProcTransport(cloud.host), registry=registry,
        pipeline=PipelineConfig(integrity=IntegrityConfig()),
    )
    blinder.register_schema(observation_schema())
    return cloud, blinder


class TestTreeForKey:
    def test_tactic_keys_map_to_their_provisioned_domain(self):
        key = b"tactic/app/status/dete/postings/x"
        assert tree_for_key(key) == "tactic/app/status/dete"

    def test_short_tactic_prefix_falls_back_to_kv(self):
        assert tree_for_key(b"tactic/app") == "kv"

    def test_other_keys_are_kv(self):
        assert tree_for_key(b"whatever/else") == "kv"


class TestIncrementalVsRecomputed:
    def test_report_matches_audit_report_after_live_traffic(self):
        """The incremental trees never drift from the raw stores."""
        cloud, blinder = integrity_deployment()
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(8)]
        observations.update(ids[2], {"value": 42.0})
        observations.delete(ids[7])
        observations.find_ids(Eq("status", "final"))

        tracker = cloud.integrity_tracker(APP)
        live = tracker.report()
        recomputed = tracker.audit_report()
        assert live["seq"] == recomputed["seq"]
        assert live["trees"] == recomputed["trees"]
        assert live["trees"]["docs"]["leaves"] == 7

    def test_rebuilt_tracker_reproduces_the_roots(self):
        """A tracker re-attached to existing stores (restart) rebuilds
        the exact same per-domain state from the raw stores."""
        cloud, blinder = integrity_deployment()
        observations = blinder.entities("observation")
        for i in range(5):
            observations.insert(make_doc(i))
        original = cloud.integrity_tracker(APP)
        kv, documents = cloud.application_stores(APP)
        rebuilt = IntegrityTracker(kv, documents)
        assert rebuilt.report()["trees"] == original.report()["trees"]


class TestTacticStateDigest:
    def test_state_digest_matches_the_tracker_tree(self):
        """Every provisioned tactic attests the same digest the tracker
        maintains for its domain (empty namespaces digest to zero)."""
        cloud, blinder = integrity_deployment()
        observations = blinder.entities("observation")
        for i in range(6):
            observations.insert(make_doc(i))
        trees = cloud.integrity_tracker(APP).report()["trees"]
        tactic_services = [
            name for name in cloud.host.service_names()
            if name.startswith("tactic/")
        ]
        assert tactic_services
        checked = 0
        for name in tactic_services:
            digest = cloud.host.get(name).state_digest()
            expected = trees.get(name, {}).get("digest", "0" * 64)
            assert digest == expected, name
            if int(digest, 16) != 0:
                checked += 1
        assert checked > 0  # at least one tactic holds index state


class TestCounterCanonicalisation:
    def test_counter_zero_equals_absent(self):
        """``namespace_drop`` resets counters to 0; the tracker must
        treat that as leaf-absent or resharding would change digests."""
        kv, documents = KeyValueStore(), DocumentStore()
        tracker = IntegrityTracker(kv, documents)
        baseline = tracker.report()["trees"].get("kv", {}).get(
            "digest", "0" * 64
        )
        kv.counter_increment(b"hits", 3)
        assert tracker.report()["trees"]["kv"]["digest"] != baseline
        kv.counter_set(b"hits", 0)
        assert tracker.report()["trees"]["kv"].get(
            "digest", "0" * 64
        ) == baseline
        # And the recomputed (raw-scan) path agrees.
        audit = tracker.audit_report()["trees"]
        assert audit.get("kv", {}).get("digest", "0" * 64) == baseline

    def test_namespace_dump_digest_canonicalises_zero_too(self):
        kv = KeyValueStore()
        kv.counter_increment(b"tactic/a/f/t/count", 2)
        kv.counter_set(b"tactic/a/f/t/count", 0)
        dump = kv.namespace_dump(b"tactic/a/f/t/")
        assert int(digest_of_namespace_dump(dump), 16) == 0


class TestSequenceWatermark:
    def test_every_mutation_bumps_the_sequence(self):
        kv, documents = KeyValueStore(), DocumentStore()
        tracker = IntegrityTracker(kv, documents)
        start = tracker.seq
        kv.put(b"k", b"v")
        kv.map_put(b"m", b"f", b"v")
        kv.set_add(b"s", b"m")
        kv.counter_increment(b"c")
        documents.insert({"_id": "d1", "body": "x"})
        documents.delete("d1")
        assert tracker.seq == start + 6

    def test_in_memory_stores_start_at_zero(self):
        tracker = IntegrityTracker(KeyValueStore(), DocumentStore())
        assert tracker.seq == 0

    def test_seq_seeds_from_the_wal_watermark(self, tmp_path):
        """A tracker attached to recovered persistent stores resumes at
        (not below) the sequence the gateway last saw — a restore from
        an old snapshot cannot silently reach the current watermark."""
        store = KeyValueStore(tmp_path / "kv")
        for i in range(4):
            store.put(f"k{i}".encode(), b"v")
        store.close()

        recovered = KeyValueStore(tmp_path / "kv")
        tracker = IntegrityTracker(recovered, DocumentStore())
        assert tracker.seq == recovered.wal_sequence()
        assert tracker.seq >= 4
        root_before = tracker.report()["trees"]["kv"]["root"]
        recovered.put(b"k-new", b"v")
        after = tracker.report()
        assert after["seq"] == tracker.seq
        assert after["trees"]["kv"]["root"] != root_before


class TestProofEnvelope:
    def test_prove_document_envelope_shape(self):
        cloud, blinder = integrity_deployment()
        observations = blinder.entities("observation")
        doc_id = observations.insert(make_doc(0))
        tracker = cloud.integrity_tracker(APP)
        _, documents = cloud.application_stores(APP)
        stored = documents.get(doc_id)
        envelope = tracker.prove_document(doc_id, stored)
        assert envelope["_id"] == doc_id
        assert envelope["document"] == stored
        assert envelope["root"] == tracker.report()["trees"]["docs"]["root"]
        assert envelope["seq"] == tracker.seq
        assert envelope["proof"] is not None
