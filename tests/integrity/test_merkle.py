"""Merkle tree unit tests: roots, proofs, additive digests."""

from __future__ import annotations

import json

import pytest

from repro.integrity.merkle import (
    DIGEST_MOD,
    EMPTY_ROOT,
    MerkleTree,
    digest_root,
    leaf_key,
    merge_digests,
    verify_inclusion,
)


def filled(n: int) -> MerkleTree:
    tree = MerkleTree()
    for i in range(n):
        tree.update(leaf_key(b"d", f"doc{i}".encode()), f"body{i}".encode())
    return tree


class TestEmptyTree:
    def test_canonical_empty_state(self):
        tree = MerkleTree()
        assert len(tree) == 0
        assert tree.root() == EMPTY_ROOT
        assert tree.digest() == 0

    def test_proof_for_absent_key_is_none(self):
        assert MerkleTree().proof(b"missing") is None

    def test_remove_absent_key_is_noop(self):
        tree = MerkleTree()
        assert tree.remove(b"missing") is False
        assert tree.digest() == 0


class TestMutation:
    def test_update_then_remove_restores_state(self):
        tree = filled(5)
        root, digest = tree.root(), tree.digest()
        key = leaf_key(b"d", b"extra")
        tree.update(key, b"payload")
        assert tree.root() != root
        assert tree.digest() != digest
        assert tree.remove(key) is True
        assert tree.root() == root
        assert tree.digest() == digest

    def test_update_in_place_replaces_leaf_term(self):
        tree = filled(3)
        key = leaf_key(b"d", b"doc0")
        tree.update(key, b"new body")
        # The old term was subtracted: removing the leaf again leaves
        # exactly the two untouched leaves' digest.
        tree.remove(key)
        rest = MerkleTree()
        rest.update(leaf_key(b"d", b"doc1"), b"body1")
        rest.update(leaf_key(b"d", b"doc2"), b"body2")
        assert tree.digest() == rest.digest()
        assert tree.root() == rest.root()

    def test_clear(self):
        tree = filled(4)
        tree.clear()
        assert len(tree) == 0
        assert tree.root() == EMPTY_ROOT
        assert tree.digest() == 0

    def test_root_independent_of_insertion_order(self):
        forward = filled(6)
        backward = MerkleTree()
        for i in reversed(range(6)):
            backward.update(leaf_key(b"d", f"doc{i}".encode()),
                            f"body{i}".encode())
        assert forward.root() == backward.root()
        assert forward.digest() == backward.digest()


class TestProofs:
    @pytest.mark.parametrize("n", range(1, 10))
    def test_every_leaf_proves_at_every_size(self, n):
        """Covers the odd-node promote rule at sizes 3, 5, 7, 9."""
        tree = filled(n)
        root = tree.root()
        for i in range(n):
            key = leaf_key(b"d", f"doc{i}".encode())
            proof = tree.proof(key)
            assert proof is not None
            assert verify_inclusion(root, key, f"body{i}".encode(), proof)

    def test_wrong_value_fails(self):
        tree = filled(4)
        key = leaf_key(b"d", b"doc1")
        proof = tree.proof(key)
        assert not verify_inclusion(tree.root(), key, b"forged", proof)

    def test_wrong_root_fails(self):
        tree = filled(4)
        key = leaf_key(b"d", b"doc1")
        proof = tree.proof(key)
        other = filled(5).root()
        assert not verify_inclusion(other, key, b"body1", proof)

    def test_malformed_proofs_fail_closed(self):
        tree = filled(4)
        key = leaf_key(b"d", b"doc2")
        root = tree.root()
        assert not verify_inclusion(root, key, b"body2", None)
        assert not verify_inclusion(root, key, b"body2",
                                    [("L", "not-hex")])
        assert not verify_inclusion(root, key, b"body2", [("X", "ab" * 32)])
        assert not verify_inclusion(root, key, b"body2", [("L",)])
        assert not verify_inclusion(root, key, b"body2", [42])

    def test_proof_survives_json_round_trip(self):
        """The wire codec hands decoded proofs back as lists of lists."""
        tree = filled(5)
        key = leaf_key(b"d", b"doc3")
        proof = json.loads(json.dumps(tree.proof(key)))
        assert isinstance(proof[0], list)
        assert verify_inclusion(tree.root(), key, b"body3", proof)


class TestAdditiveDigest:
    def test_cluster_digest_is_placement_invariant(self):
        """Splitting the leaves across shards keeps the merged digest."""
        whole = filled(8)
        shard_a, shard_b = MerkleTree(), MerkleTree()
        for i in range(8):
            shard = shard_a if i % 3 == 0 else shard_b
            shard.update(leaf_key(b"d", f"doc{i}".encode()),
                         f"body{i}".encode())
        assert merge_digests(
            [shard_a.digest(), shard_b.digest()]
        ) == whole.digest()

    def test_merge_reduces_mod_2_256(self):
        assert merge_digests([DIGEST_MOD - 1, 1]) == 0
        assert merge_digests([]) == 0

    def test_digest_root_commits_to_the_digest(self):
        a, b = filled(3), filled(4)
        assert digest_root(a.digest()) != digest_root(b.digest())
        assert digest_root(a.digest()) == digest_root(filled(3).digest())


class TestLeafKeys:
    def test_length_prefix_prevents_structural_collisions(self):
        assert leaf_key(b"m", b"a\x00b", b"c") != leaf_key(b"m", b"a",
                                                           b"b\x00c")
        assert leaf_key(b"s", b"x") != leaf_key(b"d", b"x")
