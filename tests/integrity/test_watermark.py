"""Freshness ledger unit tests: trust-on-write, rollback classification."""

from __future__ import annotations

import pytest

from repro.errors import IntegrityError, StaleStateError
from repro.integrity.merkle import digest_root, merge_digests
from repro.integrity.watermark import FreshnessLedger


def report(seq: int, **trees: tuple[str, int]) -> dict:
    return {
        "seq": seq,
        "trees": {
            name: {"root": root, "digest": f"{digest:064x}"}
            for name, (root, digest) in trees.items()
        },
    }


class TestAcceptReport:
    def test_first_report_establishes_the_watermark(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(3, docs=("r1", 10)))
        entry = ledger.expect("shard:a", "docs")
        assert entry.seq == 3
        assert entry.root == "r1"
        assert entry.digest == 10

    def test_advancing_seq_with_new_root_is_a_write_taking_effect(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(3, docs=("r1", 10)))
        ledger.accept_report("shard:a", report(5, docs=("r2", 11)))
        assert ledger.expect("shard:a", "docs").root == "r2"

    def test_same_report_is_idempotent(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(3, docs=("r1", 10)))
        ledger.accept_report("shard:a", report(3, docs=("r1", 10)))
        assert ledger.expect("shard:a", "docs").seq == 3

    def test_sequence_regression_is_stale(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(5, docs=("r2", 11)))
        with pytest.raises(StaleStateError):
            ledger.accept_report("shard:a", report(4, docs=("r1", 10)))

    def test_root_change_without_seq_advance_is_tampering(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(5, docs=("r2", 11)))
        with pytest.raises(IntegrityError):
            ledger.accept_report("shard:a", report(5, docs=("rX", 11)))

    def test_labels_and_trees_views(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(1, docs=("r1", 1)))
        ledger.accept_report("shard:b", report(2, kv=("r2", 2)))
        assert ledger.labels() == ["shard:a", "shard:b"]
        assert ledger.trees() == ["docs", "kv"]


class TestClassify:
    def test_current_root_matches_some_shard(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(1, docs=("r1", 1)))
        ledger.accept_report("shard:b", report(1, docs=("r2", 2)))
        assert ledger.classify("docs", "r1", 1) == "current"
        assert ledger.classify("docs", "r2", 1) == "current"

    def test_retired_root_is_stale(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(1, docs=("old", 1)))
        ledger.accept_report("shard:a", report(2, docs=("new", 2)))
        assert ledger.classify("docs", "new", 2) == "current"
        assert ledger.classify("docs", "old", 1) == "stale"

    def test_never_seen_root_is_unknown(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(1, docs=("r1", 1)))
        assert ledger.classify("docs", "forged", 1) == "unknown"
        assert ledger.classify("other-tree", "r1", 1) == "unknown"

    def test_history_zero_forgets_retired_roots(self):
        ledger = FreshnessLedger(history=0)
        ledger.accept_report("shard:a", report(1, docs=("old", 1)))
        ledger.accept_report("shard:a", report(2, docs=("new", 2)))
        # Without retired-root memory a replay is indistinguishable
        # from tampering — detected either way, just coarser.
        assert ledger.classify("docs", "old", 1) == "unknown"

    def test_history_bound_evicts_oldest(self):
        ledger = FreshnessLedger(history=2)
        for seq, root in enumerate(["r0", "r1", "r2", "r3"], start=1):
            ledger.accept_report("shard:a", report(seq, docs=(root, seq)))
        assert ledger.classify("docs", "r0", 1) == "unknown"  # evicted
        assert ledger.classify("docs", "r2", 3) == "stale"


class TestClusterViews:
    def test_cluster_digest_sums_shards(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(1, docs=("r1", 10)))
        ledger.accept_report("shard:b", report(1, docs=("r2", 32)))
        ledger.accept_report("shard:b", report(1, kv=("r3", 5)))
        assert ledger.cluster_digest("docs") == merge_digests([10, 32])
        assert ledger.cluster_digest("kv") == 5
        assert ledger.cluster_root("docs") == digest_root(42)

    def test_snapshot_shape(self):
        ledger = FreshnessLedger()
        ledger.accept_report("shard:a", report(1, docs=("old", 1)))
        ledger.accept_report("shard:a", report(2, docs=("new", 2)))
        view = ledger.snapshot()
        assert view == {
            "shard:a:docs": {"seq": 2, "root": "new", "retired": 1}
        }
