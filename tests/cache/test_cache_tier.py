"""Gateway read-cache tier behaviour: correctness before speed.

Every assertion here is about *transparency*: caching on must answer
exactly what caching off answers — across sync and async paths, after
local writes, per principal — while actually serving hits (asserted via
planner counters and wire-call counts), never storing plaintext for
schemas below the admission floor, and never writing a byte into the
untrusted zone.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.analysis.snapshot import zone_fingerprint
from repro.cache import CacheConfig
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Not, Or, Range
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.errors import DocumentNotFound, RemoteError
from repro.gateway.runtime import SyncGateway
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport, Transport
from repro.tactics import register_builtin_tactics

APP = "cacheapp"


class CountingTransport(Transport):
    """Counts every wire round the gateway ships."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self._lock = threading.Lock()

    def _note(self) -> None:
        with self._lock:
            self.calls += 1

    def call(self, service, method, **kwargs):
        self._note()
        return self.inner.call(service, method, **kwargs)

    def call_request(self, request):
        self._note()
        return self.inner.call_request(request)

    def call_batch(self, requests):
        self._note()
        return self.inner.call_batch(requests)

    async def call_request_async(self, request):
        self._note()
        return await self.inner.call_request_async(request)

    async def call_batch_async(self, requests):
        self._note()
        return await self.inner.call_batch_async(requests)

    def stats(self):
        return self.inner.stats()

    def reset(self) -> None:
        with self._lock:
            self.calls = 0


def obs_schema() -> Schema:
    return Schema.define(
        "obs",
        status=("string", FieldAnnotation.parse("C4", "I,EQ")),
        patient=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        effective=("int", FieldAnnotation.parse("C5", "I,EQ,RG",
                                                "min,max")),
        value=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
        note="string",
    )


def corpus() -> list[dict]:
    return [
        {
            "status": ["final", "draft", "amended"][i % 3],
            "patient": f"p{i % 5}",
            "effective": i * 3 % 50,
            "value": float(i % 7),
            "note": f"note {i}",
        }
        for i in range(24)
    ]


def deploy(pipeline=None, cloud=None, registry=None, keystore=None,
           schema=None):
    if registry is None:
        registry = TacticRegistry()
        register_builtin_tactics(registry)
    if cloud is None:
        cloud = CloudZone(registry)
    transport = CountingTransport(InProcTransport(cloud.host))
    blinder = DataBlinder(APP, transport, registry=registry,
                          keystore=keystore, pipeline=pipeline)
    blinder.register_schema(schema or obs_schema())
    return blinder, cloud, transport


PREDICATES = [
    None,
    Eq("status", "final"),
    Eq("patient", "p2"),
    Eq("note", "note 4"),
    Eq("status", "missing-value"),
    Range("effective", 10, 30),
    And([Eq("status", "final"), Range("effective", 5, 35)]),
    Or([Eq("status", "draft"), Eq("status", "amended")]),
    Not(Eq("status", "final")),
]


def sweep(entities) -> dict:
    state = {}
    for index, predicate in enumerate(PREDICATES):
        state[("find", index)] = entities.find(predicate)
        state[("ids", index)] = sorted(entities.find_ids(predicate))
        state[("count", index)] = entities.count(predicate)
    state["sum"] = entities.sum("value")
    state["avg"] = entities.average("value", where=Eq("status", "final"))
    state["min"] = entities.min("effective")
    state["max"] = entities.max("effective")
    state["sorted"] = entities.find_sorted("effective", limit=10)
    state["limited"] = entities.find(Eq("status", "final"), limit=5)
    return state


def sweep_async(aentities) -> dict:
    async def main():
        state = {}
        for index, predicate in enumerate(PREDICATES):
            state[("find", index)] = await aentities.find(predicate)
            state[("ids", index)] = sorted(
                await aentities.find_ids(predicate)
            )
            state[("count", index)] = await aentities.count(predicate)
        state["sum"] = await aentities.sum("value")
        state["avg"] = await aentities.average(
            "value", where=Eq("status", "final")
        )
        state["min"] = await aentities.min("effective")
        state["max"] = await aentities.max("effective")
        state["sorted"] = await aentities.find_sorted("effective",
                                                      limit=10)
        state["limited"] = await aentities.find(Eq("status", "final"),
                                                limit=5)
        return state

    return asyncio.run(main())


class TestEquivalence:
    def test_cached_sweep_matches_uncached_deployment(self):
        plain, _, _ = deploy(None)
        cached, _, _ = deploy(PipelineConfig(cache=CacheConfig()))
        docs = corpus()
        plain.entities("obs").insert_many(docs)
        cached.entities("obs").insert_many(docs)

        def comparable(state):
            # Ids are random per deployment, and tie order inside a
            # result set can follow them — compare id-free multisets
            # (and value ladders for the ordered sweeps).
            out = {}
            for key, value in state.items():
                if key == "sorted":
                    out[key] = [doc["effective"] for doc in value]
                elif key == "limited":
                    out[key] = (len(value),
                                {doc["status"] for doc in value})
                elif isinstance(value, list) and value \
                        and isinstance(value[0], dict):
                    out[key] = sorted(
                        tuple(sorted(
                            (k, v) for k, v in doc.items() if k != "_id"
                        ))
                        for doc in value
                    )
                elif isinstance(key, tuple) and key[0] == "ids":
                    out[key] = len(value)
                else:
                    out[key] = value
            return out

        expected = comparable(sweep(plain.entities("obs")))
        first = comparable(sweep(cached.entities("obs")))
        second = comparable(sweep(cached.entities("obs")))
        assert first == expected
        assert second == expected
        stats = cached.planner_stats("obs")
        assert stats["result_hits"] > 0

    def test_repeat_sweep_is_wire_free_and_identical(self):
        blinder, _, transport = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        entities.insert_many(corpus())
        first = sweep(entities)
        transport.reset()
        second = sweep(entities)
        assert second == first
        # Without integrity there is no ledger to re-sync: a fully
        # repeated sweep is answered entirely from the gateway.
        assert transport.calls == 0

    def test_async_sweep_on_cached_gateway_matches_sync(self):
        blinder, _, _ = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        entities.insert_many(corpus())
        expected = sweep(entities)
        actual = sweep_async(blinder.async_entities("obs"))
        assert actual == expected

    def test_reads_never_mutate_the_untrusted_zone(self):
        blinder, cloud, _ = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        ids = entities.insert_many(corpus())
        before = zone_fingerprint(cloud, APP)
        sweep(entities)
        sweep(entities)
        for doc_id in ids[:5]:
            entities.get(doc_id)
        after = zone_fingerprint(cloud, APP)
        assert after == before


class TestReadYourWrites:
    def test_update_invalidates_cached_results_and_documents(self):
        blinder, _, _ = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        ids = entities.insert_many(corpus())
        target = ids[0]
        assert entities.get(target)["value"] is not None
        entities.find(Eq("status", "final"))
        entities.update(target, {"value": 424.0, "status": "final"})
        assert entities.get(target)["value"] == 424.0
        hit = [d for d in entities.find(Eq("status", "final"))
               if d["_id"] == target]
        assert hit and hit[0]["value"] == 424.0

    def test_delete_invalidates_cached_document(self):
        blinder, _, _ = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        ids = entities.insert_many(corpus())
        target = ids[0]
        entities.get(target)
        entities.delete(target)
        with pytest.raises((DocumentNotFound, RemoteError)):
            entities.get(target)

    def test_negative_entries_short_circuit_repeated_misses(self):
        blinder, _, transport = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        ids = entities.insert_many(corpus()[:3])
        with pytest.raises((DocumentNotFound, RemoteError)):
            entities.get("no-such-id")
        transport.reset()
        # Second miss is served from the negative entry: no wire round.
        with pytest.raises(DocumentNotFound):
            entities.get("no-such-id")
        assert transport.calls == 0
        # A positively cached document turns negative after its delete:
        # the first re-read pays the wire, the repeat is gateway-local.
        target = ids[0]
        entities.get(target)
        entities.delete(target)
        with pytest.raises((DocumentNotFound, RemoteError)):
            entities.get(target)
        transport.reset()
        with pytest.raises(DocumentNotFound):
            entities.get(target)
        assert transport.calls == 0

    def test_async_insert_is_visible_to_cached_sync_reads(self):
        blinder, _, _ = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        entities.insert_many(corpus())
        before = entities.count(Eq("status", "wired"))
        assert before == 0
        aentities = blinder.async_entities("obs")

        async def main():
            return await aentities.insert({
                "status": "wired", "patient": "p9", "effective": 1,
                "value": 9.0, "note": "async",
            })

        doc_id = asyncio.run(main())
        assert entities.count(Eq("status", "wired")) == 1
        assert entities.get(doc_id)["status"] == "wired"


class TestPrincipalScoping:
    def test_principals_do_not_share_result_entries(self):
        blinder, _, transport = deploy(PipelineConfig(cache=CacheConfig()))
        blinder.entities("obs").insert_many(corpus())
        runtime = blinder.async_runtime()
        try:
            alice = SyncGateway(runtime, principal="alice")
            bob = SyncGateway(runtime, principal="bob")
            predicate = Eq("status", "final")
            expected = alice.entities("obs").find(predicate)
            transport.reset()
            assert alice.entities("obs").find(predicate) == expected
            assert transport.calls == 0  # alice repeat: cache hit
            transport.reset()
            assert bob.entities("obs").find(predicate) == expected
            assert transport.calls > 0  # bob's first: own entry, own wire
        finally:
            runtime.close()

    def test_unscoped_config_shares_entries(self):
        blinder, _, transport = deploy(
            PipelineConfig(cache=CacheConfig(per_principal=False))
        )
        blinder.entities("obs").insert_many(corpus())
        runtime = blinder.async_runtime()
        try:
            alice = SyncGateway(runtime, principal="alice")
            bob = SyncGateway(runtime, principal="bob")
            predicate = Eq("status", "final")
            expected = alice.entities("obs").find(predicate)
            transport.reset()
            assert bob.entities("obs").find(predicate) == expected
            assert transport.calls == 0  # shared entry serves bob too
        finally:
            runtime.close()


class TestLeakageAdmission:
    def secret_schema(self) -> Schema:
        return Schema.define(
            "secret",
            performer=("string", FieldAnnotation.parse("C1", "I")),
            status=("string", FieldAnnotation.parse("C4", "I,EQ")),
            note="string",
        )

    def test_c1_schema_is_refused_plaintext_caching(self):
        blinder, _, transport = deploy(
            PipelineConfig(cache=CacheConfig()),
            schema=self.secret_schema(),
        )
        tier = blinder.runtime.cache_tier
        assert tier is not None
        assert not tier.admits_plaintext("secret")
        entities = blinder.entities("secret")
        ids = entities.insert_many([
            {"performer": f"dr{i}", "status": "s", "note": f"n{i}"}
            for i in range(4)
        ])
        entities.find(Eq("status", "s"))
        transport.reset()
        entities.find(Eq("status", "s"))
        assert transport.calls > 0  # plaintext results never cached
        entities.get(ids[0])
        transport.reset()
        entities.get(ids[0])
        assert transport.calls > 0  # decrypted documents never cached
        snapshot = tier.snapshot()
        assert snapshot["documents"]["entries"] == 0
        assert blinder.planner_stats("secret")["result_hits"] == 0

    def test_id_only_results_still_cache_for_refused_schema(self):
        blinder, _, transport = deploy(
            PipelineConfig(cache=CacheConfig()),
            schema=self.secret_schema(),
        )
        entities = blinder.entities("secret")
        entities.insert_many([
            {"performer": f"dr{i}", "status": "s", "note": f"n{i}"}
            for i in range(4)
        ])
        assert entities.count(Eq("status", "s")) == 4
        ids = entities.find_ids(Eq("status", "s"))
        transport.reset()
        assert entities.count(Eq("status", "s")) == 4
        assert entities.find_ids(Eq("status", "s")) == ids
        assert transport.calls == 0  # no field plaintext: admissible

    def test_raised_floor_refuses_lower_classes(self):
        blinder, _, _ = deploy(
            PipelineConfig(cache=CacheConfig(min_cacheable_class=4)),
        )
        tier = blinder.runtime.cache_tier
        # obs carries a C3 blind-index field: below a C4 floor.
        assert not tier.admits_plaintext("obs")


class TestExplainFooter:
    def test_footer_reports_levels_and_admission(self):
        blinder, _, _ = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        entities.insert_many(corpus())
        predicate = Eq("status", "final")
        entities.find(predicate)
        entities.find(predicate)
        text = blinder.explain("obs", predicate)
        assert "Cache:" in text
        assert "results on" in text
        assert "admitted" in text
        assert "Cache hit probability" in text

    def test_footer_absent_when_caching_is_off(self):
        blinder, _, _ = deploy(None)
        entities = blinder.entities("obs")
        entities.insert_many(corpus()[:6])
        text = blinder.explain("obs", Eq("status", "final"))
        assert "Cache:" not in text


class TestTokenCaches:
    def test_repeat_trapdoors_are_memoised(self):
        blinder, _, _ = deploy(PipelineConfig(cache=CacheConfig()))
        entities = blinder.entities("obs")
        entities.insert_many(corpus())
        for _ in range(3):
            entities.find(Eq("status", "draft"))
            entities.count(Eq("value", 2.0))
        stats = blinder.runtime.kernels.token_cache_stats()
        assert stats["caches"] >= 1
        assert stats["hits"] > 0

    def test_token_caches_off_by_config(self):
        blinder, _, _ = deploy(
            PipelineConfig(cache=CacheConfig(tokens=False))
        )
        entities = blinder.entities("obs")
        entities.insert_many(corpus()[:6])
        entities.find(Eq("status", "final"))
        entities.find(Eq("status", "final"))
        stats = blinder.runtime.kernels.token_cache_stats()
        assert stats["caches"] == 0
