"""Units for the TTL+size LRU backing the result/document cache levels."""

from __future__ import annotations

from repro.cache import CacheConfig, TtlLruCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCapacity:
    def test_least_recently_used_entry_is_evicted(self):
        cache = TtlLruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.lookup("a")[2]  # refresh a: b is now the LRU
        cache.put("c", 3)
        assert not cache.lookup("b")[2]
        assert cache.lookup("a")[0] == 1
        assert cache.lookup("c")[0] == 3
        assert cache.stats()["evictions"] == 1

    def test_zero_capacity_never_stores(self):
        cache = TtlLruCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert not cache.lookup("a")[2]

    def test_replacing_a_key_keeps_one_entry(self):
        cache = TtlLruCache(capacity=4)
        cache.put("a", 1, size=10)
        cache.put("a", 2, size=20)
        assert len(cache) == 1
        assert cache.bytes_used == 20
        assert cache.lookup("a")[0] == 2


class TestTtl:
    def test_expired_entries_miss_and_count_as_expirations(self):
        clock = FakeClock()
        cache = TtlLruCache(capacity=8, ttl_s=30.0, clock=clock)
        cache.put("a", 1)
        clock.advance(29.0)
        assert cache.lookup("a")[2]
        clock.advance(2.0)
        value, _, found = cache.lookup("a")
        assert not found and value is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["entries"] == 0

    def test_zero_ttl_never_expires(self):
        clock = FakeClock()
        cache = TtlLruCache(capacity=8, ttl_s=0.0, clock=clock)
        cache.put("a", 1)
        clock.advance(10_000.0)
        assert cache.lookup("a")[2]


class TestByteBudget:
    def test_size_accounting_evicts_down_to_budget(self):
        cache = TtlLruCache(capacity=100, max_bytes=100)
        cache.put("a", "x", size=60)
        cache.put("b", "y", size=60)  # 120 bytes: a must go
        assert not cache.lookup("a")[2]
        assert cache.lookup("b")[2]
        assert cache.bytes_used == 60

    def test_single_oversized_entry_is_kept(self):
        # The budget never evicts the only entry: a document larger than
        # max_bytes still caches (capacity bounds the damage).
        cache = TtlLruCache(capacity=100, max_bytes=50)
        cache.put("big", "x", size=400)
        assert cache.lookup("big")[2]


class TestInvalidation:
    def test_invalidate_where_drops_matching_keys(self):
        cache = TtlLruCache(capacity=8)
        cache.put(("obs", "p1", "a"), 1)
        cache.put(("obs", "p1", "b"), 2)
        cache.put(("other", "p1", "a"), 3)
        dropped = cache.invalidate_where(lambda key: key[0] == "obs")
        assert dropped == 2
        assert not cache.lookup(("obs", "p1", "a"))[2]
        assert cache.lookup(("other", "p1", "a"))[0] == 3
        assert cache.stats()["invalidations"] == 2

    def test_tokens_round_trip_through_lookup(self):
        cache = TtlLruCache(capacity=4)
        cache.put("a", 1, token=("epoch", 3))
        value, token, found = cache.lookup("a")
        assert (value, token, found) == (1, ("epoch", 3), True)


class TestConfig:
    def test_plaintext_floor_never_admits_c1(self):
        assert CacheConfig().plaintext_floor() == 2
        assert CacheConfig(min_cacheable_class=1).plaintext_floor() == 2
        assert CacheConfig(min_cacheable_class=4).plaintext_floor() == 4

    def test_active_reflects_levels(self):
        assert CacheConfig().active
        assert not CacheConfig(tokens=False, results=False,
                               documents=False).active
        assert CacheConfig(tokens=False, results=False,
                           documents=True).active
