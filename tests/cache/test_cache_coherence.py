"""Cross-gateway cache coherence under the freshness ledger.

Two gateways share one untrusted zone and one HSM (same derived keys).
With integrity configured, a cached entry is served only after a forced
ledger re-sync shows the coherence stamp unchanged — so a write through
the *other* gateway turns the hit into a miss and the repeat query
re-executes against the live zone: zero stale reads, by protocol rather
than by TTL luck.
"""

from __future__ import annotations

from repro.cache import CacheConfig
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.integrity import IntegrityConfig
from repro.keys.hsm import SimulatedHsm
from repro.keys.keystore import KeyStore
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport
from repro.tactics import register_builtin_tactics

from tests.cache.test_cache_tier import CountingTransport, obs_schema

APP = "coherence"


def twin_gateways(cache=True):
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    hsm = SimulatedHsm()
    pipeline = PipelineConfig(
        integrity=IntegrityConfig(),
        cache=CacheConfig() if cache else None,
    )
    gateways = []
    transports = []
    for _ in range(2):
        transport = CountingTransport(InProcTransport(cloud.host))
        blinder = DataBlinder(
            APP, transport, registry=registry,
            keystore=KeyStore(APP, hsm=hsm), pipeline=pipeline,
        )
        blinder.register_schema(obs_schema())
        gateways.append(blinder)
        transports.append(transport)
    return gateways, transports, cloud


def make_doc(i: int) -> dict:
    return {
        "status": "final", "patient": f"p{i}", "effective": i,
        "value": float(i), "note": f"n{i}",
    }


class TestCrossGatewayCoherence:
    def test_remote_write_invalidates_cached_result(self):
        (a, b), _, _ = twin_gateways()
        ids = a.entities("obs").insert_many(
            [make_doc(i) for i in range(6)]
        )
        predicate = Eq("status", "final")
        first = a.entities("obs").find(predicate)
        assert len(first) == 6
        # Warm hit: the stamp matched, the cached result was served.
        assert a.entities("obs").find(predicate) == first
        tier = a.runtime.cache_tier
        assert tier.coherence_validations >= 1

        b.entities("obs").update(ids[0], {"value": 555.0})

        refreshed = a.entities("obs").find(predicate)
        changed = [d for d in refreshed if d["_id"] == ids[0]]
        assert changed and changed[0]["value"] == 555.0
        assert tier.stamp_mismatches >= 1

    def test_remote_write_invalidates_cached_document(self):
        (a, b), _, _ = twin_gateways()
        ids = a.entities("obs").insert_many(
            [make_doc(i) for i in range(3)]
        )
        target = ids[0]
        assert a.entities("obs").get(target)["value"] == 0.0
        assert a.entities("obs").get(target)["value"] == 0.0  # cached
        b.entities("obs").update(target, {"value": 9.5})
        assert a.entities("obs").get(target)["value"] == 9.5

    def test_remote_insert_is_visible_to_cached_count(self):
        (a, b), _, _ = twin_gateways()
        a.entities("obs").insert_many([make_doc(i) for i in range(4)])
        predicate = Eq("status", "final")
        assert a.entities("obs").count(predicate) == 4
        assert a.entities("obs").count(predicate) == 4
        b.entities("obs").insert(make_doc(99))
        assert a.entities("obs").count(predicate) == 5

    def test_validated_hit_is_cheaper_than_re_execution(self):
        (a, _b), (ta, _tb), _ = twin_gateways()
        entities = a.entities("obs")
        entities.insert_many([make_doc(i) for i in range(12)])
        predicate = Eq("status", "final")
        ta.reset()
        entities.find(predicate)
        cold = ta.calls
        ta.reset()
        entities.find(predicate)
        warm = ta.calls
        # A validated hit is a single ledger re-sync, not a scatter:
        # strictly fewer wire rounds than the cold execution.
        assert 1 <= warm < cold
