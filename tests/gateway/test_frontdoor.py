"""Service-tier front door: token buckets, per-principal limits, audit."""

from __future__ import annotations

import json

import pytest

from repro.errors import RateLimitExceeded
from repro.gateway.frontdoor import (
    AuditLog,
    FrontDoor,
    RateLimiter,
    TokenBucket,
    front_door,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_up_to_capacity_then_refuses(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=2.0, clock=clock)
        assert bucket.try_take(2.0)
        assert not bucket.try_take()
        clock.advance(0.5)  # 1 token accrued
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == 2.0

    def test_retry_after_is_honest(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)
        assert bucket.try_take()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.25)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, capacity=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, capacity=0)


class TestRateLimiter:
    def test_per_principal_isolation(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=1.0, clock=clock)
        limiter.check("alice")
        # Alice is out of tokens; Bob has his own bucket.
        limiter.check("bob")
        with pytest.raises(RateLimitExceeded):
            limiter.check("alice")

    def test_rejection_carries_principal_and_retry_after(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, capacity=1.0, clock=clock)
        limiter.check("alice")
        with pytest.raises(RateLimitExceeded) as info:
            limiter.check("alice")
        assert info.value.principal == "alice"
        assert info.value.retry_after_s == pytest.approx(0.5)
        assert limiter.rejections == 1

    def test_override_gives_tiered_service(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=1.0, clock=clock)
        limiter.set_limit("gold", rate=100.0, capacity=10.0)
        for _ in range(10):
            limiter.check("gold")
        limiter.check("basic")
        with pytest.raises(RateLimitExceeded):
            limiter.check("basic")

    def test_tokens_accrue_back(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=1.0, clock=clock)
        limiter.check("alice")
        clock.advance(1.0)
        limiter.check("alice")  # does not raise


class TestAuditLog:
    def test_records_structured_fields(self):
        clock = FakeClock(now=1000.0)
        log = AuditLog(clock=clock)
        log.record("alice", "find", fields=["status"], latency_ms=12.5,
                   outcome="ok")
        (entry,) = log.records()
        assert entry.principal == "alice"
        assert entry.op == "find"
        assert entry.fields == ["status"]
        assert entry.latency_ms == 12.5
        assert entry.outcome == "ok"
        assert entry.ts == 1000.0

    def test_jsonl_sink_is_parseable(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path=str(path))
        log.record("alice", "insert", fields=["status", "value"],
                   latency_ms=3.25, outcome="ok")
        log.record("bob", "find", fields=[], latency_ms=1.0,
                   outcome="rate_limited", detail="retry after 0.5s")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["principal"] == "alice"
        assert first["fields"] == ["status", "value"]
        assert first["latency_ms"] == 3.25
        assert second["outcome"] == "rate_limited"
        assert second["detail"] == "retry after 0.5s"

    def test_memory_ring_is_bounded(self):
        log = AuditLog(max_records=3)
        for i in range(5):
            log.record("p", f"op{i}")
        assert [e.op for e in log.records()] == ["op2", "op3", "op4"]

    def test_outcomes_histogram_and_tail(self):
        log = AuditLog()
        for outcome in ("ok", "ok", "error", "expired"):
            log.record("p", "find", outcome=outcome)
        assert log.outcomes() == {"ok": 2, "error": 1, "expired": 1}
        assert [e.outcome for e in log.tail(2)] == ["error", "expired"]


class TestFrontDoor:
    def test_disabled_legs_are_no_ops(self):
        door = FrontDoor()
        door.admit("anyone")  # no limiter: never raises
        door.observe("anyone", "find", None, 1.0, "ok")  # no audit sink

    def test_admit_debits_and_observe_records(self):
        clock = FakeClock()
        door = FrontDoor(
            limiter=RateLimiter(rate=1.0, capacity=1.0, clock=clock),
            audit=AuditLog(),
        )
        door.admit("alice")
        with pytest.raises(RateLimitExceeded):
            door.admit("alice")
        door.observe("alice", "find", ["status"], 5.0, "ok")
        assert door.audit.outcomes() == {"ok": 1}

    def test_front_door_factory(self, tmp_path):
        door = front_door(rate=10.0,
                          audit_path=str(tmp_path / "a.jsonl"))
        assert door.limiter is not None and door.audit is not None
        assert front_door().limiter is None
        assert front_door().audit is None
        assert front_door(audit=True).audit is not None
