"""The async gateway runtime: admission, deadlines, bounded in-flight
concurrency, audit wiring, ordered shutdown and the sync façade."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    RateLimitExceeded,
)
from repro.gateway.frontdoor import AuditLog, FrontDoor, RateLimiter
from repro.gateway.runtime import AsyncGatewayRuntime
from repro.net.transport import InProcTransport
from repro.tactics import register_builtin_tactics


def build_blinder(name="rtapp"):
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    blinder = DataBlinder(name, InProcTransport(cloud.host),
                          registry=registry)
    schema = Schema.define(
        "obs",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        value=("float", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
        note="string",
    )
    blinder.register_schema(schema)
    return blinder


@pytest.fixture()
def blinder():
    return build_blinder()


class TestSubmitAndResults:
    def test_operations_match_the_sync_api(self, blinder):
        entities = blinder.entities("obs")
        doc_id = entities.insert(
            {"status": "final", "value": 1.0, "note": "n"}
        )
        with AsyncGatewayRuntime(blinder) as runtime:
            aentities = runtime.entities("obs")
            found = runtime.submit(
                lambda: aentities.find(Eq("status", "final")),
                principal="alice", op="find", fields=["status"],
            ).result(10)
            assert [d["_id"] for d in found] == [doc_id]
            assert runtime.run(aentities.count(None)) == 1
            snap = runtime.stats.snapshot()
            assert snap["admitted"] == snap["completed"] == 2
            assert snap["failed"] == 0

    def test_operation_errors_propagate_and_count(self, blinder):
        with AsyncGatewayRuntime(blinder) as runtime:
            aentities = runtime.entities("obs")

            async def missing():
                return await aentities.get("no-such-id")

            with pytest.raises(Exception):
                runtime.submit(missing, op="get").result(10)
            assert runtime.stats.snapshot()["failed"] == 1


class TestBoundedInFlight:
    def test_concurrency_is_capped_by_the_semaphore(self, blinder):
        runtime = AsyncGatewayRuntime(blinder, max_in_flight=3)
        active = 0
        peak = 0
        lock = threading.Lock()

        async def op():
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            await asyncio.sleep(0.03)
            with lock:
                active -= 1

        try:
            futures = [runtime.submit(op) for _ in range(12)]
            for f in futures:
                f.result(10)
            assert peak <= 3
            assert runtime.stats.snapshot()["peak_in_flight"] <= 3
            assert runtime.stats.snapshot()["completed"] == 12
        finally:
            runtime.close()

    def test_admission_queue_bound(self, blinder):
        runtime = AsyncGatewayRuntime(blinder, max_in_flight=1,
                                      max_queue=2)
        release = threading.Event()

        async def blocked():
            await asyncio.to_thread(release.wait, 5)

        try:
            futures = [runtime.submit(blocked) for _ in range(3)]
            with pytest.raises(AdmissionRejected):
                runtime.submit(blocked)
            assert runtime.stats.snapshot()["rejected"] == 1
            release.set()
            for f in futures:
                f.result(10)
        finally:
            release.set()
            runtime.close()


class TestDeadlines:
    def test_deadline_cancels_and_raises(self, blinder):
        audit = AuditLog()
        runtime = AsyncGatewayRuntime(
            blinder, front=FrontDoor(audit=audit)
        )

        async def slow():
            await asyncio.sleep(5)

        try:
            future = runtime.submit(slow, op="slow", principal="alice",
                                    deadline_s=0.05)
            started = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                future.result(10)
            assert time.perf_counter() - started < 2.0
            assert runtime.stats.snapshot()["expired"] == 1
            (entry,) = [e for e in audit.records()
                        if e.outcome == "expired"]
            assert entry.principal == "alice" and entry.op == "slow"
        finally:
            runtime.close()

    def test_default_deadline_applies(self, blinder):
        runtime = AsyncGatewayRuntime(blinder,
                                      default_deadline_s=0.05)

        async def slow():
            await asyncio.sleep(5)

        try:
            with pytest.raises(DeadlineExceeded):
                runtime.submit(slow).result(10)
        finally:
            runtime.close()

    def test_fast_operation_beats_its_deadline(self, blinder):
        with AsyncGatewayRuntime(blinder) as runtime:
            aentities = runtime.entities("obs")
            assert runtime.submit(
                lambda: aentities.count(None), deadline_s=10.0
            ).result(10) == 0


class TestFrontDoorWiring:
    def test_rate_limited_submit_never_schedules(self, blinder):
        audit = AuditLog()
        front = FrontDoor(limiter=RateLimiter(rate=0.001, capacity=1.0),
                          audit=audit)
        runtime = AsyncGatewayRuntime(blinder, front=front)
        aentities = runtime.entities("obs")
        try:
            runtime.submit(lambda: aentities.count(None),
                           principal="alice", op="count").result(10)
            with pytest.raises(RateLimitExceeded) as info:
                runtime.submit(lambda: aentities.count(None),
                               principal="alice", op="count")
            assert info.value.retry_after_s > 0
            snap = runtime.stats.snapshot()
            assert snap["rate_limited"] == 1
            assert snap["admitted"] == 1
            assert audit.outcomes() == {"ok": 1, "rate_limited": 1}
        finally:
            runtime.close()

    def test_audit_captures_fields_and_latency(self, blinder):
        audit = AuditLog()
        runtime = AsyncGatewayRuntime(blinder,
                                      front=FrontDoor(audit=audit))
        aentities = runtime.entities("obs")
        try:
            runtime.submit(
                lambda: aentities.find(Eq("status", "x")),
                principal="alice", op="find", fields=["status"],
            ).result(10)
        finally:
            runtime.close()
        (entry,) = audit.records()
        assert entry.fields == ["status"]
        assert entry.latency_ms > 0
        assert entry.outcome == "ok"


class TestShutdown:
    def test_close_refuses_new_work_and_is_idempotent(self, blinder):
        runtime = AsyncGatewayRuntime(blinder)
        aentities = runtime.entities("obs")
        runtime.submit(lambda: aentities.count(None)).result(10)
        runtime.close()
        runtime.close()
        with pytest.raises(AdmissionRejected):
            runtime.submit(lambda: aentities.count(None))

    def test_close_waits_for_in_flight_operations(self, blinder):
        runtime = AsyncGatewayRuntime(blinder)
        done = threading.Event()

        async def op():
            await asyncio.sleep(0.1)
            done.set()

        future = runtime.submit(op)
        runtime.close(timeout=5.0)
        assert done.is_set()
        future.result(1)

    def test_close_before_first_submit(self, blinder):
        AsyncGatewayRuntime(blinder).close()


class TestSyncFacade:
    def test_sync_gateway_matches_plain_entities(self, blinder):
        entities = blinder.entities("obs")
        ids = entities.insert_many([
            {"status": s, "value": float(i), "note": f"n{i}"}
            for i, s in enumerate(["final", "draft", "final"])
        ])
        gateway = blinder.sync_gateway(principal="alice")
        sync_entities = gateway.entities("obs")
        try:
            assert sync_entities.count() == entities.count() == 3
            assert (
                {d["_id"] for d in sync_entities.find(Eq("status",
                                                         "final"))}
                == {d["_id"] for d in entities.find(Eq("status",
                                                       "final"))}
            )
            assert (sync_entities.sum("value")
                    == entities.sum("value"))
            new_id = sync_entities.insert(
                {"status": "amended", "value": 9.0, "note": "x"}
            )
            assert entities.get(new_id)["status"] == "amended"
            sync_entities.update(ids[0], {"value": 5.0})
            assert entities.get(ids[0])["value"] == 5.0
            assert sync_entities.delete(new_id)
            assert sync_entities.find_one(Eq("status", "amended")) is None
        finally:
            gateway.close()

    def test_facade_flows_through_admission_and_audit(self, blinder):
        audit = AuditLog()
        runtime = blinder.async_runtime(front=FrontDoor(audit=audit))
        gateway = blinder.sync_gateway(principal="carol")
        sync_entities = gateway.entities("obs")
        try:
            sync_entities.insert(
                {"status": "final", "value": 1.0, "note": "n"}
            )
            sync_entities.count(Eq("status", "final"))
        finally:
            gateway.close()
        ops = [(e.principal, e.op, e.fields) for e in audit.records()]
        assert ops == [
            ("carol", "insert", ["note", "status", "value"]),
            ("carol", "count", ["status"]),
        ]
        assert runtime.stats.snapshot()["completed"] == 2

    def test_concurrent_facade_callers_share_the_loop(self, blinder):
        gateway = blinder.sync_gateway()
        sync_entities = gateway.entities("obs")
        errors = []

        def worker(i):
            try:
                sync_entities.insert(
                    {"status": f"s{i % 3}", "value": float(i),
                     "note": f"n{i}"}
                )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            assert not errors
            assert sync_entities.count() == 8
        finally:
            gateway.close()
