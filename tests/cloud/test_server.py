"""Cloud zone: provisioning, document service, resource lifecycle."""

import pytest

from repro.errors import DocumentNotFound, RemoteError, TransportError
from repro.spi.context import service_name


class TestAdminService:
    def test_provision_application_registers_doc_service(self, cloud,
                                                         transport):
        name = transport.call("admin", "provision_application",
                              application="app1")
        assert name == "docs/app1"
        assert "docs/app1" in transport.call("admin", "list_services")

    def test_provision_application_is_idempotent(self, transport):
        first = transport.call("admin", "provision_application",
                               application="app1")
        second = transport.call("admin", "provision_application",
                                application="app1")
        assert first == second

    def test_provision_tactic(self, cloud, transport):
        transport.call("admin", "provision_application",
                       application="app1")
        name = transport.call("admin", "provision_tactic",
                              application="app1", field="s.f",
                              tactic="det")
        assert name == service_name("app1", "s.f", "det")
        # Idempotent.
        assert transport.call(
            "admin", "provision_tactic", application="app1",
            field="s.f", tactic="det",
        ) == name

    def test_provision_unknown_tactic_fails(self, transport):
        with pytest.raises(RemoteError):
            transport.call("admin", "provision_tactic",
                           application="app1", field="s.f",
                           tactic="nonsense")

    def test_applications_get_separate_stores(self, cloud):
        kv_a, docs_a = cloud.application_stores("a")
        kv_b, docs_b = cloud.application_stores("b")
        assert kv_a is not kv_b
        assert docs_a is not docs_b
        kv_a2, docs_a2 = cloud.application_stores("a")
        assert kv_a is kv_a2 and docs_a is docs_a2

    def test_tactic_instance_lookup(self, cloud, transport):
        transport.call("admin", "provision_application",
                       application="app1")
        cloud.provision_tactic("app1", "s.f", "rnd")
        instance = cloud.tactic_instance("app1", "s.f", "rnd")
        assert instance is not None
        with pytest.raises(TransportError):
            cloud.tactic_instance("app1", "s.f", "det")


class TestDocumentService:
    @pytest.fixture()
    def docs(self, cloud, transport):
        transport.call("admin", "provision_application",
                       application="app1")

        def call(method, **kwargs):
            return transport.call("docs/app1", method, **kwargs)

        return call

    def test_crud_over_rpc(self, docs):
        docs("insert", document={"_id": "d1", "schema": "s",
                                 "body": b"\x01", "plain": {"n": 1}})
        assert docs("get", doc_id="d1")["plain"]["n"] == 1
        docs("replace", document={"_id": "d1", "schema": "s",
                                  "body": b"\x02", "plain": {"n": 2}})
        assert docs("get", doc_id="d1")["body"] == b"\x02"
        assert docs("delete", doc_id="d1") is True
        with pytest.raises(RemoteError):
            docs("get", doc_id="d1")

    def test_insert_many(self, docs):
        ids = docs("insert_many", documents=[
            {"_id": f"d{i}", "schema": "s", "body": b"", "plain": {}}
            for i in range(3)
        ])
        assert ids == ["d0", "d1", "d2"]
        assert docs("count") == 3

    def test_all_ids_filters_by_schema(self, docs):
        docs("insert", document={"_id": "a", "schema": "s1",
                                 "body": b"", "plain": {}})
        docs("insert", document={"_id": "b", "schema": "s2",
                                 "body": b"", "plain": {}})
        assert docs("all_ids", schema="s1") == ["a"]
        assert sorted(docs("all_ids")) == ["a", "b"]

    def test_find_plain(self, docs):
        docs("insert", document={"_id": "a", "schema": "s",
                                 "body": b"", "plain": {"x": 5}})
        docs("insert", document={"_id": "b", "schema": "s",
                                 "body": b"", "plain": {"x": 9}})
        assert docs("find_plain", query={"plain.x": {"$gt": 6}}) == ["b"]


class TestGatewayRuntime:
    def test_loaded_tactics_listing(self, harness):
        harness.gateway("det", field="s.a")
        harness.gateway("rnd", field="s.b")
        assert harness.runtime.loaded_tactics() == [
            ("s.a", "det"), ("s.b", "rnd"),
        ]

    def test_instances_are_cached(self, harness):
        first = harness.gateway("det", field="s.a")
        second = harness.gateway("det", field="s.a")
        assert first is second

    def test_distinct_scopes_distinct_instances(self, harness):
        a = harness.gateway("det", field="s.a")
        b = harness.gateway("det", field="s.b")
        assert a is not b


class TestContextHelpers:
    def test_service_name(self):
        assert service_name("app", "obs.value", "ope") == (
            "tactic/app/obs.value/ope"
        )

    def test_state_key_namespacing(self, harness):
        gateway = harness.gateway("det", field="s.a")
        key = gateway.ctx.state_key(b"x", b"y")
        assert key.startswith(b"tactic/testapp/s.a/det")
        assert key.endswith(b"x/y")

    def test_derive_key_separation(self, harness):
        gateway_a = harness.gateway("det", field="s.a")
        gateway_b = harness.gateway("det", field="s.b")
        assert gateway_a.ctx.derive_key("p") != gateway_b.ctx.derive_key("p")
