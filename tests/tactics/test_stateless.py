"""Stateless-gateway SSE (the paper's future-work extension)."""

import pytest

from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.schema import FieldAnnotation, Schema
from repro.net.transport import InProcTransport


def eq_ids(gateway, value):
    return gateway.resolve_eq(gateway.eq_query(value))


class TestStatelessSse:
    @pytest.fixture()
    def stateless(self, harness):
        return harness.gateway("sse-stateless")

    def test_insert_and_search(self, stateless):
        stateless.insert("d1", "w1")
        stateless.insert("d2", "w1")
        stateless.insert("d3", "w2")
        assert eq_ids(stateless, "w1") == {"d1", "d2"}
        assert eq_ids(stateless, "w2") == {"d3"}
        assert eq_ids(stateless, "never") == set()

    def test_delete_and_reinsert(self, stateless):
        stateless.insert("d1", "w")
        stateless.delete("d1", "w")
        assert eq_ids(stateless, "w") == set()
        stateless.insert("d1", "w")
        assert eq_ids(stateless, "w") == {"d1"}

    def test_update(self, stateless):
        stateless.insert("d1", "old")
        stateless.update("d1", "old", "new")
        assert eq_ids(stateless, "old") == set()
        assert eq_ids(stateless, "new") == {"d1"}

    def test_gateway_holds_zero_state(self, stateless, harness):
        """The whole point: no counters, no token chains at the gateway."""
        before = harness.runtime.local_kv.stats()
        for i in range(10):
            stateless.insert(f"d{i}", f"kw{i % 3}")
        eq_ids(stateless, "kw0")
        after = harness.runtime.local_kv.stats()
        assert after == before

    def test_entries_are_masked(self, stateless, harness):
        stateless.insert("doc-secret-42", "private keyword")
        kv = harness.cloud_instance("sse-stateless").ctx.kv
        blob = bytearray()
        for name, bucket in kv._maps.items():
            blob += name
            for k, v in bucket.items():
                blob += k + v
        assert b"doc-secret-42" not in bytes(blob)
        assert b"private keyword" not in bytes(blob)

    def test_update_pattern_leaks_at_insert_time(self, stateless,
                                                 harness):
        """The documented trade: the cloud links same-keyword updates as
        they arrive (forward privacy lost) — unlike Mitra, where every
        insert lands at an unlinkable address."""
        cloud = harness.cloud_instance("sse-stateless")
        stateless.insert("d1", "hot")
        stateless.insert("d2", "hot")
        stateless.insert("d3", "cold")
        tag_lists = [
            name for name in cloud.ctx.kv._maps
            if name.startswith(cloud._namespace)
        ]
        # Two keywords -> two visible groups, one holding two entries.
        assert len(tag_lists) == 2
        sizes = sorted(
            cloud.ctx.kv.map_size(name) for name in tag_lists
        )
        assert sizes == [1, 2]


class TestStatelessGatewayRestart:
    def test_survives_gateway_loss(self, registry):
        """A brand-new gateway (same keystore, empty local state) can
        still search — the cloud-native property."""
        from repro.cloud.server import CloudZone
        from repro.gateway.service import GatewayRuntime
        from repro.keys.keystore import KeyStore

        cloud = CloudZone(registry)
        keystore = KeyStore("statelessapp")
        runtime1 = GatewayRuntime("statelessapp",
                                  InProcTransport(cloud.host), registry,
                                  keystore=keystore)
        gw1 = runtime1.tactic("doc.f", "sse-stateless")
        gw1.insert("d1", "kw")
        gw1.insert("d2", "kw")

        # Fresh gateway: new local KV, nothing carried over but keys.
        runtime2 = GatewayRuntime("statelessapp",
                                  InProcTransport(cloud.host), registry,
                                  keystore=keystore)
        gw2 = runtime2.tactic("doc.f", "sse-stateless")
        assert eq_ids(gw2, "kw") == {"d1", "d2"}

    def test_mitra_does_not_survive_gateway_loss(self, registry):
        """Contrast: Mitra's counters die with the gateway, so a fresh
        gateway finds nothing — exactly why the paper calls stateless SE
        a research challenge."""
        from repro.cloud.server import CloudZone
        from repro.gateway.service import GatewayRuntime
        from repro.keys.keystore import KeyStore

        cloud = CloudZone(registry)
        keystore = KeyStore("mitrapp")
        runtime1 = GatewayRuntime("mitrapp", InProcTransport(cloud.host),
                                  registry, keystore=keystore)
        gw1 = runtime1.tactic("doc.f", "mitra")
        gw1.insert("d1", "kw")

        runtime2 = GatewayRuntime("mitrapp", InProcTransport(cloud.host),
                                  registry, keystore=keystore)
        gw2 = runtime2.tactic("doc.f", "mitra")
        assert eq_ids(gw2, "kw") == set()


class TestMiddlewareIntegration:
    def test_selectable_by_name_through_middleware(self, cloud, registry):
        """An application can pin the stateless tactic by filtering the
        registry — crypto agility in the other direction."""
        import repro.core.registry as registry_module

        filtered = registry_module.TacticRegistry()
        for registration in registry.all():
            if registration.name not in ("mitra", "sophos"):
                filtered.register(registration.descriptor,
                                  registration.gateway_cls,
                                  registration.cloud_cls)
        blinder = DataBlinder("pinned", InProcTransport(cloud.host),
                              registry=filtered)
        schema = Schema.define(
            "rec",
            who=("string", FieldAnnotation.parse("C2", "I,EQ")),
        )
        reports = blinder.register_schema(schema)
        assert reports[0].tactics == ["sse-stateless"]
        records = blinder.entities("rec")
        doc_id = records.insert({"who": "alice"})
        assert records.find_ids(Eq("who", "alice")) == {doc_id}
