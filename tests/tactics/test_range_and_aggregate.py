"""Range tactics (OPE, ORE) and aggregate tactics (Paillier, ElGamal)."""

import pytest

from repro.errors import RemoteError, TacticError


@pytest.mark.parametrize("tactic", ["ope", "ore"])
class TestRangeTactics:
    @pytest.fixture()
    def range_gw(self, harness, tactic):
        gateway = harness.gateway(tactic)
        for doc_id, value in [("d1", 10), ("d2", 25), ("d3", 50),
                              ("d4", 75), ("d5", 100)]:
            gateway.insert(doc_id, value)
        return gateway

    def test_closed_range(self, range_gw, tactic):
        assert range_gw.range_query(20, 80) == {"d2", "d3", "d4"}

    def test_inclusive_bounds(self, range_gw, tactic):
        assert range_gw.range_query(25, 75) == {"d2", "d3", "d4"}

    def test_open_low(self, range_gw, tactic):
        assert range_gw.range_query(None, 25) == {"d1", "d2"}

    def test_open_high(self, range_gw, tactic):
        assert range_gw.range_query(75, None) == {"d4", "d5"}

    def test_empty_range(self, range_gw, tactic):
        assert range_gw.range_query(101, 200) == set()

    def test_floats_and_negatives(self, harness, tactic):
        gateway = harness.gateway(tactic, field="doc.other")
        gateway.insert("a", -5.5)
        gateway.insert("b", -0.25)
        gateway.insert("c", 0.0)
        gateway.insert("d", 3.75)
        assert gateway.range_query(-1.0, 1.0) == {"b", "c"}
        assert gateway.range_query(None, -0.25) == {"a", "b"}

    def test_insert_is_upsert(self, range_gw, tactic):
        range_gw.insert("d3", 999)
        assert range_gw.range_query(40, 60) == set()
        assert range_gw.range_query(900, 1000) == {"d3"}

    def test_rejects_non_numeric(self, range_gw, tactic):
        with pytest.raises((TacticError, RemoteError)):
            range_gw.insert("dx", "not a number")


class TestPaillierTactic:
    @pytest.fixture()
    def paillier_gw(self, harness):
        gateway = harness.gateway("paillier")
        for doc_id, value in [("d1", 6.3), ("d2", 5.1), ("d3", 7.2)]:
            gateway.insert(doc_id, value)
        return gateway

    def test_sum_all(self, paillier_gw):
        assert paillier_gw.aggregate("sum") == pytest.approx(18.6)

    def test_avg_all(self, paillier_gw):
        assert paillier_gw.aggregate("avg") == pytest.approx(6.2)

    def test_subset_aggregation(self, paillier_gw):
        assert paillier_gw.aggregate("avg", ["d1", "d2"]) == pytest.approx(
            5.7
        )

    def test_count(self, paillier_gw):
        assert paillier_gw.aggregate("count", ["d1", "d3"]) == 2

    def test_unknown_ids_skipped(self, paillier_gw):
        assert paillier_gw.aggregate("sum", ["d1", "ghost"]
                                     ) == pytest.approx(6.3)

    def test_empty_selection(self, paillier_gw):
        assert paillier_gw.aggregate("avg", []) is None

    def test_negative_values(self, harness):
        gateway = harness.gateway("paillier", field="doc.delta")
        gateway.insert("a", -10.5)
        gateway.insert("b", 4.5)
        assert gateway.aggregate("sum") == pytest.approx(-6.0)

    def test_insert_is_upsert(self, paillier_gw):
        paillier_gw.insert("d1", 1.0)
        assert paillier_gw.aggregate("sum", ["d1"]) == pytest.approx(1.0)

    def test_rejects_non_numeric(self, paillier_gw):
        with pytest.raises((TacticError, RemoteError)):
            paillier_gw.insert("dx", "NaN-ish")

    def test_unsupported_aggregate(self, paillier_gw):
        with pytest.raises(TacticError):
            paillier_gw.resolve_aggregate("median", {"ct": 1}, 3)

    def test_cloud_never_sees_plaintext_sums(self, paillier_gw, harness):
        """The cloud multiplies ciphertexts blind: its stored values are
        Paillier ciphertexts, not the plaintext numbers."""
        cloud = harness.cloud_instance("paillier")
        encoded = [6300000, 5100000, 7200000]  # fixed-point plaintexts
        stored = [
            int.from_bytes(blob, "big")
            for _, blob in cloud.ctx.kv.map_items(cloud._map_name)
        ]
        assert len(stored) == 3
        assert all(ciphertext not in encoded for ciphertext in stored)


class TestElGamalTactic:
    @pytest.fixture()
    def elgamal_gw(self, harness):
        gateway = harness.gateway("elgamal")
        for doc_id, value in [("d1", 2), ("d2", 3), ("d3", 7)]:
            gateway.insert(doc_id, value)
        return gateway

    def test_product_all(self, elgamal_gw):
        assert elgamal_gw.aggregate("product") == 42

    def test_product_subset(self, elgamal_gw):
        assert elgamal_gw.aggregate("product", ["d1", "d3"]) == 14

    def test_count(self, elgamal_gw):
        assert elgamal_gw.aggregate("count", ["d1"]) == 1

    def test_empty(self, elgamal_gw):
        assert elgamal_gw.aggregate("product", []) is None

    def test_rejects_non_positive(self, elgamal_gw):
        with pytest.raises((TacticError, RemoteError)):
            elgamal_gw.insert("dx", 0)
        with pytest.raises((TacticError, RemoteError)):
            elgamal_gw.insert("dy", 2.5)

    def test_unsupported_aggregate(self, elgamal_gw):
        with pytest.raises(TacticError):
            elgamal_gw.resolve_aggregate("sum", {"c1": 1, "c2": 1}, 2)
