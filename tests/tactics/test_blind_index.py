"""Blind-index tactic: OPRF equality tokens with HSM-held keys."""

import pytest

from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.net.transport import InProcTransport


def eq_ids(gateway, value):
    return gateway.resolve_eq(gateway.eq_query(value))


class TestBlindIndexProtocol:
    @pytest.fixture()
    def blind(self, harness):
        return harness.gateway("blind-index")

    def test_insert_and_search(self, blind):
        blind.insert("d1", "glucose")
        blind.insert("d2", "glucose")
        blind.insert("d3", "hr")
        assert eq_ids(blind, "glucose") == {"d1", "d2"}
        assert eq_ids(blind, "hr") == {"d3"}
        assert eq_ids(blind, "missing") == set()

    def test_update_and_delete(self, blind):
        blind.insert("d1", "old")
        blind.update("d1", "old", "new")
        assert eq_ids(blind, "old") == set()
        assert eq_ids(blind, "new") == {"d1"}
        blind.delete("d1", "new")
        assert eq_ids(blind, "new") == set()

    def test_tokens_are_deterministic_but_blinded_in_transit(self, blind,
                                                             harness):
        """Stored tags are stable per value (that is the equality
        leakage), but the HSM never sees the same element twice."""
        assert blind._token("v") == blind._token("v")
        client = blind._client
        _, b1 = client.blind(b"Sv")
        _, b2 = client.blind(b"Sv")
        assert b1 != b2

    def test_gateway_holds_no_prf_key(self, blind):
        """The tactic instance has only a group description and an HSM
        label — no key material that could derive tokens offline."""
        assert not hasattr(blind, "_key")
        label = blind._hsm_label
        hsm = blind.ctx.keystore.hsm
        # The key exists inside the module and is not exposed by any
        # public API surface.
        assert label in hsm._oprf_keys  # noqa: SLF001 - asserting privacy
        public_attributes = [a for a in dir(hsm)
                             if not a.startswith("_")]
        assert "oprf_evaluate" in public_attributes
        assert all("key" not in a or a in (
            "create_master_key", "destroy_master_key", "has_master_key",
            "create_oprf_key", "generate_wrapped_key", "derive_data_key",
        ) for a in public_attributes)

    def test_cloud_sees_no_plaintext(self, blind, harness):
        blind.insert("d1", "very-secret-diagnosis")
        kv = harness.cloud_instance("blind-index").ctx.kv
        blob = bytearray()
        for name, members in kv._sets.items():
            blob += name + b"".join(members)
        assert b"very-secret-diagnosis" not in bytes(blob)


class TestMiddlewareIntegration:
    def test_pinned_deployment(self, cloud, registry):
        """Retiring DET leaves blind-index as the C4 equality choice."""
        filtered = TacticRegistry()
        for registration in registry.all():
            if registration.name != "det":
                filtered.register(registration.descriptor,
                                  registration.gateway_cls,
                                  registration.cloud_cls)
        blinder = DataBlinder("blindapp", InProcTransport(cloud.host),
                              registry=filtered)
        schema = Schema.define(
            "rec",
            code=("string", FieldAnnotation.parse("C4", "I,EQ")),
        )
        reports = blinder.register_schema(schema)
        assert reports[0].tactics == ["blind-index"]
        records = blinder.entities("rec")
        a = records.insert({"code": "x"})
        records.insert({"code": "y"})
        assert records.find_ids(Eq("code", "x")) == {a}

    def test_default_selection_still_prefers_det(self, registry):
        from repro.core.selection import TacticSelector

        plan = TacticSelector(registry).plan_field(
            "f", FieldAnnotation.parse("C4", "I,EQ")
        )
        assert plan.roles["eq"] == "det"
