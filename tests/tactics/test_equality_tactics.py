"""Equality-search tactics: DET, RND, Mitra, Sophos — full protocols
against a live cloud zone."""

import pytest

from repro.errors import DocumentNotFound


def eq_ids(gateway, value):
    return gateway.resolve_eq(gateway.eq_query(value))


class TestDet:
    @pytest.fixture()
    def det(self, harness):
        return harness.gateway("det")

    def test_insert_and_search(self, det):
        det.insert("d1", "glucose")
        det.insert("d2", "glucose")
        det.insert("d3", "heart-rate")
        assert eq_ids(det, "glucose") == {"d1", "d2"}
        assert eq_ids(det, "heart-rate") == {"d3"}
        assert eq_ids(det, "missing") == set()

    def test_update_moves_entry(self, det):
        det.insert("d1", "old")
        det.update("d1", "old", "new")
        assert eq_ids(det, "old") == set()
        assert eq_ids(det, "new") == {"d1"}

    def test_delete(self, det):
        det.insert("d1", "v")
        det.delete("d1", "v")
        assert eq_ids(det, "v") == set()

    def test_retrieve(self, det):
        det.insert("d1", 42)
        assert det.retrieve("d1") == 42
        with pytest.raises(DocumentNotFound):
            det.retrieve("missing")

    def test_secure_enc_roundtrip(self, det):
        assert det.open(det.seal(6.3)) == 6.3

    def test_deterministic_tokens(self, det):
        assert det.seal("x") == det.seal("x")

    def test_type_sensitivity(self, det):
        det.insert("d1", 1)
        assert eq_ids(det, 1.0) == set()  # 1 and 1.0 are distinct tokens
        assert eq_ids(det, 1) == {"d1"}

    def test_doc_id_generation(self, det):
        ids = {det.generate_doc_id() for _ in range(50)}
        assert len(ids) == 50

    def test_cloud_stores_only_ciphertext(self, det, harness):
        det.insert("d1", "super-secret-value")
        kv = harness.cloud_instance("det").ctx.kv
        all_bytes = b"".join(
            k + v for name, _ in kv._maps.items()
            for k, v in kv.map_items(name)
        )
        assert b"super-secret-value" not in all_bytes


class TestRnd:
    @pytest.fixture()
    def rnd(self, harness):
        return harness.gateway("rnd")

    def test_insert_and_exhaustive_search(self, rnd):
        rnd.insert("d1", "alpha")
        rnd.insert("d2", "beta")
        rnd.insert("d3", "alpha")
        assert eq_ids(rnd, "alpha") == {"d1", "d3"}
        assert eq_ids(rnd, "gamma") == set()

    def test_retrieve(self, rnd):
        rnd.insert("d1", 3.14)
        assert rnd.retrieve("d1") == 3.14
        with pytest.raises(DocumentNotFound):
            rnd.retrieve("nope")

    def test_probabilistic_ciphertexts(self, rnd):
        assert rnd.seal("same") != rnd.seal("same")

    def test_search_transfers_everything(self, rnd, harness):
        for i in range(10):
            rnd.insert(f"d{i}", f"v{i}")
        raw = rnd.eq_query("v0")
        # The inefficiency challenge: the response carries all entries.
        assert len(raw["entries"]) == 10

    def test_cloud_sees_no_plaintext(self, rnd, harness):
        rnd.insert("d1", "very-private")
        kv = harness.cloud_instance("rnd").ctx.kv
        blob = b"".join(v for _, v in kv.map_items(
            harness.cloud_instance("rnd")._map_name))
        assert b"very-private" not in blob


class TestMitra:
    @pytest.fixture()
    def mitra(self, harness):
        return harness.gateway("mitra")

    def test_insert_and_search(self, mitra):
        mitra.insert("d1", "w1")
        mitra.insert("d2", "w1")
        mitra.insert("d3", "w2")
        assert eq_ids(mitra, "w1") == {"d1", "d2"}
        assert eq_ids(mitra, "w2") == {"d3"}
        assert eq_ids(mitra, "never-inserted") == set()

    def test_delete_is_a_masked_tombstone(self, mitra, harness):
        mitra.insert("d1", "w")
        mitra.insert("d2", "w")
        cloud = harness.cloud_instance("mitra")
        before = cloud.ctx.kv.map_size(cloud._map_name)
        mitra.delete("d1", "w")
        # The cloud gained an entry — deletion is indistinguishable from
        # insertion (backward privacy).
        assert cloud.ctx.kv.map_size(cloud._map_name) == before + 1
        assert eq_ids(mitra, "w") == {"d2"}

    def test_reinsert_after_delete(self, mitra):
        mitra.insert("d1", "w")
        mitra.delete("d1", "w")
        mitra.insert("d1", "w")
        assert eq_ids(mitra, "w") == {"d1"}

    def test_update(self, mitra):
        mitra.insert("d1", "old")
        mitra.update("d1", "old", "new")
        assert eq_ids(mitra, "old") == set()
        assert eq_ids(mitra, "new") == {"d1"}

    def test_counter_state_lives_at_gateway(self, mitra, harness):
        mitra.insert("d1", "w")
        # The 'Local storage' challenge: the gateway KV holds counters.
        assert harness.runtime.local_kv.stats()["counters"] >= 1

    def test_addresses_look_random(self, mitra, harness):
        for i in range(5):
            mitra.insert(f"d{i}", "w")
        cloud = harness.cloud_instance("mitra")
        addresses = [k for k, _ in cloud.ctx.kv.map_items(cloud._map_name)]
        assert len(set(addresses)) == 5
        assert all(len(a) == 32 for a in addresses)


class TestSophos:
    @pytest.fixture()
    def sophos(self, harness):
        return harness.gateway("sophos")

    def test_insert_and_search(self, sophos):
        sophos.insert("d1", "kw")
        sophos.insert("d2", "kw")
        sophos.insert("d3", "other")
        assert eq_ids(sophos, "kw") == {"d1", "d2"}
        assert eq_ids(sophos, "other") == {"d3"}

    def test_search_unknown_keyword(self, sophos):
        assert eq_ids(sophos, "never") == set()

    def test_many_insertions_one_keyword(self, sophos):
        expected = set()
        for i in range(12):
            sophos.insert(f"d{i}", "hot")
            expected.add(f"d{i}")
        assert eq_ids(sophos, "hot") == expected

    def test_update_appends_only(self, sophos):
        sophos.insert("d1", "v1")
        sophos.update("d1", "v1", "v2")
        # Addition-only: the old entry remains (filtered by the
        # middleware's verification layer), the new one is present.
        assert eq_ids(sophos, "v2") == {"d1"}
        assert eq_ids(sophos, "v1") == {"d1"}

    def test_token_chain_state_at_gateway(self, sophos, harness):
        sophos.insert("d1", "w")
        assert harness.runtime.local_kv.stats()["strings"] >= 1
