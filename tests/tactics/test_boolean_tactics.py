"""BIEX boolean tactics (2Lev and ZMF variants) and their substrates."""

import pytest

from repro.stores.kv import KeyValueStore
from repro.tactics.twolev import TwoLevClient, TwoLevStore
from repro.tactics.zmf import (
    CountingBloomFilter,
    filter_parameters,
    probe_positions,
)


class TestTwoLev:
    @pytest.fixture()
    def pair(self):
        kv = KeyValueStore()
        return TwoLevClient(b"master-key"), TwoLevStore(kv, b"test")

    def test_insert_lookup_decrypt(self, pair):
        client, store = pair
        token = client.token(b"label")
        store.upsert(token, b"tag1", client.seal_item(b"label", b"doc-1"))
        store.upsert(token, b"tag2", client.seal_item(b"label", b"doc-2"))
        items = store.lookup(token)
        ids = {client.open_item(b"label", enc) for _, enc in items}
        assert ids == {b"doc-1", b"doc-2"}

    def test_refcount_deletion(self, pair):
        client, store = pair
        token = client.token(b"l")
        store.upsert(token, b"t", client.seal_item(b"l", b"d"), +1)
        store.upsert(token, b"t", b"", -1)
        assert store.lookup(token) == []
        assert not store.contains(token, b"t")

    def test_reinsert_revives(self, pair):
        client, store = pair
        token = client.token(b"l")
        enc = client.seal_item(b"l", b"d")
        store.upsert(token, b"t", enc, +1)
        store.upsert(token, b"t", b"", -1)
        store.upsert(token, b"t", enc, +1)
        assert store.contains(token, b"t")

    def test_bucket_size(self, pair):
        client, store = pair
        token = client.token(b"l")
        for i in range(5):
            store.upsert(token, f"t{i}".encode(),
                         client.seal_item(b"l", b"d"))
        store.upsert(token, b"t0", b"", -1)
        assert store.bucket_size(token) == 4

    def test_tokens_hide_labels(self):
        client = TwoLevClient(b"master-key")
        assert b"label" not in client.token(b"label")
        assert client.token(b"a") != client.token(b"b")

    def test_per_label_value_keys(self):
        client = TwoLevClient(b"master-key")
        sealed = client.seal_item(b"label-a", b"data")
        with pytest.raises(Exception):
            client.open_item(b"label-b", sealed)


class TestBloomFilter:
    @pytest.fixture()
    def bloom(self):
        return CountingBloomFilter(KeyValueStore(), b"bf", cells=4096,
                                   probes=5)

    def test_add_contains_remove(self, bloom):
        bloom.add(b"pair-key", b"tag-1")
        assert bloom.contains(b"pair-key", b"tag-1")
        assert not bloom.contains(b"pair-key", b"tag-2")
        assert not bloom.contains(b"other-key", b"tag-1")
        bloom.remove(b"pair-key", b"tag-1")
        assert not bloom.contains(b"pair-key", b"tag-1")

    def test_counting_handles_overlap(self, bloom):
        bloom.add(b"k", b"t1")
        bloom.add(b"k", b"t2")
        bloom.remove(b"k", b"t1")
        assert bloom.contains(b"k", b"t2")

    def test_positions_deterministic_and_bounded(self):
        positions = probe_positions(b"k", b"t", 1000, 7)
        assert positions == probe_positions(b"k", b"t", 1000, 7)
        assert all(0 <= p < 1000 for p in positions)
        assert len(positions) == 7

    def test_false_positive_rate_is_low(self):
        bloom = CountingBloomFilter(KeyValueStore(), b"bf",
                                    cells=1 << 14, probes=7)
        for i in range(200):
            bloom.add(b"key", f"member-{i}".encode())
        false_positives = sum(
            bloom.contains(b"key", f"absent-{i}".encode())
            for i in range(500)
        )
        assert false_positives <= 2

    def test_filter_parameters(self):
        cells, probes = filter_parameters(1000, 1e-6)
        assert cells > 1000
        assert 1 <= probes <= 40

    def test_size_in_bytes(self, bloom):
        assert bloom.size_in_bytes() == 0
        bloom.add(b"k", b"t")
        assert bloom.size_in_bytes() > 0


def bool_ids(gateway, cnf):
    return gateway.resolve_bool(gateway.bool_query(cnf))


@pytest.mark.parametrize("variant", ["biex-2lev", "biex-zmf"])
class TestBiexVariants:
    @pytest.fixture()
    def biex(self, harness, variant):
        gateway = harness.gateway(variant, field="schema._bool")
        # A small corpus of documents with cross-field terms.
        corpus = {
            "d1": [("status", "final"), ("code", "glucose"),
                   ("city", "leuven")],
            "d2": [("status", "final"), ("code", "hr"),
                   ("city", "ghent")],
            "d3": [("status", "prelim"), ("code", "glucose"),
                   ("city", "leuven")],
            "d4": [("status", "final"), ("code", "glucose"),
                   ("city", "ghent")],
        }
        for doc_id, fields in corpus.items():
            gateway.insert_terms(
                doc_id, [gateway.term(f, v) for f, v in fields]
            )
        return gateway

    def test_single_term(self, biex, variant):
        assert bool_ids(biex, [[("status", "final")]]) == {"d1", "d2", "d4"}

    def test_conjunction(self, biex, variant):
        assert bool_ids(biex, [[("status", "final")],
                               [("code", "glucose")]]) == {"d1", "d4"}

    def test_three_way_conjunction(self, biex, variant):
        assert bool_ids(biex, [[("status", "final")],
                               [("code", "glucose")],
                               [("city", "ghent")]]) == {"d4"}

    def test_disjunctive_clause(self, biex, variant):
        assert bool_ids(biex, [[("code", "glucose"), ("code", "hr")]]
                        ) == {"d1", "d2", "d3", "d4"}

    def test_cnf_mixed(self, biex, variant):
        # (status=final OR status=prelim) AND city=leuven
        assert bool_ids(biex, [
            [("status", "final"), ("status", "prelim")],
            [("city", "leuven")],
        ]) == {"d1", "d3"}

    def test_no_match(self, biex, variant):
        assert bool_ids(biex, [[("status", "amended")]]) == set()
        assert bool_ids(biex, [[("status", "final")],
                               [("code", "never")]]) == set()

    def test_eq_query_via_bool_path(self, biex, variant):
        raw = biex.bool_query_terms([[biex.term("status", "prelim")]])
        assert biex.resolve_bool(raw) == {"d3"}

    def test_delete_terms(self, biex, variant):
        terms = [biex.term("status", "final"), biex.term("code", "glucose"),
                 biex.term("city", "leuven")]
        biex.delete_terms("d1", terms)
        assert bool_ids(biex, [[("status", "final")],
                               [("code", "glucose")]]) == {"d4"}

    def test_update_terms(self, biex, variant):
        old = [biex.term("status", "prelim"), biex.term("code", "glucose"),
               biex.term("city", "leuven")]
        new = [biex.term("status", "final"), biex.term("code", "glucose"),
               biex.term("city", "leuven")]
        biex.update_terms("d3", old, new)
        assert bool_ids(biex, [[("status", "final")],
                               [("code", "glucose")]]) == {"d1", "d3", "d4"}
        assert bool_ids(biex, [[("status", "prelim")]]) == set()

    def test_cloud_sees_no_plaintext_terms(self, biex, harness, variant):
        kv = harness.cloud.tactic_instance(
            "testapp", "schema._bool", variant
        ).ctx.kv
        everything = bytearray()
        for name, bucket in kv._maps.items():
            everything += name
            for k, v in bucket.items():
                everything += k + v
        for key in kv.keys():
            everything += key + (kv.get(key) or b"")
        assert b"glucose" not in everything
        assert b"final" not in everything
