"""Property-based SSE protocol tests.

Hypothesis drives random interleavings of insert/delete operations over
random keyword universes against each equality tactic, comparing search
results to a plain dict reference.  This covers orderings the
example-based tests never hit (delete-before-insert, repeated deletes,
many keywords sharing documents).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cloud.server import CloudZone
from repro.core.registry import TacticRegistry
from repro.gateway.service import GatewayRuntime
from repro.net.transport import InProcTransport
from repro.tactics import register_builtin_tactics

KEYWORDS = ["alpha", "beta", "gamma"]
DOCS = [f"d{i}" for i in range(5)]

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.sampled_from(DOCS),
        st.sampled_from(KEYWORDS),
    ),
    max_size=25,
)


@pytest.fixture(scope="module")
def shared_registry():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def fresh_gateway(registry, tactic):
    cloud = CloudZone(registry)
    runtime = GatewayRuntime("prop", InProcTransport(cloud.host), registry)
    return runtime.tactic("doc.f", tactic)


def reference_apply(model, op, doc, keyword):
    bucket = model.setdefault(keyword, set())
    if op == "insert":
        bucket.add(doc)
    else:
        bucket.discard(doc)


class TestDeletableTactics:
    """Tactics with full add/delete support must track the reference
    exactly under arbitrary interleavings."""

    @pytest.mark.parametrize("tactic", ["mitra", "sse-stateless", "det"])
    @given(ops=operations)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    def test_matches_reference(self, shared_registry, tactic, ops):
        gateway = fresh_gateway(shared_registry, tactic)
        model: dict[str, set[str]] = {}
        for op, doc, keyword in ops:
            if op == "insert":
                # The tactics model multi-set semantics differently for
                # duplicate inserts; keep each (doc, kw) pair single.
                if doc in model.get(keyword, set()):
                    continue
                gateway.insert(doc, keyword)
            else:
                if doc not in model.get(keyword, set()):
                    continue
                gateway.delete(doc, keyword)
            reference_apply(model, op, doc, keyword)
        for keyword in KEYWORDS:
            found = gateway.resolve_eq(gateway.eq_query(keyword))
            assert found == model.get(keyword, set()), (tactic, keyword)


class TestAppendOnlyTactics:
    """Sophos has no deletes; inserts must accumulate exactly."""

    @given(ops=st.lists(st.tuples(st.sampled_from(DOCS),
                                  st.sampled_from(KEYWORDS)),
                        max_size=20))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    def test_sophos_accumulates(self, shared_registry, ops):
        gateway = fresh_gateway(shared_registry, "sophos")
        model: dict[str, set[str]] = {}
        for doc, keyword in ops:
            if doc in model.get(keyword, set()):
                continue
            gateway.insert(doc, keyword)
            model.setdefault(keyword, set()).add(doc)
        for keyword in KEYWORDS:
            found = gateway.resolve_eq(gateway.eq_query(keyword))
            assert found == model.get(keyword, set())


class TestBiexDocumentLevel:
    """BIEX document-term updates against a reference corpus."""

    @given(
        corpus=st.dictionaries(
            st.sampled_from(DOCS),
            st.sets(st.sampled_from(KEYWORDS), min_size=1, max_size=3),
            min_size=1, max_size=5,
        ),
        removals=st.sets(st.sampled_from(DOCS), max_size=2),
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    def test_conjunctions_match_reference(self, shared_registry, corpus,
                                          removals):
        gateway = fresh_gateway(shared_registry, "biex-2lev")
        for doc, keywords in corpus.items():
            gateway.insert_terms(
                doc, [gateway.term("kw", k) for k in sorted(keywords)]
            )
        for doc in removals:
            if doc in corpus:
                gateway.delete_terms(
                    doc,
                    [gateway.term("kw", k) for k in sorted(corpus[doc])],
                )
        live = {d: ks for d, ks in corpus.items() if d not in removals}

        for first in KEYWORDS:
            for second in KEYWORDS:
                cnf = [[gateway.term("kw", first)],
                       [gateway.term("kw", second)]]
                found = gateway.resolve_bool(gateway.bool_query_terms(cnf))
                expected = {
                    d for d, ks in live.items()
                    if first in ks and second in ks
                }
                assert found == expected, (first, second)
