"""ShardedTransport unit behaviour: placement, merges, epochs, stats."""

import pytest

from repro.cloud.cluster import CloudCluster
from repro.core.middleware import DataBlinder
from repro.core.query import And, Eq, Range
from repro.core.registry import TacticRegistry
from repro.errors import TransportError
from repro.fhir.model import observation_schema
from repro.net.latency import NetworkStats
from repro.shard.config import ShardConfig
from repro.shard.ring import HashRing
from repro.shard.router import ShardedTransport
from repro.tactics import register_builtin_tactics

APP = "shardapp"


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"f{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose" if i < 6 else "insulin",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


@pytest.fixture()
def deployment():
    registry = fresh_registry()
    cluster = CloudCluster(4, registry=registry)
    router = ShardedTransport(cluster.nodes(),
                              ShardConfig(parallel_fanout=False))
    blinder = DataBlinder(APP, router, registry=registry)
    blinder.register_schema(observation_schema())
    yield cluster, router, blinder
    cluster.close()


class TestConstruction:
    def test_duplicate_node_rejected(self, registry):
        cluster = CloudCluster(["a"], registry=registry)
        transport = cluster.transport("a")
        with pytest.raises(TransportError):
            ShardedTransport([("a", transport), ("a", transport)])

    def test_empty_node_set_rejected(self):
        with pytest.raises(TransportError):
            ShardedTransport([])

    def test_sequence_of_pairs_builds_through_middleware(self, registry):
        cluster = CloudCluster(2, registry=registry)
        blinder = DataBlinder(APP, cluster.nodes(), registry=registry)
        assert isinstance(blinder.runtime.transport.topology_epoch(), int)


class TestPlacement:
    def test_documents_land_on_their_ring_owner(self, deployment):
        cluster, router, blinder = deployment
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(12)]

        ring = HashRing.from_spec(router.ring_spec())
        for doc_id in ids:
            owner = ring.owner(doc_id)
            for name in cluster.names():
                _, documents = cluster.zone(name).application_stores(APP)
                present = doc_id in documents.all_ids()
                assert present == (name == owner)

    def test_doc_keyed_index_entries_colocate(self, deployment):
        cluster, router, blinder = deployment
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(12)]
        ring = HashRing.from_spec(router.ring_spec())

        # DET entries for the effective field sit beside their documents.
        field = "observation.effective"
        for name in cluster.names():
            instance = cluster.zone(name).tactic_instance(APP, field,
                                                          "det")
            stored = {
                key.decode()
                for key, _ in instance.ctx.kv.map_items(instance._by_doc)
            }
            expected = {d for d in ids if ring.owner(d) == name}
            assert stored == expected

    def test_every_shard_holds_some_rows(self, deployment):
        cluster, router, blinder = deployment
        observations = blinder.entities("observation")
        for i in range(32):
            observations.insert(make_doc(i))
        counts = [
            len(cluster.zone(n).application_stores(APP)[1].all_ids())
            for n in cluster.names()
        ]
        assert sum(counts) == 32
        assert all(count > 0 for count in counts)


class TestScatterGather:
    def test_queries_merge_across_shards(self, deployment):
        _, router, blinder = deployment
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(10)]
        observations.update(ids[2], {"value": 20.0})
        assert observations.delete(ids[9])

        def identifiers(doc_ids):
            return sorted(
                observations.get(d)["identifier"] for d in doc_ids
            )

        assert observations.count() == 9
        assert identifiers(observations.find_ids(Eq("status", "final"))) \
            == [0, 2, 4, 6, 8]
        assert identifiers(observations.find_ids(
            And([Eq("status", "final"), Eq("code", "glucose")])
        )) == [0, 2, 4]
        assert identifiers(observations.find_ids(
            Range("effective", 1003, 1007)
        )) == [3, 4, 5, 6, 7]
        assert observations.average("value") == pytest.approx(54.0 / 9.0)
        assert router.scatter_count() > 0

    def test_sorted_scan_merges_in_value_order(self, deployment):
        _, _, blinder = deployment
        observations = blinder.entities("observation")
        for i in range(10):
            observations.insert(make_doc(i))
        values = [
            doc["effective"]
            for doc in observations.find_sorted("effective",
                                                descending=True, limit=4)
        ]
        assert values == [1009, 1008, 1007, 1006]


class TestTopologyEpoch:
    def test_membership_bumps_epoch(self, registry):
        cluster = CloudCluster(2, registry=registry)
        router = ShardedTransport(cluster.nodes())
        assert router.topology_epoch() == 1
        name, transport = cluster.add_zone("zone-9")
        router.begin_join(name, transport)
        epoch_mid = router.topology_epoch()
        assert epoch_mid > 1
        assert router.forwarding_active()
        router.finish_migration()
        assert router.topology_epoch() > epoch_mid
        assert not router.forwarding_active()

    def test_single_node_matches_plain_transport_semantics(self, registry):
        cluster = CloudCluster(1, registry=registry)
        router = ShardedTransport(cluster.nodes())
        blinder = DataBlinder(APP, router, registry=registry)
        blinder.register_schema(observation_schema())
        observations = blinder.entities("observation")
        ids = [observations.insert(make_doc(i)) for i in range(4)]
        assert observations.count() == 4
        assert sorted(
            observations.get(d)["identifier"]
            for d in observations.find_ids(Eq("status", "final"))
        ) == [0, 2]
        assert ids


class TestLabeledStats:
    def test_per_shard_labels_and_roll_up(self, deployment):
        _, router, blinder = deployment
        observations = blinder.entities("observation")
        for i in range(8):
            observations.insert(make_doc(i))

        labeled = router.labeled_stats()
        shard_labels = {k for k in labeled if k.startswith("shard:")}
        assert len(shard_labels) == 4
        assert "router" in labeled
        total = router.stats()
        assert isinstance(total, NetworkStats)
        assert total.messages_sent == sum(
            stats.messages_sent for stats in labeled.values()
        )
        assert all(
            labeled[label].messages_sent > 0 for label in shard_labels
        )

    def test_shard_timings_reach_planner_report(self, deployment):
        _, _, blinder = deployment
        observations = blinder.entities("observation")
        for i in range(6):
            observations.insert(make_doc(i))
        observations.find_ids(Eq("status", "final"))
        timings = blinder.planner_stats("observation")["node_timings"]
        shard_kinds = [k for k in timings if k.startswith("Shard:")]
        assert shard_kinds, timings
