"""``drain_async_writes`` under concurrency.

The durability barrier for quorum-acked replicated writes must be safe
to call from several threads at once, honest about its timeout, and
correct while new quorum writes keep detaching legs behind its back —
including legs detached by the *async* scatter path, which bridges
asyncio tasks into the same barrier.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport
from repro.shard.config import ShardConfig
from repro.shard.ring import HashRing
from repro.shard.router import ShardedTransport

SERVICE = "tactic/app.field/det"


class SlowableNode(Transport):
    """In-memory node whose delay can be changed mid-test."""

    def __init__(self, name: str, delay: float = 0.0):
        self.name = name
        self.delay = delay
        self.lock = threading.Lock()
        self.requests: list[Request] = []

    def _gate(self):
        if self.delay:
            time.sleep(self.delay)

    def call(self, service, method, **kwargs):
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request):
        self._gate()
        with self.lock:
            self.requests.append(request)
        return None

    def call_batch(self, requests):
        requests = list(requests)
        self._gate()
        with self.lock:
            self.requests.extend(requests)
        return [Response(ok=True, result=None) for _ in requests]

    def received(self) -> int:
        with self.lock:
            return len(self.requests)

    def stats(self):
        return NetworkStats()


def build(n=3, replication=2, quorum=1, **kwargs):
    nodes = [SlowableNode(f"zone-{i}") for i in range(n)]
    config = ShardConfig(replication=replication, write_quorum=quorum,
                         **kwargs)
    router = ShardedTransport([(node.name, node) for node in nodes],
                              config)
    return {node.name: node for node in nodes}, router


def docs_owned_by(router, name, count):
    """Doc ids whose ring owner is ``name`` (deterministic per seed)."""
    ring = HashRing.from_spec(router.ring_spec())
    found = []
    i = 0
    while len(found) < count:
        doc_id = f"d{i}"
        if ring.owner(doc_id) == name:
            found.append(doc_id)
        i += 1
    return found


def slow_everyone_but(nodes, owner, delay):
    """Slow every node except ``owner``: for docs owned by ``owner``,
    the quorum ack is fast and every replica leg lingers."""
    for name, node in nodes.items():
        if name != owner:
            node.delay = delay


def insert_doc(doc_id):
    return Request(SERVICE, "insert", {"doc_id": doc_id,
                                       "token": doc_id})


class TestConcurrentDrains:
    def test_many_threads_drain_the_same_backlog(self):
        nodes, router = build()
        try:
            doc_ids = docs_owned_by(router, "zone-0", 12)
            slow_everyone_but(nodes, "zone-0", 0.05)
            router.call_batch([insert_doc(d) for d in doc_ids])
            assert router.pending_async_writes() > 0
            results = []
            errors = []

            def drain():
                try:
                    results.append(router.drain_async_writes(timeout=5.0))
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=drain) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 6
            assert router.pending_async_writes() == 0
            # Every replica leg delivered exactly once.
            total = sum(node.received() for node in nodes.values())
            assert total == 12 * 2
        finally:
            router.close()

    def test_drain_without_backlog_returns_immediately(self):
        _, router = build()
        try:
            started = time.perf_counter()
            assert router.drain_async_writes(timeout=5.0) == 0
            assert time.perf_counter() - started < 0.5
        finally:
            router.close()


class TestDrainTimeout:
    def test_expired_timeout_returns_with_legs_still_pending(self):
        nodes, router = build()
        try:
            doc_ids = docs_owned_by(router, "zone-0", 4)
            slow_everyone_but(nodes, "zone-0", 0.4)
            router.call_batch([insert_doc(d) for d in doc_ids])
            pending_before = router.pending_async_writes()
            assert pending_before > 0
            started = time.perf_counter()
            router.drain_async_writes(timeout=0.05)
            elapsed = time.perf_counter() - started
            # The barrier respected its budget instead of waiting out
            # the 0.4 s replicas...
            assert elapsed < 0.3
            assert router.pending_async_writes() > 0
            # ...and a patient drain still completes the backlog.
            router.drain_async_writes(timeout=5.0)
            assert router.pending_async_writes() == 0
        finally:
            router.close()


class TestDrainRacingNewWrites:
    def test_writes_issued_during_drain_all_settle(self):
        nodes, router = build()
        try:
            doc_ids = docs_owned_by(router, "zone-0", 40)
            slow_everyone_but(nodes, "zone-0", 0.02)
            stop = threading.Event()
            write_errors = []

            def writer():
                i = 0
                while not stop.is_set() and i < 20:
                    try:
                        router.call_batch([insert_doc(doc_ids[i]),
                                           insert_doc(doc_ids[i + 20])])
                    except Exception as error:  # pragma: no cover
                        write_errors.append(error)
                    i += 1

            def drainer():
                while not stop.is_set():
                    router.drain_async_writes(timeout=0.05)

            writer_t = threading.Thread(target=writer)
            drainer_t = threading.Thread(target=drainer)
            writer_t.start()
            drainer_t.start()
            writer_t.join(timeout=30)
            stop.set()
            drainer_t.join(timeout=30)
            assert not writer_t.is_alive() and not drainer_t.is_alive()
            assert not write_errors
            router.drain_async_writes(timeout=10.0)
            assert router.pending_async_writes() == 0
            assert router.async_write_failures() == 0
            total = sum(node.received() for node in nodes.values())
            assert total == 40 * 2  # every leg of every write landed
        finally:
            router.close()


class TestAsyncScatterFeedsTheSameBarrier:
    def test_async_quorum_writes_detach_into_sync_drain(self):
        nodes, router = build()
        try:
            doc_ids = docs_owned_by(router, "zone-0", 8)
            slow_everyone_but(nodes, "zone-0", 0.05)

            async def main():
                responses = await router.call_batch_async(
                    [insert_doc(d) for d in doc_ids]
                )
                assert all(r.ok for r in responses)
                # Quorum acked with replica legs still in flight as
                # loop tasks, bridged to concurrent.futures proxies.
                assert router.pending_async_writes() > 0
                # The *sync* barrier joins them from a worker thread
                # while the loop lives — exactly the ordered-shutdown
                # contract (drain before stopping the loop).
                await asyncio.to_thread(router.drain_async_writes, 5.0)

            asyncio.run(main())
            assert router.pending_async_writes() == 0
            assert router.async_write_failures() == 0
            total = sum(node.received() for node in nodes.values())
            assert total == 8 * 2
        finally:
            router.close()
