"""Parallel write fan-out: concurrent batch scatter, write-quorum
chains, loose-slot concurrency and per-node timing attribution."""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RemoteError, TransportError
from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport
from repro.shard.config import ShardConfig
from repro.shard.ring import HashRing
from repro.shard.router import ShardedTransport

#: A DOC_KEYED tactic service: ``insert`` slots chain-route by doc_id.
SERVICE = "tactic/app.field/det"
DOCS = "docs/app"


class RecordingNode(Transport):
    """In-memory shard node capturing arrival order, with dialable
    latency and failure behaviour."""

    def __init__(self, name: str, delay: float = 0.0):
        self.name = name
        self.delay = delay
        self.dead = False
        self.fail_times = 0
        self.remote_fail_ids: set[str] = set()
        self.lock = threading.Lock()
        self.requests: list[Request] = []
        self.frames: list[list[Request]] = []

    def _gate(self) -> None:
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            if self.dead:
                raise TransportError(f"{self.name} is down")
            if self.fail_times > 0:
                self.fail_times -= 1
                raise TransportError(f"{self.name} flaked")

    def call(self, service, method, **kwargs):
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request):
        self._gate()
        if request.kwargs.get("doc_id") in self.remote_fail_ids:
            raise RemoteError("DocumentNotFound",
                              str(request.kwargs["doc_id"]))
        with self.lock:
            self.requests.append(request)
        return None

    def call_batch(self, requests):
        requests = list(requests)
        self._gate()
        with self.lock:
            self.frames.append(requests)
            self.requests.extend(requests)
        return [Response(ok=True, result=None) for _ in requests]

    def stats(self):
        return NetworkStats()


def build(n: int, config: ShardConfig | None = None, delay: float = 0.0):
    nodes = [RecordingNode(f"zone-{i}", delay=delay) for i in range(n)]
    router = ShardedTransport([(node.name, node) for node in nodes],
                              config or ShardConfig())
    return {node.name: node for node in nodes}, router


def insert_request(i: int) -> Request:
    return Request(SERVICE, "insert", {"doc_id": f"d{i}", "token": i})


class TestParallelBatchScatter:
    def test_batch_visits_shards_concurrently(self):
        nodes, router = build(4, delay=0.05)
        requests = [insert_request(i) for i in range(16)]
        started = time.perf_counter()
        responses = router.call_batch(requests)
        elapsed = time.perf_counter() - started
        try:
            assert all(r.ok for r in responses)
            ring = HashRing.from_spec(router.ring_spec())
            touched = {ring.owner(f"d{i}") for i in range(16)}
            assert len(touched) > 1  # the scatter had something to win
            # Sequentially this costs 50 ms per touched shard; in
            # parallel the slowest leg dominates.
            assert elapsed < 0.05 * len(touched)
            assert sum(len(n.requests) for n in nodes.values()) == 16
        finally:
            router.close()

    def test_sequential_config_unchanged(self):
        nodes, router = build(4, ShardConfig(parallel_fanout=False),
                              delay=0.03)
        requests = [insert_request(i) for i in range(12)]
        started = time.perf_counter()
        responses = router.call_batch(requests)
        elapsed = time.perf_counter() - started
        try:
            assert all(r.ok for r in responses)
            ring = HashRing.from_spec(router.ring_spec())
            touched = {ring.owner(f"d{i}") for i in range(12)}
            # One frame per shard, visited one after the other.
            assert elapsed >= 0.03 * len(touched)
            frames = sum(len(n.frames) for n in nodes.values())
            assert frames == len(touched)
        finally:
            router.close()

    def test_per_shard_slots_travel_in_one_frame_in_order(self):
        nodes, router = build(4)
        requests = [insert_request(i) for i in range(24)]
        router.call_batch(requests)
        try:
            ring = HashRing.from_spec(router.ring_spec())
            for name, node in nodes.items():
                expected = [
                    request for i, request in enumerate(requests)
                    if ring.owner(f"d{i}") == name
                ]
                assert node.requests == expected
                if expected:
                    assert len(node.frames) == 1
        finally:
            router.close()

    def test_response_slots_align_with_request_order(self):
        nodes, router = build(4)
        requests = [insert_request(i) for i in range(8)]
        responses = router.call_batch(requests)
        try:
            assert len(responses) == 8
            assert all(r is not None and r.ok for r in responses)
        finally:
            router.close()


class TestReplicatedBatchChains:
    def test_replicated_slots_reach_every_owner(self):
        nodes, router = build(4, ShardConfig(replication=2))
        requests = [insert_request(i) for i in range(12)]
        responses = router.call_batch(requests)
        try:
            assert all(r.ok for r in responses)
            ring = HashRing.from_spec(router.ring_spec())
            for i, request in enumerate(requests):
                owners = set(ring.owners(f"d{i}", 2))
                for name, node in nodes.items():
                    present = request in node.requests
                    assert present == (name in owners)
        finally:
            router.close()

    def test_chain_grouping_keeps_per_node_slot_order(self):
        nodes, router = build(3, ShardConfig(replication=2))
        requests = [insert_request(i) for i in range(18)]
        router.call_batch(requests)
        try:
            ring = HashRing.from_spec(router.ring_spec())
            for name, node in nodes.items():
                # Per key: the node sees that key's writes in slot order.
                arrivals: dict[str, list[int]] = {}
                for request in node.requests:
                    arrivals.setdefault(
                        request.kwargs["doc_id"], []
                    ).append(request.kwargs["token"])
                for doc_id, tokens in arrivals.items():
                    assert tokens == sorted(tokens)
                    assert name in ring.owners(doc_id, 2)
        finally:
            router.close()


class TestWriteQuorum:
    def _chain_for(self, router, replication=2):
        ring = HashRing.from_spec(router.ring_spec())
        for i in range(256):
            owners = ring.owners(f"d{i}", replication)
            if len(set(owners)) == replication:
                return f"d{i}", owners
        raise AssertionError("no fully replicated key found")

    def test_quorum_one_acks_before_slow_replica(self):
        nodes, router = build(
            3, ShardConfig(replication=2, write_quorum=1)
        )
        key, (primary, replica) = self._chain_for(router)
        nodes[replica].delay = 0.25
        request = Request(SERVICE, "insert", {"doc_id": key, "token": 1})
        started = time.perf_counter()
        router.call_request(request)
        elapsed = time.perf_counter() - started
        try:
            assert elapsed < 0.15  # did not wait for the slow replica
            waited = router.drain_async_writes(timeout=2.0)
            assert waited == 1
            assert request in nodes[replica].requests
            assert router.async_write_failures() == 0
        finally:
            router.close()

    def test_post_ack_replica_retries_until_delivered(self):
        nodes, router = build(3, ShardConfig(
            replication=2, write_quorum=1, async_write_backoff_s=0.001
        ))
        key, (primary, replica) = self._chain_for(router)
        nodes[replica].delay = 0.05  # ack happens before it first fails
        nodes[replica].fail_times = 2
        request = Request(SERVICE, "insert", {"doc_id": key, "token": 1})
        router.call_request(request)
        try:
            router.drain_async_writes(timeout=5.0)
            assert request in nodes[replica].requests
            assert router.async_write_failures() == 0
            assert router._async_retries >= 2
        finally:
            router.close()

    def test_strict_quorum_fails_on_dead_replica(self):
        nodes, router = build(
            3, ShardConfig(replication=2, write_quorum=2)
        )
        key, (primary, replica) = self._chain_for(router)
        nodes[replica].dead = True
        try:
            with pytest.raises(TransportError):
                router.call_request(
                    Request(SERVICE, "insert", {"doc_id": key, "token": 1})
                )
        finally:
            router.close()

    def test_legacy_mode_swallows_replica_failure(self):
        nodes, router = build(3, ShardConfig(replication=2))
        key, (primary, replica) = self._chain_for(router)
        nodes[replica].dead = True
        request = Request(SERVICE, "insert", {"doc_id": key, "token": 1})
        try:
            router.call_request(request)  # no raise: primary delivered
            assert request in nodes[primary].requests
            assert router.replica_error_count() >= 1
        finally:
            router.close()

    def test_primary_hard_failure_propagates(self):
        nodes, router = build(
            3, ShardConfig(replication=2, write_quorum=1)
        )
        key, (primary, replica) = self._chain_for(router)
        nodes[primary].dead = True
        nodes[replica].delay = 0.1  # primary's failure lands first
        try:
            with pytest.raises(TransportError):
                router.call_request(
                    Request(SERVICE, "insert", {"doc_id": key, "token": 1})
                )
        finally:
            router.close()

    def test_close_drains_async_writes(self):
        nodes, router = build(
            3, ShardConfig(replication=2, write_quorum=1)
        )
        key, (primary, replica) = self._chain_for(router)
        nodes[replica].delay = 0.1
        request = Request(SERVICE, "insert", {"doc_id": key, "token": 1})
        router.call_request(request)
        router.close()
        assert request in nodes[replica].requests
        # Done-callbacks fire just after waiters wake; poll briefly.
        deadline = time.monotonic() + 1.0
        while router.pending_async_writes() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert router.pending_async_writes() == 0


class TestLooseSlots:
    def test_read_slots_fan_out_concurrently(self):
        nodes, router = build(4, delay=0.05)
        ring = HashRing.from_spec(router.ring_spec())
        # One get per node so the loose fan-out has 4 distinct targets.
        picks: dict[str, str] = {}
        for i in range(256):
            picks.setdefault(ring.owner(f"d{i}"), f"d{i}")
            if len(picks) == 4:
                break
        requests = [
            Request(DOCS, "get", {"doc_id": doc_id})
            for doc_id in picks.values()
        ]
        started = time.perf_counter()
        responses = router.call_batch(requests)
        elapsed = time.perf_counter() - started
        try:
            assert len(responses) == len(requests)
            assert all(r.ok for r in responses)
            assert elapsed < 0.05 * len(requests)
        finally:
            router.close()

    def test_per_slot_error_isolation_under_concurrency(self):
        nodes, router = build(4)
        ring = HashRing.from_spec(router.ring_spec())
        doc_ids = [f"d{i}" for i in range(8)]
        bad = doc_ids[3]
        nodes[ring.owner(bad)].remote_fail_ids.add(bad)
        requests = [
            Request(DOCS, "get", {"doc_id": doc_id})
            for doc_id in doc_ids
        ]
        responses = router.call_batch(requests)
        try:
            for doc_id, response in zip(doc_ids, responses):
                if doc_id == bad:
                    assert not response.ok
                    assert response.error_type == "DocumentNotFound"
                else:
                    assert response.ok
        finally:
            router.close()

    def test_mutating_loose_slots_stay_sequential(self):
        # ``setup`` slots are loose (no shard key) and mutating; they
        # must not race each other even under parallel fan-out.
        nodes, router = build(2, delay=0.02)
        requests = [
            Request(SERVICE, "setup", {"round": i}) for i in range(3)
        ]
        started = time.perf_counter()
        responses = router.call_batch(requests)
        elapsed = time.perf_counter() - started
        try:
            assert all(r.ok for r in responses)
            # Each setup broadcast costs one (parallel) 20 ms round
            # trip; racing the slots would overlap those windows.
            assert elapsed >= 0.02 * len(requests)
        finally:
            router.close()


class TestTimingAttribution:
    def test_parallel_rows_max_merge_per_node(self):
        _, router = build(1)
        try:
            router.drain_shard_timings()
            router._record_parallel_timings(
                [("a", 0.2), ("a", 0.5), ("b", 0.1)]
            )
            assert sorted(router.drain_shard_timings()) == [
                ("a", 0.5), ("b", 0.1)
            ]
        finally:
            router.close()

    def test_scatter_batch_records_each_node_once(self):
        nodes, router = build(4)
        requests = [insert_request(i) for i in range(16)]
        router.drain_shard_timings()
        router.call_batch(requests)
        try:
            rows = router.drain_shard_timings()
            names = [name for name, _ in rows]
            assert len(names) == len(set(names))
            ring = HashRing.from_spec(router.ring_spec())
            assert set(names) == {ring.owner(f"d{i}") for i in range(16)}
        finally:
            router.close()


class TestOrderingProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        picks=st.lists(st.integers(min_value=0, max_value=7),
                       min_size=1, max_size=40),
        shards=st.sampled_from([2, 4]),
        replication=st.sampled_from([1, 2]),
    )
    def test_per_key_write_order_survives_parallel_scatter(
        self, picks, shards, replication
    ):
        nodes, router = build(
            shards, ShardConfig(replication=replication)
        )
        try:
            requests = [
                Request(SERVICE, "insert",
                        {"doc_id": f"k{key}", "token": seq})
                for seq, key in enumerate(picks)
            ]
            # Split into frames of 8 (batches run back to back).
            for offset in range(0, len(requests), 8):
                responses = router.call_batch(requests[offset:offset + 8])
                assert all(r.ok for r in responses)
            for node in nodes.values():
                per_key: dict[str, list[int]] = {}
                for request in node.requests:
                    per_key.setdefault(
                        request.kwargs["doc_id"], []
                    ).append(request.kwargs["token"])
                for tokens in per_key.values():
                    assert tokens == sorted(tokens)
        finally:
            router.close()
