"""Consistent hash ring: determinism, distribution, minimal movement."""

import pytest

from repro.shard.ring import HashRing, spec_ring

NODES = ["alpha", "beta", "gamma", "delta"]
KEYS = [f"doc-{i}" for i in range(400)]


class TestDeterminism:
    def test_same_spec_same_placement(self):
        a = HashRing(NODES, vnodes=32, seed=7)
        b = HashRing(reversed(NODES), vnodes=32, seed=7)
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_seed_changes_placement(self):
        a = HashRing(NODES, seed=1)
        b = HashRing(NODES, seed=2)
        assert [a.owner(k) for k in KEYS] != [b.owner(k) for k in KEYS]

    def test_str_and_bytes_keys_agree(self):
        ring = HashRing(NODES)
        assert ring.owner("doc-1") == ring.owner(b"doc-1")


class TestOwnership:
    def test_every_node_owns_some_keys(self):
        ring = HashRing(NODES, vnodes=64)
        owners = {ring.owner(k) for k in KEYS}
        assert owners == set(NODES)

    def test_owners_are_distinct_nodes(self):
        ring = HashRing(NODES)
        for key in KEYS[:50]:
            owners = ring.owners(key, 3)
            assert len(owners) == len(set(owners)) == 3
            assert owners[0] == ring.owner(key)

    def test_owner_count_clamped_to_ring_size(self):
        ring = HashRing(["solo"])
        assert ring.owners("k", 5) == ["solo"]

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            HashRing([]).owner("k")


class TestMinimalMovement:
    def test_join_moves_only_toward_joiner(self):
        before = HashRing(NODES, vnodes=64, seed=3)
        after = HashRing(NODES + ["epsilon"], vnodes=64, seed=3)
        moved = [k for k in KEYS if before.owner(k) != after.owner(k)]
        # Everything that moved, moved to the new node — and roughly
        # 1/(N+1) of the keyspace, not all of it.
        assert moved
        assert all(after.owner(k) == "epsilon" for k in moved)
        assert len(moved) < len(KEYS) / 2

    def test_leave_moves_only_departed_keys(self):
        before = HashRing(NODES, vnodes=64, seed=3)
        after = HashRing(NODES[:-1], vnodes=64, seed=3)
        for key in KEYS:
            if before.owner(key) != "delta":
                assert after.owner(key) == before.owner(key)


class TestSpec:
    def test_round_trip(self):
        ring = HashRing(NODES, vnodes=16, seed=9)
        rebuilt = HashRing.from_spec(ring.spec())
        assert [rebuilt.owner(k) for k in KEYS] == [
            ring.owner(k) for k in KEYS
        ]

    def test_spec_ring_carries_origin(self):
        ring = HashRing(NODES)
        rebuilt, origin = spec_ring(ring.spec(self_node="beta"))
        assert origin == "beta"
        assert rebuilt.nodes() == ring.nodes()

    def test_spec_without_self_has_no_origin(self):
        _, origin = spec_ring(HashRing(NODES).spec())
        assert origin is None
