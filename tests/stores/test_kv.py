"""Redis-like KV store: all four namespaces plus persistence."""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.errors import StoreError
from repro.stores.kv import KeyValueStore


@pytest.fixture()
def store():
    return KeyValueStore()


class TestStrings:
    def test_put_get(self, store):
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_missing_returns_default(self, store):
        assert store.get(b"nope") is None
        assert store.get(b"nope", b"fallback") == b"fallback"

    def test_overwrite(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self, store):
        store.put(b"k", b"v")
        assert store.delete(b"k")
        assert not store.delete(b"k")
        assert not store.exists(b"k")

    def test_keys_and_scan(self, store):
        store.put(b"a/1", b"x")
        store.put(b"a/2", b"y")
        store.put(b"b/1", b"z")
        assert sorted(store.keys()) == [b"a/1", b"a/2", b"b/1"]
        assert sorted(k for k, _ in store.scan(b"a/")) == [b"a/1", b"a/2"]


class TestMaps:
    def test_put_get_delete(self, store):
        store.map_put(b"m", b"f", b"v")
        assert store.map_get(b"m", b"f") == b"v"
        assert store.map_size(b"m") == 1
        assert store.map_delete(b"m", b"f")
        assert not store.map_delete(b"m", b"f")
        assert store.map_get(b"m", b"f") is None

    def test_items(self, store):
        store.map_put(b"m", b"a", b"1")
        store.map_put(b"m", b"b", b"2")
        assert dict(store.map_items(b"m")) == {b"a": b"1", b"b": b"2"}

    def test_empty_map_is_removed(self, store):
        store.map_put(b"m", b"f", b"v")
        store.map_delete(b"m", b"f")
        assert store.stats()["maps"] == 0


class TestSets:
    def test_add_remove(self, store):
        assert store.set_add(b"s", b"x")
        assert not store.set_add(b"s", b"x")  # already present
        assert store.set_contains(b"s", b"x")
        assert store.set_members(b"s") == {b"x"}
        assert store.set_remove(b"s", b"x")
        assert not store.set_remove(b"s", b"x")
        assert store.set_size(b"s") == 0


class TestCounters:
    def test_increment(self, store):
        assert store.counter_increment(b"c") == 1
        assert store.counter_increment(b"c", 5) == 6
        assert store.counter_get(b"c") == 6

    def test_set(self, store):
        store.counter_set(b"c", 42)
        assert store.counter_get(b"c") == 42

    def test_missing_counter_is_zero(self, store):
        assert store.counter_get(b"nope") == 0


class TestMetricsAndReset:
    def test_size_in_bytes_grows(self, store):
        before = store.size_in_bytes()
        store.put(b"key", b"x" * 100)
        assert store.size_in_bytes() >= before + 100

    def test_flush_all(self, store):
        store.put(b"k", b"v")
        store.set_add(b"s", b"m")
        store.counter_increment(b"c")
        store.flush_all()
        stats = store.stats()
        assert stats["strings"] == stats["sets"] == stats["counters"] == 0


class TestPersistence:
    def test_restart_recovers_everything(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store.put(b"k", b"v")
        store.map_put(b"m", b"f", b"v2")
        store.set_add(b"s", b"member")
        store.counter_increment(b"c", 7)
        store.close()

        recovered = KeyValueStore(tmp_path)
        assert recovered.get(b"k") == b"v"
        assert recovered.map_get(b"m", b"f") == b"v2"
        assert recovered.set_contains(b"s", b"member")
        assert recovered.counter_get(b"c") == 7

    def test_log_replay_without_close(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store.put(b"k", b"v")
        store.sync()  # flush the WAL but do not snapshot
        recovered = KeyValueStore(tmp_path)
        assert recovered.get(b"k") == b"v"

    def test_deletions_survive_restart(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store.put(b"k", b"v")
        store.delete(b"k")
        store.close()
        assert KeyValueStore(tmp_path).get(b"k") is None


class TestConcurrency:
    def test_parallel_counter_increments(self, store):
        def bump():
            for _ in range(200):
                store.counter_increment(b"c")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.counter_get(b"c") == 800


@given(entries=st.dictionaries(st.binary(min_size=1, max_size=8),
                               st.binary(max_size=16), max_size=20))
def test_property_store_matches_dict(entries):
    store = KeyValueStore()
    for key, value in entries.items():
        store.put(key, value)
    for key, value in entries.items():
        assert store.get(key) == value
    assert sorted(store.keys()) == sorted(entries)


def test_apply_record_rejects_unknown_op():
    store = KeyValueStore()
    with pytest.raises(StoreError):
        store.apply_record({"op": "bogus"})
