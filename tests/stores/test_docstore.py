"""Mongo-like document store: CRUD, filter language, indexes."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DocumentNotFound, StoreError
from repro.stores.docstore import DocumentStore, matches


@pytest.fixture()
def store():
    s = DocumentStore(indexed_fields=("tag",))
    s.insert({"_id": "a", "tag": "red", "n": 1, "nested": {"x": 10}})
    s.insert({"_id": "b", "tag": "red", "n": 5})
    s.insert({"_id": "c", "tag": "blue", "n": 9})
    return s


class TestCrud:
    def test_insert_get(self, store):
        assert store.get("a")["n"] == 1

    def test_get_returns_copy(self, store):
        doc = store.get("a")
        doc["n"] = 999
        assert store.get("a")["n"] == 1

    def test_missing_raises(self, store):
        with pytest.raises(DocumentNotFound):
            store.get("zz")

    def test_duplicate_id_rejected(self, store):
        with pytest.raises(StoreError):
            store.insert({"_id": "a"})

    def test_requires_string_id(self):
        store = DocumentStore()
        with pytest.raises(StoreError):
            store.insert({"_id": 5})
        with pytest.raises(StoreError):
            store.insert({"no_id": True})

    def test_replace(self, store):
        store.replace({"_id": "a", "tag": "green", "n": 2})
        assert store.get("a") == {"_id": "a", "tag": "green", "n": 2}

    def test_replace_missing_raises(self, store):
        with pytest.raises(DocumentNotFound):
            store.replace({"_id": "zz"})

    def test_delete(self, store):
        assert store.delete("a")
        assert not store.delete("a")
        assert len(store) == 2

    def test_get_many_skips_missing(self, store):
        docs = store.get_many(["a", "zz", "c"])
        assert [d["_id"] for d in docs] == ["a", "c"]

    def test_contains(self, store):
        assert store.contains("a") and not store.contains("zz")


class TestQueries:
    def test_equality(self, store):
        assert {d["_id"] for d in store.find({"tag": "red"})} == {"a", "b"}

    def test_comparison_operators(self, store):
        assert {d["_id"] for d in store.find({"n": {"$gt": 1}})} == {"b", "c"}
        assert {d["_id"] for d in store.find({"n": {"$gte": 5, "$lt": 9}})
                } == {"b"}
        assert {d["_id"] for d in store.find({"n": {"$in": [1, 9]}})
                } == {"a", "c"}
        assert {d["_id"] for d in store.find({"n": {"$ne": 5}})} == {"a", "c"}

    def test_logical_operators(self, store):
        assert {d["_id"] for d in store.find(
            {"$or": [{"n": 1}, {"n": 9}]}
        )} == {"a", "c"}
        assert {d["_id"] for d in store.find(
            {"$and": [{"tag": "red"}, {"n": {"$gt": 1}}]}
        )} == {"b"}
        assert {d["_id"] for d in store.find(
            {"$not": {"tag": "red"}}
        )} == {"c"}

    def test_dotted_paths(self, store):
        assert [d["_id"] for d in store.find({"nested.x": 10})] == ["a"]

    def test_exists(self, store):
        assert [d["_id"] for d in store.find({"nested": {"$exists": True}})
                ] == ["a"]

    def test_limit(self, store):
        assert len(store.find({"tag": "red"}, limit=1)) == 1

    def test_count(self, store):
        assert store.count() == 3
        assert store.count({"tag": "red"}) == 2

    def test_unknown_operator_raises(self, store):
        with pytest.raises(StoreError):
            store.find({"n": {"$regex": "x"}})
        with pytest.raises(StoreError):
            store.find({"$bogus": []})

    def test_type_mismatch_is_no_match(self, store):
        assert store.find({"tag": {"$gt": 5}}) == []


class TestIndexes:
    def test_index_accelerated_candidates(self, store):
        assert store._candidate_ids({"tag": "red"}) == ["a", "b"]

    def test_index_maintained_on_replace(self, store):
        store.replace({"_id": "a", "tag": "blue", "n": 1})
        assert {d["_id"] for d in store.find({"tag": "blue"})} == {"a", "c"}

    def test_index_maintained_on_delete(self, store):
        store.delete("c")
        assert store.find({"tag": "blue"}) == []

    def test_bytes_values_are_indexable(self):
        store = DocumentStore(indexed_fields=("token",))
        store.insert({"_id": "x", "token": b"\x01\x02"})
        assert [d["_id"] for d in store.find({"token": b"\x01\x02"})] == ["x"]


class TestPersistence:
    def test_restart_recovers_documents(self, tmp_path):
        store = DocumentStore(tmp_path, indexed_fields=("tag",))
        store.insert({"_id": "a", "tag": "red", "blob": b"\x00\xff"})
        store.insert({"_id": "b", "tag": "blue"})
        store.delete("b")
        store.close()

        recovered = DocumentStore(tmp_path, indexed_fields=("tag",))
        assert len(recovered) == 1
        assert recovered.get("a")["blob"] == b"\x00\xff"
        assert [d["_id"] for d in recovered.find({"tag": "red"})] == ["a"]

    def test_replay_without_snapshot(self, tmp_path):
        store = DocumentStore(tmp_path)
        store.insert({"_id": "a", "v": 1})
        store.sync()
        assert DocumentStore(tmp_path).get("a")["v"] == 1


class TestMetrics:
    def test_size_in_bytes(self, store):
        assert store.size_in_bytes() > 0

    def test_iter_documents(self, store):
        assert len(list(store.iter_documents())) == 3


@given(n=st.integers(min_value=-100, max_value=100))
def test_matches_range_property(n):
    doc = {"n": n}
    assert matches(doc, {"n": {"$gte": 0}}) == (n >= 0)
    assert matches(doc, {"n": {"$lt": 50}}) == (n < 50)
