"""Inverted text index (the Elasticsearch role)."""

import pytest
from hypothesis import given, strategies as st

from repro.stores.inverted import InvertedIndex, tokenize


class TestTokenizer:
    def test_basic(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!! ...") == []

    @given(text=st.text(max_size=100))
    def test_tokens_are_normalised(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()


@pytest.fixture()
def index():
    idx = InvertedIndex()
    idx.index("d1", "patient admitted with gastric cancer")
    idx.index("d2", "patient discharged, cancer in remission")
    idx.index("d3", "routine checkup, blood pressure normal")
    return idx


class TestSearch:
    def test_single_term(self, index):
        hits = index.search("cancer")
        assert {h.doc_id for h in hits} == {"d1", "d2"}

    def test_ranking_prefers_rare_terms(self, index):
        hits = index.search("patient gastric")
        assert hits[0].doc_id == "d1"  # only d1 has the rare term

    def test_disjunctive_by_default(self, index):
        hits = index.search("cancer checkup")
        assert {h.doc_id for h in hits} == {"d1", "d2", "d3"}

    def test_require_all(self, index):
        hits = index.search("patient cancer", require_all=True)
        assert {h.doc_id for h in hits} == {"d1", "d2"}
        assert index.search("patient blood", require_all=True) == []

    def test_case_insensitive(self, index):
        assert index.search("CANCER")

    def test_limit(self, index):
        assert len(index.search("patient cancer checkup", limit=2)) == 2

    def test_no_match(self, index):
        assert index.search("unicorn") == []
        assert index.search("") == []

    def test_scores_are_positive_and_sorted(self, index):
        hits = index.search("patient cancer")
        assert all(h.score > 0 for h in hits)
        assert [h.score for h in hits] == sorted(
            (h.score for h in hits), reverse=True
        )


class TestMaintenance:
    def test_reindex_replaces(self, index):
        index.index("d1", "completely different content now")
        assert index.search("gastric") == []
        assert {h.doc_id for h in index.search("different")} == {"d1"}

    def test_remove(self, index):
        assert index.remove("d2")
        assert not index.remove("d2")
        assert {h.doc_id for h in index.search("cancer")} == {"d1"}
        assert len(index) == 2

    def test_document_frequency(self, index):
        assert index.document_frequency("cancer") == 2
        assert index.document_frequency("CANCER") == 2
        assert index.document_frequency("unicorn") == 0

    def test_terms_listing(self, index):
        assert "cancer" in index.terms()


@given(corpus=st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.lists(st.sampled_from(["apple", "banana", "cherry"]), min_size=1,
             max_size=5),
    min_size=1, max_size=4,
))
def test_search_matches_reference(corpus):
    index = InvertedIndex()
    for doc_id, words in corpus.items():
        index.index(doc_id, " ".join(words))
    for term in ("apple", "banana", "cherry"):
        expected = {d for d, words in corpus.items() if term in words}
        assert {h.doc_id for h in index.search(term, limit=100)} == expected
