"""Write-ahead log: replay, torn tails, snapshot compaction."""

import json

import pytest

from repro.errors import StoreError
from repro.stores.kv import KeyValueStore
from repro.stores.persistence import WriteAheadLog, _decode_bytes, _encode_bytes


class TestCodec:
    def test_bytes_roundtrip(self):
        record = {"op": "put", "k": b"\x00\xff", "nested": [b"a", {"v": b"b"}]}
        assert _decode_bytes(_encode_bytes(record)) == record

    def test_plain_values_untouched(self):
        record = {"n": 1, "f": 2.5, "s": "text", "b": True, "x": None}
        assert _decode_bytes(_encode_bytes(record)) == record


class TestWal:
    def test_append_and_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.append({"op": "a", "v": 1})
        wal.append({"op": "b", "v": b"\x01"})
        wal.close()
        replayed = list(WriteAheadLog(tmp_path, "t").replay())
        assert replayed == [{"op": "a", "v": 1}, {"op": "b", "v": b"\x01"}]

    def test_torn_tail_is_tolerated(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.append({"op": "a"})
        wal.append({"op": "b"})
        wal.close()
        # Simulate a crash mid-write: append garbage to the log tail.
        with open(wal.log_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "c", "trunc')
        replayed = list(WriteAheadLog(tmp_path, "t").replay())
        assert replayed == [{"op": "a"}, {"op": "b"}]

    def test_snapshot_truncates_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.append({"op": "a"})
        wal.write_snapshot({"state": [1, 2, 3]})
        assert not wal.log_path.exists()
        fresh = WriteAheadLog(tmp_path, "t")
        assert fresh.load_snapshot() == {"state": [1, 2, 3]}
        assert list(fresh.replay()) == []

    def test_corrupt_snapshot_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.write_snapshot({"ok": True})
        wal.snapshot_path.write_text("{broken json", encoding="utf-8")
        with pytest.raises(StoreError):
            WriteAheadLog(tmp_path, "t").load_snapshot()

    def test_missing_snapshot_is_none(self, tmp_path):
        assert WriteAheadLog(tmp_path, "t").load_snapshot() is None

    def test_flush_every_batches_fsync(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t", flush_every=1000)
        wal.append({"op": "a"})
        assert wal._pending == 1
        wal.sync()
        assert wal._pending == 0


class TestCompaction:
    def test_auto_compaction_threshold(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store._wal.compact_after = 10  # small threshold for the test
        for i in range(25):
            store.put(f"k{i}".encode(), b"v")
        # Compaction ran at least once (log restarted since), and the
        # flushed state recovers fully.
        store.sync()
        recovered = KeyValueStore(tmp_path)
        assert len(recovered.keys()) == 25
        assert recovered._wal.load_snapshot() is not None

    def test_snapshot_plus_log_recovery(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store.put(b"snapshotted", b"1")
        store._wal.write_snapshot(store.snapshot_state())
        store.put(b"logged", b"2")
        store.sync()
        recovered = KeyValueStore(tmp_path)
        assert recovered.get(b"snapshotted") == b"1"
        assert recovered.get(b"logged") == b"2"


class TestCrashMidCompaction:
    """Recovery straddling the snapshot/log-removal crash window.

    Compaction is two filesystem steps: ``os.replace`` of the snapshot,
    then ``os.remove`` of the log.  A crash in between leaves a snapshot
    that already covers every log record; replay must not apply those
    records a second time (counter increments are not idempotent).
    """

    def test_stale_log_is_not_double_applied(self, tmp_path):
        store = KeyValueStore(tmp_path)
        for _ in range(3):
            store.counter_increment(b"hits")
        store.put(b"k", b"v1")
        store.sync()
        stale_log = store._wal.log_path.read_text(encoding="utf-8")

        # Compaction step 1 (snapshot replace) succeeded...
        store._wal.write_snapshot(store.snapshot_state())
        # ...but the crash hit before step 2 (log removal).
        store._wal.log_path.write_text(stale_log, encoding="utf-8")
        store.close()

        recovered = KeyValueStore(tmp_path)
        assert recovered.counter_get(b"hits") == 3
        assert recovered.get(b"k") == b"v1"

    def test_post_snapshot_records_still_replay(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store.counter_increment(b"hits")
        store.sync()
        stale_log = store._wal.log_path.read_text(encoding="utf-8")

        store._wal.write_snapshot(store.snapshot_state())
        # Crash window: stale pre-snapshot records resurface *and* new
        # writes land after them in the same log file.
        store._wal.log_path.write_text(stale_log, encoding="utf-8")
        store.counter_increment(b"hits")
        store.sync()
        store.close()

        recovered = KeyValueStore(tmp_path)
        assert recovered.counter_get(b"hits") == 2

    def test_torn_tail_after_snapshot(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store.put(b"a", b"1")
        store._wal.write_snapshot(store.snapshot_state())
        store.put(b"b", b"2")
        store.sync()
        with open(store._wal.log_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "put", "tor')
        store.close()

        recovered = KeyValueStore(tmp_path)
        assert recovered.get(b"a") == b"1"
        assert recovered.get(b"b") == b"2"


class TestBytesKeyedRecovery:
    """Non-UTF-8 byte keys survive the snapshot+log round trip."""

    RAW = b"\x00\xff\xfe"

    def test_bytes_keys_survive_snapshot_and_log(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store.put(self.RAW, b"\x80plain")
        store.map_put(b"m\x00ap", self.RAW, b"\x81field")
        store.set_add(b"s\xffet", self.RAW)
        store.counter_increment(b"c\x00nt", 7)
        store._wal.write_snapshot(store.snapshot_state())
        # Post-snapshot writes exercise the log path with raw bytes too.
        store.put(self.RAW + b"2", b"\x82late")
        store.map_put(b"m\x00ap", self.RAW + b"2", b"\x83late")
        store.sync()
        store.close()

        recovered = KeyValueStore(tmp_path)
        assert recovered.get(self.RAW) == b"\x80plain"
        assert recovered.get(self.RAW + b"2") == b"\x82late"
        assert recovered.map_get(b"m\x00ap", self.RAW) == b"\x81field"
        assert recovered.map_get(b"m\x00ap", self.RAW + b"2") == b"\x83late"
        assert self.RAW in recovered.set_members(b"s\xffet")
        assert recovered.counter_get(b"c\x00nt") == 7

    def test_log_only_bytes_keys(self, tmp_path):
        with KeyValueStore(tmp_path) as store:
            store.put(self.RAW, b"v")
        assert KeyValueStore(tmp_path).get(self.RAW) == b"v"


class TestLegacySnapshot:
    """Snapshots written before the ``__wal_seq__`` watermark scheme.

    A legacy snapshot is the bare state dict, unwrapped: loading one
    must reset ``last_snapshot_seq`` to 0 so the *whole* log replays —
    legacy logs carry no ``_seq`` stamps to skip by — while stamped
    records appended afterwards still apply exactly once.
    """

    @staticmethod
    def _unwrap_snapshot(wal: WriteAheadLog) -> None:
        """Rewrite the snapshot file in the pre-watermark format."""
        wrapped = json.loads(wal.snapshot_path.read_text(encoding="utf-8"))
        assert "__wal_seq__" in wrapped and "state" in wrapped
        wal.snapshot_path.write_text(
            json.dumps(wrapped["state"]), encoding="utf-8"
        )

    def test_legacy_snapshot_loads_with_zero_watermark(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.append({"op": "a"})
        wal.write_snapshot({"state": [1, 2]})
        self._unwrap_snapshot(wal)
        fresh = WriteAheadLog(tmp_path, "t")
        assert fresh.load_snapshot() == {"state": [1, 2]}
        assert fresh.last_snapshot_seq == 0

    def test_recovery_applies_post_snapshot_records_once(self, tmp_path):
        store = KeyValueStore(tmp_path)
        for _ in range(3):
            store.counter_increment(b"hits")
        store._wal.write_snapshot(store.snapshot_state())
        self._unwrap_snapshot(store._wal)
        # Stamped records land after the (now-legacy) snapshot.
        store.counter_increment(b"hits")
        store.put(b"k", b"v")
        store.sync()  # sync without close: no fresh snapshot is written

        recovered = KeyValueStore(tmp_path)
        assert recovered._wal.last_snapshot_seq == 0
        # Snapshot state (3) plus the logged increment, applied once.
        assert recovered.counter_get(b"hits") == 4
        assert recovered.get(b"k") == b"v"

    def test_recovered_sequence_continues_from_log_high_water(
        self, tmp_path
    ):
        store = KeyValueStore(tmp_path)
        store.put(b"a", b"1")
        store._wal.write_snapshot(store.snapshot_state())
        self._unwrap_snapshot(store._wal)
        store.put(b"b", b"2")
        store.sync()
        high_water = store.wal_sequence()

        recovered = KeyValueStore(tmp_path)
        # The legacy snapshot resets the *watermark*, not the sequence:
        # replay restores the high-water mark from the stamped log so
        # new appends never reuse sequence numbers.
        assert recovered.wal_sequence() == high_water
        recovered.put(b"c", b"3")
        assert recovered.wal_sequence() == high_water + 1


class TestContextManager:
    def test_with_block_closes(self, tmp_path):
        with KeyValueStore(tmp_path) as store:
            store.put(b"k", b"v")
        assert KeyValueStore(tmp_path).get(b"k") == b"v"
