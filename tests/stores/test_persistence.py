"""Write-ahead log: replay, torn tails, snapshot compaction."""

import json

import pytest

from repro.errors import StoreError
from repro.stores.kv import KeyValueStore
from repro.stores.persistence import WriteAheadLog, _decode_bytes, _encode_bytes


class TestCodec:
    def test_bytes_roundtrip(self):
        record = {"op": "put", "k": b"\x00\xff", "nested": [b"a", {"v": b"b"}]}
        assert _decode_bytes(_encode_bytes(record)) == record

    def test_plain_values_untouched(self):
        record = {"n": 1, "f": 2.5, "s": "text", "b": True, "x": None}
        assert _decode_bytes(_encode_bytes(record)) == record


class TestWal:
    def test_append_and_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.append({"op": "a", "v": 1})
        wal.append({"op": "b", "v": b"\x01"})
        wal.close()
        replayed = list(WriteAheadLog(tmp_path, "t").replay())
        assert replayed == [{"op": "a", "v": 1}, {"op": "b", "v": b"\x01"}]

    def test_torn_tail_is_tolerated(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.append({"op": "a"})
        wal.append({"op": "b"})
        wal.close()
        # Simulate a crash mid-write: append garbage to the log tail.
        with open(wal.log_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "c", "trunc')
        replayed = list(WriteAheadLog(tmp_path, "t").replay())
        assert replayed == [{"op": "a"}, {"op": "b"}]

    def test_snapshot_truncates_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.append({"op": "a"})
        wal.write_snapshot({"state": [1, 2, 3]})
        assert not wal.log_path.exists()
        fresh = WriteAheadLog(tmp_path, "t")
        assert fresh.load_snapshot() == {"state": [1, 2, 3]}
        assert list(fresh.replay()) == []

    def test_corrupt_snapshot_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t")
        wal.write_snapshot({"ok": True})
        wal.snapshot_path.write_text("{broken json", encoding="utf-8")
        with pytest.raises(StoreError):
            WriteAheadLog(tmp_path, "t").load_snapshot()

    def test_missing_snapshot_is_none(self, tmp_path):
        assert WriteAheadLog(tmp_path, "t").load_snapshot() is None

    def test_flush_every_batches_fsync(self, tmp_path):
        wal = WriteAheadLog(tmp_path, "t", flush_every=1000)
        wal.append({"op": "a"})
        assert wal._pending == 1
        wal.sync()
        assert wal._pending == 0


class TestCompaction:
    def test_auto_compaction_threshold(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store._wal.compact_after = 10  # small threshold for the test
        for i in range(25):
            store.put(f"k{i}".encode(), b"v")
        # Compaction ran at least once (log restarted since), and the
        # flushed state recovers fully.
        store.sync()
        recovered = KeyValueStore(tmp_path)
        assert len(recovered.keys()) == 25
        assert recovered._wal.load_snapshot() is not None

    def test_snapshot_plus_log_recovery(self, tmp_path):
        store = KeyValueStore(tmp_path)
        store.put(b"snapshotted", b"1")
        store._wal.write_snapshot(store.snapshot_state())
        store.put(b"logged", b"2")
        store.sync()
        recovered = KeyValueStore(tmp_path)
        assert recovered.get(b"snapshotted") == b"1"
        assert recovered.get(b"logged") == b"2"


class TestContextManager:
    def test_with_block_closes(self, tmp_path):
        with KeyValueStore(tmp_path) as store:
            store.put(b"k", b"v")
        assert KeyValueStore(tmp_path).get(b"k") == b"v"
