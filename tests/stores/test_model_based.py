"""Model-based property tests: stores vs in-memory reference models.

Hypothesis drives random operation sequences against the KV store and
the document store, mirroring every operation onto a plain-dict model
and checking observational equivalence — including across a simulated
crash/restart cycle through the write-ahead log.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.stores.docstore import DocumentStore, matches
from repro.stores.kv import KeyValueStore

keys = st.binary(min_size=1, max_size=4)
values = st.binary(max_size=6)

kv_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("del"), keys, st.just(b"")),
        st.tuples(st.just("sadd"), keys, values),
        st.tuples(st.just("srem"), keys, values),
        st.tuples(st.just("incr"), keys, st.just(b"")),
        st.tuples(st.just("mput"), keys, values),
        st.tuples(st.just("mdel"), keys, values),
    ),
    max_size=40,
)


def apply_kv(store, model, op, key, value):
    kind = op
    if kind == "put":
        store.put(key, value)
        model.setdefault("str", {})[key] = value
    elif kind == "del":
        store.delete(key)
        model.setdefault("str", {}).pop(key, None)
    elif kind == "sadd":
        store.set_add(key, value)
        model.setdefault("set", {}).setdefault(key, set()).add(value)
    elif kind == "srem":
        store.set_remove(key, value)
        bucket = model.setdefault("set", {}).get(key, set())
        bucket.discard(value)
        if not bucket:
            model["set"].pop(key, None)
    elif kind == "incr":
        store.counter_increment(key)
        model.setdefault("cnt", {})[key] = (
            model.setdefault("cnt", {}).get(key, 0) + 1
        )
    elif kind == "mput":
        store.map_put(key, value or b"f", value)
        model.setdefault("map", {}).setdefault(key, {})[value or b"f"] = value
    elif kind == "mdel":
        store.map_delete(key, value or b"f")
        bucket = model.setdefault("map", {}).get(key, {})
        bucket.pop(value or b"f", None)
        if not bucket:
            model["map"].pop(key, None)


def check_kv(store, model):
    for key, value in model.get("str", {}).items():
        assert store.get(key) == value
    assert sorted(store.keys()) == sorted(model.get("str", {}))
    for key, members in model.get("set", {}).items():
        assert store.set_members(key) == members
    for key, count in model.get("cnt", {}).items():
        assert store.counter_get(key) == count
    for key, bucket in model.get("map", {}).items():
        assert dict(store.map_items(key)) == bucket


@given(ops=kv_ops)
@settings(max_examples=40, deadline=None)
def test_kv_matches_model(ops):
    store = KeyValueStore()
    model: dict = {}
    for op, key, value in ops:
        apply_kv(store, model, op, key, value)
    check_kv(store, model)


@given(ops=kv_ops)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_kv_survives_restart(ops, tmp_path_factory):
    directory = tmp_path_factory.mktemp("kv")
    store = KeyValueStore(directory)
    model: dict = {}
    for op, key, value in ops:
        apply_kv(store, model, op, key, value)
    store.close()
    check_kv(KeyValueStore(directory), model)


doc_fields = st.fixed_dictionaries({
    "tag": st.sampled_from(["red", "blue", "green"]),
    "n": st.integers(0, 9),
})

doc_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 9), doc_fields),
        st.tuples(st.just("replace"), st.integers(0, 9), doc_fields),
        st.tuples(st.just("delete"), st.integers(0, 9), doc_fields),
    ),
    max_size=30,
)


@given(ops=doc_ops, query_tag=st.sampled_from(["red", "blue"]),
       query_n=st.integers(0, 9))
@settings(max_examples=40, deadline=None)
def test_docstore_matches_model(ops, query_tag, query_n):
    store = DocumentStore(indexed_fields=("tag",))
    model: dict[str, dict] = {}
    for op, index, fields in ops:
        doc_id = f"d{index}"
        document = dict(fields, _id=doc_id)
        if op == "insert":
            if doc_id in model:
                continue
            store.insert(document)
            model[doc_id] = document
        elif op == "replace":
            if doc_id not in model:
                continue
            store.replace(document)
            model[doc_id] = document
        else:
            store.delete(doc_id)
            model.pop(doc_id, None)

    assert len(store) == len(model)
    query = {"tag": query_tag, "n": {"$gte": query_n}}
    expected = {d["_id"] for d in model.values() if matches(d, query)}
    assert {d["_id"] for d in store.find(query)} == expected
    # Index-accelerated equality agrees with the model too.
    expected_tag = {d["_id"] for d in model.values()
                    if d["tag"] == query_tag}
    assert {d["_id"] for d in store.find({"tag": query_tag})
            } == expected_tag
