"""Leakage analysis: the protection-class ladder, demonstrated.

Deploys the paper's Observation schema, mounts the cited inference
attacks against a snapshot of the untrusted zone, and checks that:

* DET-protected fields (class 4) fall to frequency analysis when the
  value distribution is skewed and public;
* OPE-protected fields (class 5) fall completely to the dense-domain
  sorting attack;
* Mitra- and RND-protected fields expose no rankable structure at all.
"""

import random

import pytest

from repro.analysis import (
    SnapshotAdversary,
    auxiliary_distribution,
    frequency_attack,
    rank_correlation,
    sorting_attack,
)
from repro.core.schema import FieldAnnotation, Schema
from repro.crypto.symmetric import Deterministic, seal_value


@pytest.fixture()
def deployment(blinder, cloud):
    schema = Schema.define(
        "observation",
        id="string",
        diagnosis=("string", FieldAnnotation.parse("C4", "I,EQ")),  # DET
        subject=("string", FieldAnnotation.parse("C2", "I,EQ")),   # Mitra
        note=("string", FieldAnnotation.parse("C1", "I")),         # RND
        age=("int", FieldAnnotation.parse("C5", "I,RG")),          # OPE
    )
    blinder.register_schema(schema)
    entities = blinder.entities("observation")

    rng = random.Random(11)
    diagnoses = (["hypertension"] * 30 + ["diabetes"] * 18
                 + ["asthma"] * 9 + ["gastric-cancer"] * 3)
    rng.shuffle(diagnoses)
    ages = list(range(20, 20 + len(diagnoses)))  # dense domain for OPE
    truth_age = {}
    truth_diag = []
    for index, diagnosis in enumerate(diagnoses):
        doc_id = entities.insert({
            "id": f"r{index}", "diagnosis": diagnosis,
            "subject": f"patient-{index}", "note": f"note {index}",
            "age": ages[index],
        })
        truth_age[doc_id] = ages[index]
        truth_diag.append(diagnosis)
    return blinder, cloud, truth_diag, truth_age


class TestFrequencyAttackOnDet:
    def test_skewed_distribution_is_recovered(self, deployment):
        blinder, cloud, truth_diag, _ = deployment
        adversary = SnapshotAdversary(cloud, "testapp")
        histogram = adversary.det_token_histogram("diagnosis")
        assert len(histogram) == 4  # one token per distinct value

        # Ground truth: which token corresponds to which value (the test
        # can recompute tokens with the gateway's key).
        executor = blinder._executor("observation")
        det = executor._instances["diagnosis"]["eq"]
        token_of = {v: det.seal(v) for v in set(truth_diag)}
        ground_truth = {token: value for value, token in token_of.items()}

        auxiliary = auxiliary_distribution(truth_diag)
        result = frequency_attack(histogram, auxiliary, ground_truth)
        assert result.accuracy == 1.0  # full recovery on skewed data

    def test_histogram_reflects_plaintext_frequencies(self, deployment):
        _, cloud, truth_diag, _ = deployment
        adversary = SnapshotAdversary(cloud, "testapp")
        ranked = adversary.value_frequencies_via_det("diagnosis")
        assert ranked == [30, 18, 9, 3]
        true_ranked = [count for _, count in
                       auxiliary_distribution(truth_diag)]
        assert rank_correlation(ranked, true_ranked) > 0.99


class TestSortingAttackOnOpe:
    def test_dense_domain_fully_recovered(self, deployment):
        _, cloud, _, truth_age = deployment
        adversary = SnapshotAdversary(cloud, "testapp")
        order = adversary.ope_ciphertext_order("age")
        result = sorting_attack(order, list(truth_age.values()), truth_age)
        assert result.accuracy == 1.0  # order leakage = total recovery


class TestStrongerClassesResist:
    def test_mitra_exposes_no_frequency_structure(self, deployment):
        _, cloud, _, _ = deployment
        adversary = SnapshotAdversary(cloud, "testapp")
        # Only a flat entry count is visible: no per-keyword grouping.
        structure = adversary.sse_visible_structure("subject")
        assert structure["entries"] == 60  # one opaque entry per insert
        histogram = adversary.det_token_histogram("subject",
                                                  tactic="mitra")
        assert histogram == {}  # nothing rankable

    def test_rnd_exposes_nothing_but_sizes(self, deployment):
        _, cloud, _, _ = deployment
        adversary = SnapshotAdversary(cloud, "testapp")
        histogram = adversary.det_token_histogram("note", tactic="rnd")
        assert histogram == {}

    def test_snapshot_report(self, deployment):
        _, cloud, _, _ = deployment
        report = SnapshotAdversary(cloud, "testapp").report()
        assert report.documents == 60
        assert report.kv_entries > 0
        assert "encrypted documents" in report.render()


class TestAttackPrimitives:
    def test_frequency_attack_without_ground_truth(self):
        result = frequency_attack({b"t1": 10, b"t2": 5},
                                  [("a", 10), ("b", 5)])
        assert result.guesses == {b"t1": "a", b"t2": "b"}
        assert result.recovered == 0

    def test_frequency_attack_partial_auxiliary(self):
        result = frequency_attack({b"t1": 10, b"t2": 5}, [("a", 10)])
        assert result.guesses == {b"t1": "a"}

    def test_sorting_attack_alignment(self):
        order = [(100, "d1"), (200, "d2"), (300, "d3")]
        result = sorting_attack(order, [7, 5, 9],
                                {"d1": 5, "d2": 7, "d3": 9})
        assert result.guesses == {"d1": 5, "d2": 7, "d3": 9}
        assert result.accuracy == 1.0

    def test_rank_correlation_bounds(self):
        assert rank_correlation([], [1]) == 0.0
        assert rank_correlation([5, 3], [5, 3]) == pytest.approx(1.0)
        assert rank_correlation([10, 0], [5, 5]) == pytest.approx(0.5)
