"""Persistent-adversary observation: forward privacy on the wire."""

import pytest

from repro.analysis.observer import ObservedTransport
from repro.cloud.server import CloudZone
from repro.gateway.service import GatewayRuntime
from repro.net.transport import InProcTransport


@pytest.fixture()
def observed(registry):
    cloud = CloudZone(registry)
    transport = ObservedTransport(InProcTransport(cloud.host))
    runtime = GatewayRuntime("obsapp", transport, registry)
    return transport, runtime


def search(gateway, value):
    return gateway.resolve_eq(gateway.eq_query(value))


class TestQueryLinkability:
    def test_repeated_searches_are_linkable(self, observed):
        """Equal Mitra queries resend the same addresses — the standard
        query-equality leakage of the persistent model."""
        transport, runtime = observed
        mitra = runtime.tactic("d.f", "mitra")
        mitra.insert("d1", "kw")
        search(mitra, "kw")
        search(mitra, "kw")
        assert transport.transcript.linkable_query_pairs("/mitra") >= 1

    def test_distinct_keywords_are_not_linkable(self, observed):
        transport, runtime = observed
        mitra = runtime.tactic("d.f", "mitra")
        mitra.insert("d1", "alpha")
        mitra.insert("d2", "beta")
        search(mitra, "alpha")
        search(mitra, "beta")
        assert transport.transcript.linkable_query_pairs("/mitra") == 0


class TestForwardPrivacyObserved:
    @pytest.mark.parametrize("tactic", ["mitra", "sophos"])
    def test_forward_private_updates_are_unpredictable(self, observed,
                                                       tactic):
        """After watching inserts AND a search, the adversary's
        accumulated artifacts say nothing about the next insert."""
        transport, runtime = observed
        gateway = runtime.tactic("d.f", tactic)
        gateway.insert("d1", "kw")
        gateway.insert("d2", "kw")
        search(gateway, "kw")
        checkpoint = transport.last_sequence
        gateway.insert("d3", "kw")  # post-search update
        collisions = (
            transport.transcript.update_artifacts_predictable_from(
                f"/{tactic}", checkpoint
            )
        )
        assert collisions == 0

    def test_stateless_sse_updates_are_linkable(self, observed):
        """The stateless extension's documented trade: the keyword tag
        repeats across updates, so post-search inserts collide with
        observed artifacts."""
        transport, runtime = observed
        gateway = runtime.tactic("d.f", "sse-stateless")
        gateway.insert("d1", "kw")
        search(gateway, "kw")
        checkpoint = transport.last_sequence
        gateway.insert("d2", "kw")
        collisions = (
            transport.transcript.update_artifacts_predictable_from(
                "/sse-stateless", checkpoint
            )
        )
        assert collisions >= 1

    def test_new_search_reaches_post_search_inserts(self, observed):
        """Forward privacy hides future inserts from *old* tokens; a
        fresh search still finds everything."""
        transport, runtime = observed
        gateway = runtime.tactic("d.f", "sophos")
        gateway.insert("d1", "kw")
        assert search(gateway, "kw") == {"d1"}
        gateway.insert("d2", "kw")
        assert search(gateway, "kw") == {"d1", "d2"}


class TestTranscriptMechanics:
    def test_transcript_records_sequence_and_services(self, observed):
        transport, runtime = observed
        det = runtime.tactic("d.f", "det")
        det.insert("d1", "v")
        calls = transport.transcript.for_service("/det")
        assert calls
        assert all(c.service.endswith("/det") for c in calls)
        sequences = [c.sequence for c in transport.transcript.calls]
        assert sequences == sorted(sequences)

    def test_stats_pass_through(self, observed):
        transport, runtime = observed
        det = runtime.tactic("d.f", "det")
        det.insert("d1", "v")
        assert transport.stats().messages_sent > 0
