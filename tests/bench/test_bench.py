"""Benchmark harness: metrics, workloads, scenarios, load generation."""

import pytest

from repro.bench.metrics import MetricsRecorder, OperationStats, percentile
from repro.bench.report import (
    headline_ratios,
    render_figure5,
    render_latency_table,
    render_run,
)
from repro.bench.scenarios import (
    HARDCODED_TACTICS,
    build_scenario,
)
from repro.bench.workloads import (
    OP_AGGREGATE,
    OP_EQ_SEARCH,
    OP_INSERT,
    Workload,
    WorkloadSpec,
)
from repro.bench.loadgen import run_load
from repro.cloud.server import CloudZone
from repro.net.transport import InProcTransport


class TestPercentiles:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile(samples, 0.99) == pytest.approx(99.01)


class TestMetricsRecorder:
    def test_record_and_report(self):
        recorder = MetricsRecorder()
        for ms in (10, 20, 30):
            recorder.record("insert", ms / 1000)
        recorder.record("search", 0.005)
        report = recorder.report("S_X", elapsed=2.0)
        assert report.per_operation["insert"].count == 3
        assert report.per_operation["insert"].mean_ms == pytest.approx(20.0)
        assert report.per_operation["insert"].throughput == pytest.approx(
            1.5
        )
        assert report.per_operation["overall"].count == 4
        assert report.total_operations == 8  # overall double-counts merged

    def test_timed_context_manager(self):
        recorder = MetricsRecorder()
        with recorder.timed("op"):
            pass
        report = recorder.report("s", elapsed=1.0)
        assert report.per_operation["op"].count == 1

    def test_timed_skips_failures(self):
        recorder = MetricsRecorder()
        with pytest.raises(ValueError):
            with recorder.timed("op"):
                raise ValueError()
        assert "op" not in recorder.report("s", elapsed=1.0).per_operation

    def test_operation_stats_from_samples(self):
        stats = OperationStats.from_samples("x", [0.001, 0.003], 1.0)
        assert stats.p50_ms == pytest.approx(2.0)


class TestWorkload:
    def test_deterministic(self):
        spec = WorkloadSpec(operations=60, seed=5)
        a, b = Workload(spec), Workload(spec)
        assert [o.kind for o in a] == [o.kind for o in b]

    def test_size(self):
        assert len(Workload(WorkloadSpec(operations=80))) == 80

    def test_mix_roughly_balanced(self):
        workload = Workload(WorkloadSpec(operations=600, seed=1))
        mix = workload.mix()
        for kind in (OP_INSERT, OP_EQ_SEARCH, OP_AGGREGATE):
            assert mix.get(kind, 0) > 100

    def test_searches_target_inserted_values(self):
        workload = Workload(WorkloadSpec(operations=100, seed=2))
        inserted = {
            field: set()
            for field in ("status", "code", "subject", "effective",
                          "issued", "value")
        }
        for op in workload:
            if op.kind == OP_INSERT:
                for field in inserted:
                    inserted[field].add(op.document[field])
            elif op.kind == OP_EQ_SEARCH:
                assert op.value in inserted[op.field]

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec(insert_fraction=0.9, search_fraction=0.9,
                         aggregate_fraction=0.9)

    def test_custom_mix(self):
        workload = Workload(WorkloadSpec(
            operations=50, insert_fraction=1.0, search_fraction=0.0,
            aggregate_fraction=0.0,
        ))
        assert workload.mix() == {OP_INSERT: 50}


@pytest.fixture(params=["S_A", "S_B", "S_C"])
def scenario(request):
    cloud = CloudZone()
    return build_scenario(request.param, InProcTransport(cloud.host))


class TestScenarios:
    def test_application_interface(self, scenario):
        doc = {
            "id": "f1", "identifier": 1, "status": "final",
            "code": "glucose", "subject": "A", "effective": 100,
            "issued": 200, "performer": "Dr", "value": 5.0,
            "interpretation": "normal",
        }
        doc_id = scenario.insert(dict(doc))
        assert isinstance(doc_id, str) and doc_id

        results = scenario.eq_search("status", "final")
        assert len(results) == 1
        assert results[0]["value"] == 5.0

        scenario.insert(dict(doc, id="f2", value=7.0))
        assert scenario.average("value", "status",
                                "final") == pytest.approx(6.0)

    def test_no_match_average_is_none(self, scenario):
        assert scenario.average("value", "status", "ghost") is None

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("S_X", None)


class TestScenarioEquivalence:
    """All three scenarios must return the same answers — protection
    changes cost, never semantics."""

    def test_same_results_across_scenarios(self):
        spec = WorkloadSpec(operations=40, seed=11)
        answers = {}
        for name in ("S_A", "S_B", "S_C"):
            cloud = CloudZone()
            app = build_scenario(name, InProcTransport(cloud.host))
            workload = Workload(spec)
            search_counts = []
            averages = []
            for op in workload:
                if op.kind == OP_INSERT:
                    app.insert(dict(op.document))
                elif op.kind == OP_EQ_SEARCH:
                    search_counts.append(
                        len(app.eq_search(op.field, op.value))
                    )
                else:
                    value = app.average(op.agg_field, op.where_field,
                                        op.where_value)
                    averages.append(
                        None if value is None else round(value, 4)
                    )
            answers[name] = (search_counts, averages)
        assert answers["S_A"] == answers["S_B"] == answers["S_C"]


class TestLoadGenerator:
    def test_run_collects_all_operations(self):
        cloud = CloudZone()
        app = build_scenario("S_A", InProcTransport(cloud.host))
        workload = Workload(WorkloadSpec(operations=30, seed=3))
        result = run_load(app, workload, users=3)
        assert not result.errors
        assert result.report.per_operation["overall"].count == 30
        assert result.report.per_operation["overall"].throughput > 0

    def test_hardcoded_tactics_match_paper_count(self):
        # 5 DET + Mitra + RND (+ Paillier separately) = the paper's 8.
        assert list(HARDCODED_TACTICS.values()).count("det") == 5
        assert set(HARDCODED_TACTICS.values()) == {"det", "mitra", "rnd"}


class TestReportRendering:
    def make_reports(self):
        reports = {}
        for name, speed in (("S_A", 0.001), ("S_B", 0.01), ("S_C", 0.011)):
            recorder = MetricsRecorder()
            for op in ("insert", "eq_search", "aggregate"):
                for _ in range(5):
                    recorder.record(op, speed)
            reports[name] = recorder.report(name, elapsed=speed * 15)
        return reports

    def test_figure5_rendering(self):
        output = render_figure5(self.make_reports())
        assert "insert:" in output and "S_C" in output
        assert "paper: ~44%" in output

    def test_latency_table_rendering(self):
        output = render_latency_table(self.make_reports())
        assert "p99" in output and "S_B" in output

    def test_render_run(self):
        output = render_run(self.make_reports()["S_A"])
        assert "S_A" in output and "insert" in output

    def test_headline_ratios(self):
        ratios = headline_ratios(self.make_reports())
        assert 85 < ratios.tactic_loss_percent < 95
        assert 5 < ratios.middleware_loss_percent < 15
