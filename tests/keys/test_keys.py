"""Key management: simulated HSM and the per-application keystore."""

import pytest

from repro.errors import KeyManagementError
from repro.keys.hsm import SimulatedHsm
from repro.keys.keystore import KeyStore


class TestHsm:
    def test_master_key_lifecycle(self):
        hsm = SimulatedHsm()
        hsm.create_master_key("m")
        assert hsm.has_master_key("m")
        hsm.destroy_master_key("m")
        assert not hsm.has_master_key("m")

    def test_duplicate_master_rejected(self):
        hsm = SimulatedHsm()
        hsm.create_master_key("m")
        with pytest.raises(KeyManagementError):
            hsm.create_master_key("m")

    def test_destroy_unknown_rejected(self):
        with pytest.raises(KeyManagementError):
            SimulatedHsm().destroy_master_key("nope")

    def test_wrap_unwrap(self):
        hsm = SimulatedHsm()
        hsm.create_master_key("m")
        key, wrapped = hsm.generate_wrapped_key("m", 32, context=b"ctx")
        assert len(key) == 32
        assert hsm.unwrap("m", wrapped, context=b"ctx") == key

    def test_unwrap_wrong_context_fails(self):
        hsm = SimulatedHsm()
        hsm.create_master_key("m")
        _, wrapped = hsm.generate_wrapped_key("m", context=b"a")
        with pytest.raises(KeyManagementError):
            hsm.unwrap("m", wrapped, context=b"b")

    def test_unwrap_wrong_master_fails(self):
        hsm = SimulatedHsm()
        hsm.create_master_key("m1")
        hsm.create_master_key("m2")
        _, wrapped = hsm.generate_wrapped_key("m1")
        with pytest.raises(KeyManagementError):
            hsm.unwrap("m2", wrapped)

    def test_short_data_key_rejected(self):
        hsm = SimulatedHsm()
        hsm.create_master_key("m")
        with pytest.raises(KeyManagementError):
            hsm.generate_wrapped_key("m", length=8)

    def test_wrap_requires_master(self):
        with pytest.raises(KeyManagementError):
            SimulatedHsm().wrap("nope", b"k" * 16)


class TestKeyStore:
    def test_derivation_is_deterministic(self):
        store = KeyStore("app")
        assert store.derive("f", "det") == store.derive("f", "det")

    def test_namespace_separation(self):
        store = KeyStore("app")
        keys = {
            store.derive("f1", "det"),
            store.derive("f2", "det"),
            store.derive("f1", "rnd"),
            store.derive("f1", "det", "other-purpose"),
        }
        assert len(keys) == 4

    def test_applications_are_isolated(self):
        hsm = SimulatedHsm()
        a = KeyStore("app-a", hsm)
        b = KeyStore("app-b", hsm)
        assert a.derive("f", "det") != b.derive("f", "det")

    def test_custom_length(self):
        assert len(KeyStore("app").derive("f", "t", length=16)) == 16

    def test_paillier_keypair_cached(self):
        store = KeyStore("app")
        k1 = store.paillier_keypair("value", bits=128)
        k2 = store.paillier_keypair("value", bits=128)
        assert k1 is k2
        k3 = store.paillier_keypair("other", bits=128)
        assert k3 is not k1

    def test_rsa_keypair_cached(self):
        store = KeyStore("app")
        assert store.rsa_keypair("f", bits=512) is store.rsa_keypair(
            "f", bits=512
        )

    def test_elgamal_keypair_cached(self):
        store = KeyStore("app")
        assert store.elgamal_keypair("f", bits=64) is store.elgamal_keypair(
            "f", bits=64
        )

    def test_rotation_changes_derived_keys(self):
        store = KeyStore("app")
        before = store.derive("f", "det")
        keypair_before = store.paillier_keypair("f", bits=128)
        store.rotate_root()
        assert store.derive("f", "det") != before
        assert store.paillier_keypair("f", bits=128) is not keypair_before

    def test_requires_application_name(self):
        with pytest.raises(KeyManagementError):
            KeyStore("")
