"""RPC dispatch and the in-process / direct transports."""

import pytest

from repro.errors import RemoteError, TransportError
from repro.net.latency import NetworkModel
from repro.net.rpc import Request, Response, ServiceHost
from repro.net.transport import DirectTransport, InProcTransport


class EchoService:
    def ping(self, value):
        return {"value": value}

    def fail(self):
        raise ValueError("deliberate")

    def no_args(self):
        return "ok"

    def _secret(self):
        return "hidden"


@pytest.fixture()
def host():
    host = ServiceHost()
    host.register("echo", EchoService())
    return host


class TestServiceHost:
    def test_dispatch_success(self, host):
        response = host.dispatch(Request("echo", "ping", {"value": 42}))
        assert response.ok and response.result == {"value": 42}

    def test_unknown_service(self, host):
        response = host.dispatch(Request("nope", "ping", {}))
        assert not response.ok
        assert response.error_type == "TransportError"

    def test_unknown_method(self, host):
        response = host.dispatch(Request("echo", "nope", {}))
        assert not response.ok

    def test_private_methods_blocked(self, host):
        response = host.dispatch(Request("echo", "_secret", {}))
        assert not response.ok

    def test_exception_captured(self, host):
        response = host.dispatch(Request("echo", "fail", {}))
        assert not response.ok
        assert response.error_type == "ValueError"
        assert "deliberate" in response.error_message

    def test_duplicate_registration_rejected(self, host):
        with pytest.raises(TransportError):
            host.register("echo", EchoService())

    def test_unregister(self, host):
        host.unregister("echo")
        assert host.service_names() == []

    def test_request_payload_roundtrip(self):
        request = Request("s", "m", {"a": 1})
        assert Request.from_payload(request.to_payload()) == request

    def test_malformed_request_payload(self):
        with pytest.raises(TransportError):
            Request.from_payload({"service": "s"})

    def test_response_unwrap_raises_remote(self):
        response = Response(ok=False, error_type="ValueError",
                            error_message="boom")
        with pytest.raises(RemoteError) as excinfo:
            response.unwrap()
        assert excinfo.value.remote_type == "ValueError"


class TestInProcTransport:
    def test_call_roundtrips_through_codec(self, host):
        transport = InProcTransport(host)
        result = transport.call("echo", "ping", value=(1, b"\x00"))
        assert result == {"value": (1, b"\x00")}

    def test_remote_error_propagates(self, host):
        transport = InProcTransport(host)
        with pytest.raises(RemoteError):
            transport.call("echo", "fail")

    def test_traffic_accounting(self, host):
        transport = InProcTransport(host)
        transport.call("echo", "no_args")
        stats = transport.stats()
        assert stats.messages_sent == 1
        assert stats.messages_received == 1
        assert stats.bytes_sent > 0
        assert stats.bytes_received > 0

    def test_latency_model_accumulates(self, host):
        model = NetworkModel(one_way_latency_ms=5.0, sleep=False)
        transport = InProcTransport(host, model)
        transport.call("echo", "no_args")
        assert transport.stats().simulated_delay_seconds == pytest.approx(
            0.010, abs=1e-6
        )

    def test_bandwidth_adds_serialization_delay(self, host):
        model = NetworkModel(bandwidth_mbps=1.0, sleep=False)
        transport = InProcTransport(host, model)
        transport.call("echo", "ping", value="x" * 1000)
        assert transport.stats().simulated_delay_seconds > 0.008

    def test_reset_stats(self, host):
        transport = InProcTransport(host)
        transport.call("echo", "no_args")
        transport.reset_stats()
        assert transport.stats().messages_sent == 0

    def test_non_wire_encodable_argument_rejected(self, host):
        transport = InProcTransport(host)
        with pytest.raises(TransportError):
            transport.call("echo", "ping", value=object())


class TestDirectTransport:
    def test_call(self, host):
        transport = DirectTransport(host)
        assert transport.call("echo", "no_args") == "ok"

    def test_remote_error(self, host):
        transport = DirectTransport(host)
        with pytest.raises(RemoteError):
            transport.call("echo", "fail")

    def test_counts_messages_without_bytes(self, host):
        transport = DirectTransport(host)
        transport.call("echo", "no_args")
        stats = transport.stats()
        assert stats.messages_sent == 1
        assert stats.bytes_sent == 0


class TestNetworkModel:
    def test_one_way_delay_composition(self):
        model = NetworkModel(one_way_latency_ms=10, bandwidth_mbps=8)
        # 10ms base + 1000 bytes * 8 bits / 8 Mbps = 1ms
        assert model.one_way_delay(1000) == pytest.approx(0.011)

    def test_zero_bandwidth_means_infinite(self):
        model = NetworkModel(one_way_latency_ms=1, bandwidth_mbps=0)
        assert model.one_way_delay(10**9) == pytest.approx(0.001)

    def test_stats_merge(self):
        from repro.net.latency import NetworkStats

        merged = NetworkStats(1, 2, 3, 4, 0.5).merge(
            NetworkStats(10, 20, 30, 40, 1.5)
        )
        assert (merged.messages_sent, merged.messages_received,
                merged.bytes_sent, merged.bytes_received,
                merged.simulated_delay_seconds) == (11, 22, 33, 44, 2.0)
