"""Labelled NetworkStats roll-up across nested transport stacks."""

import pytest

from repro.cloud.cluster import CloudCluster
from repro.core.middleware import DataBlinder
from repro.core.registry import TacticRegistry
from repro.fhir.model import observation_schema
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.latency import NetworkStats, render_labeled, roll_up
from repro.net.resilience import (
    BreakerConfig,
    ResilientTransport,
    RetryPolicy,
)
from repro.shard.config import ShardConfig
from repro.shard.router import ShardedTransport
from repro.tactics import register_builtin_tactics

APP = "statsapp"


def fresh_registry() -> TacticRegistry:
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    return registry


def make_doc(i: int) -> dict:
    return {
        "id": f"s{i}",
        "identifier": i,
        "status": "final" if i % 2 == 0 else "amended",
        "code": "glucose",
        "subject": f"Patient {i}",
        "effective": 1000 + i,
        "issued": 2000 + i,
        "performer": "Dr",
        "value": float(i),
        "interpretation": "",
    }


class TestMerge:
    def test_merge_sums_every_counter(self):
        a = NetworkStats(1, 2, 3, 4, 0.5, 6, 7, 8, 9)
        b = NetworkStats(10, 20, 30, 40, 5.0, 60, 70, 80, 90)
        merged = a.merge(b)
        assert merged == NetworkStats(11, 22, 33, 44, 5.5, 66, 77, 88, 99)

    def test_roll_up_folds_all_labels(self):
        labeled = {
            "shard:a": NetworkStats(messages_sent=3, retries=1),
            "shard:b": NetworkStats(messages_sent=5, faults_injected=2),
            "router": NetworkStats(failovers=4),
        }
        total = roll_up(labeled)
        assert total.messages_sent == 8
        assert total.retries == 1
        assert total.faults_injected == 2
        assert total.failovers == 4

    def test_roll_up_of_empty_report_is_zero(self):
        assert roll_up({}) == NetworkStats()


class TestBaseDefault:
    def test_plain_transport_reports_single_endpoint_label(self):
        registry = fresh_registry()
        cluster = CloudCluster(1, registry=registry)
        transport = cluster.transport("zone-0")
        transport.call("admin", "list_services")
        labeled = transport.labeled_stats()
        assert set(labeled) == {"endpoint"}
        assert labeled["endpoint"].messages_sent >= 1
        cluster.close()


class TestNestedStack:
    @pytest.fixture()
    def stack(self):
        registry = fresh_registry()
        cluster = CloudCluster(3, registry=registry)
        router = ShardedTransport(cluster.nodes(),
                                  ShardConfig(parallel_fanout=False))
        resilient = ResilientTransport(
            router, RetryPolicy(max_attempts=2, sleep=False),
            BreakerConfig(failure_threshold=100), seed=1,
        )
        blinder = DataBlinder(APP, resilient, registry=registry)
        blinder.register_schema(observation_schema())
        yield cluster, router, resilient, blinder
        cluster.close()

    def test_shard_labels_survive_the_resilience_wrapper(self, stack):
        _, _, resilient, blinder = stack
        observations = blinder.entities("observation")
        for i in range(6):
            observations.insert(make_doc(i))

        labeled = resilient.labeled_stats()
        shard_labels = {k for k in labeled if k.startswith("shard:")}
        assert shard_labels == {"shard:zone-0", "shard:zone-1",
                                "shard:zone-2"}
        # The wrapper's own counters get their own line because more
        # than one endpoint sits below it.
        assert "resilience" in labeled

    def test_roll_up_equals_stats(self, stack):
        _, _, resilient, blinder = stack
        observations = blinder.entities("observation")
        for i in range(6):
            observations.insert(make_doc(i))
        total = roll_up(resilient.labeled_stats())
        assert total.messages_sent == resilient.stats().messages_sent
        assert total.messages_sent > 0

    def test_every_shard_saw_traffic(self, stack):
        _, _, resilient, blinder = stack
        observations = blinder.entities("observation")
        for i in range(12):
            observations.insert(make_doc(i))
        labeled = resilient.labeled_stats()
        for label in ("shard:zone-0", "shard:zone-1", "shard:zone-2"):
            assert labeled[label].messages_sent > 0


class TestSingleEndpointFolding:
    def test_fault_wrapper_folds_into_single_inner_label(self):
        registry = fresh_registry()
        cluster = CloudCluster(1, registry=registry)
        faulty = FaultInjectingTransport(
            cluster.transport("zone-0"),
            FaultPlan(delay=1.0, delay_seconds=0.0),
            seed=3,
        )
        faulty.call("admin", "list_services")
        labeled = faulty.labeled_stats()
        # One endpoint below: the chaos counters fold into its line
        # instead of adding a second label.
        assert set(labeled) == {"endpoint"}
        assert labeled["endpoint"].faults_injected > 0
        assert labeled["endpoint"].messages_sent >= 1
        cluster.close()


class TestRender:
    def test_render_contains_labels_and_total(self):
        labeled = {
            "shard:zone-0": NetworkStats(messages_sent=2, retries=1),
            "router": NetworkStats(failovers=1),
        }
        report = render_labeled(labeled)
        assert "shard:zone-0: sent=2" in report
        assert "router:" in report
        assert "total: sent=2" in report
        assert "failovers=1" in report
