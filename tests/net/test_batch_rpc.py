"""Batch RPC frames and the gateway-side write collector."""

import threading

import pytest

from repro.errors import RemoteError
from repro.net.batch import BatchCollector
from repro.net.latency import NetworkModel
from repro.net.multicloud import MultiCloudTransport, prefix_rule
from repro.net.rpc import (
    Request,
    Response,
    ServiceHost,
    batch_request_payload,
    is_batch_payload,
    requests_from_batch,
)
from repro.net.tcp import TcpRpcServer, TcpTransport
from repro.net.transport import DirectTransport, InProcTransport, Transport


class CounterService:
    """Records call order so tests can assert batch execution order."""

    def __init__(self):
        self.calls = []

    def bump(self, amount):
        self.calls.append(("bump", amount))
        return amount + 1

    def fail(self, reason):
        self.calls.append(("fail", reason))
        raise ValueError(reason)


@pytest.fixture()
def service():
    return CounterService()


@pytest.fixture()
def host(service):
    host = ServiceHost()
    host.register("counter", service)
    return host


def _requests(*amounts):
    return [Request("counter", "bump", {"amount": a}) for a in amounts]


class TestBatchPayload:
    def test_roundtrip(self):
        requests = _requests(1, 2, 3)
        payload = batch_request_payload(requests)
        assert is_batch_payload(payload)
        assert requests_from_batch(payload) == requests

    def test_single_request_payload_is_not_batch(self):
        assert not is_batch_payload(Request("s", "m", {}).to_payload())


class TestDispatchBatch:
    def test_results_in_order(self, host):
        responses = host.dispatch_batch(_requests(10, 20))
        assert [r.result for r in responses] == [11, 21]

    def test_error_isolation(self, host, service):
        requests = [
            Request("counter", "bump", {"amount": 1}),
            Request("counter", "fail", {"reason": "boom"}),
            Request("counter", "bump", {"amount": 2}),
        ]
        responses = host.dispatch_batch(requests)
        assert [r.ok for r in responses] == [True, False, True]
        assert responses[1].error_type == "ValueError"
        assert responses[2].result == 3
        # The failing sub-call did not stop the batch server-side.
        assert service.calls == [("bump", 1), ("fail", "boom"), ("bump", 2)]


class TestInProcBatch:
    def test_one_frame_per_direction(self, host):
        transport = InProcTransport(host)
        responses = transport.call_batch(_requests(1, 2, 3))
        assert [r.result for r in responses] == [2, 3, 4]
        stats = transport.stats()
        assert stats.messages_sent == 1
        assert stats.messages_received == 1

    def test_single_latency_charge(self, host):
        model = NetworkModel(one_way_latency_ms=5.0, sleep=False)
        transport = InProcTransport(host, model)
        transport.call_batch(_requests(*range(8)))
        # 8 requests, but only one up + one down latency charge.
        assert transport.stats().simulated_delay_seconds == pytest.approx(
            0.010, abs=1e-6
        )

    def test_empty_batch_is_free(self, host):
        transport = InProcTransport(host)
        assert transport.call_batch([]) == []
        assert transport.stats().messages_sent == 0

    def test_error_isolation_over_the_wire(self, host):
        transport = InProcTransport(host)
        responses = transport.call_batch([
            Request("counter", "bump", {"amount": 1}),
            Request("counter", "fail", {"reason": "boom"}),
            Request("counter", "bump", {"amount": 2}),
        ])
        assert [r.ok for r in responses] == [True, False, True]
        with pytest.raises(RemoteError):
            responses[1].unwrap()


class TestDirectBatch:
    def test_batch(self, host):
        transport = DirectTransport(host)
        responses = transport.call_batch(_requests(5, 6))
        assert [r.result for r in responses] == [6, 7]
        assert transport.stats().messages_sent == 1


class SequentialOnlyTransport(Transport):
    """A transport without a batch frame: exercises the base fallback."""

    def __init__(self, host):
        self._inner = InProcTransport(host)

    def call(self, service, method, **kwargs):
        return self._inner.call(service, method, **kwargs)

    def stats(self):
        return self._inner.stats()


class TestBaseFallback:
    def test_sequential_calls_keep_error_isolation(self, host):
        transport = SequentialOnlyTransport(host)
        responses = transport.call_batch([
            Request("counter", "bump", {"amount": 1}),
            Request("counter", "fail", {"reason": "boom"}),
            Request("counter", "bump", {"amount": 2}),
        ])
        assert [r.ok for r in responses] == [True, False, True]
        assert responses[2].result == 3
        # Fallback pays one wire frame per request.
        assert transport.stats().messages_sent == 3


class TestMultiCloudBatch:
    def test_batch_splits_by_provider_and_reorders(self):
        host_a, host_b = ServiceHost(), ServiceHost()
        service_a, service_b = CounterService(), CounterService()
        host_a.register("a/counter", service_a)
        host_b.register("b/counter", service_b)
        transport_a = InProcTransport(host_a)
        transport_b = InProcTransport(host_b)
        multi = MultiCloudTransport([
            (prefix_rule("a/"), transport_a),
            (prefix_rule("b/"), transport_b),
        ])
        responses = multi.call_batch([
            Request("a/counter", "bump", {"amount": 1}),
            Request("b/counter", "bump", {"amount": 10}),
            Request("a/counter", "bump", {"amount": 2}),
        ])
        # Results come back in original request order...
        assert [r.result for r in responses] == [2, 11, 3]
        # ...from one batch frame per provider.
        assert transport_a.stats().messages_sent == 1
        assert transport_b.stats().messages_sent == 1
        assert service_a.calls == [("bump", 1), ("bump", 2)]
        assert service_b.calls == [("bump", 10)]


class TestTcpBatch:
    @pytest.fixture()
    def server(self, host):
        server = TcpRpcServer(host)
        server.serve_in_background()
        yield server
        server.shutdown()
        server.server_close()

    @pytest.fixture()
    def client(self, server):
        transport = TcpTransport(server.endpoint)
        yield transport
        transport.close()

    def test_batch_over_the_socket(self, client):
        responses = client.call_batch(_requests(1, 2, 3))
        assert [r.result for r in responses] == [2, 3, 4]
        assert client.stats().messages_sent == 1

    def test_batch_error_isolation(self, client):
        responses = client.call_batch([
            Request("counter", "bump", {"amount": 1}),
            Request("counter", "fail", {"reason": "boom"}),
            Request("counter", "bump", {"amount": 2}),
        ])
        assert [r.ok for r in responses] == [True, False, True]
        assert responses[1].error_type == "ValueError"

    def test_single_calls_still_work_after_batch(self, client):
        client.call_batch(_requests(1))
        assert client.call("counter", "bump", amount=7) == 8


class RecordingService:
    def __init__(self):
        self.calls = []

    def insert(self, **kwargs):
        self.calls.append(("insert", kwargs))

    def insert_many(self, **kwargs):
        self.calls.append(("insert_many", kwargs))

    def delete(self, **kwargs):
        self.calls.append(("delete", kwargs))
        return True

    def get(self, **kwargs):
        self.calls.append(("get", kwargs))
        return {"doc": 1}

    def update(self, **kwargs):
        # Deferrable method that fails server-side.
        raise ValueError("flush failure")


class TestBatchCollector:
    @pytest.fixture()
    def deployment(self):
        host = ServiceHost()
        tactic = RecordingService()
        docs = RecordingService()
        admin = RecordingService()
        host.register("tactic/app/f/det", tactic)
        host.register("docs/app", docs)
        host.register("admin", admin)
        inner = InProcTransport(host)
        return BatchCollector(inner), inner, tactic, docs, admin

    def test_pass_through_outside_scope(self, deployment):
        collector, inner, tactic, _, _ = deployment
        collector.call("tactic/app/f/det", "insert", doc_id="d1")
        assert inner.stats().messages_sent == 1
        assert tactic.calls == [("insert", {"doc_id": "d1"})]

    def test_deferrable_writes_coalesce_into_one_frame(self, deployment):
        collector, inner, tactic, docs, _ = deployment
        with collector.collect():
            assert collector.call("tactic/app/f/det", "insert",
                                  doc_id="d1") is None
            assert collector.call("tactic/app/f/det", "insert",
                                  doc_id="d2") is None
            assert collector.call("docs/app", "insert_many",
                                  documents=[{}]) is None
            # Nothing shipped while the scope is open.
            assert inner.stats().messages_sent == 0
        assert inner.stats().messages_sent == 1
        assert [c[0] for c in tactic.calls] == ["insert", "insert"]
        assert [c[0] for c in docs.calls] == ["insert_many"]

    def test_result_bearing_call_joins_and_flushes(self, deployment):
        collector, inner, tactic, docs, _ = deployment
        with collector.collect():
            collector.call("tactic/app/f/det", "delete", doc_id="d1")
            result = collector.call("docs/app", "delete", doc_id="d1")
            assert result is True
        # Index delete + docs delete shared one frame; the queued index
        # delete ran before the result-bearing docs delete.
        assert inner.stats().messages_sent == 1
        assert tactic.calls == [("delete", {"doc_id": "d1"})]
        assert docs.calls == [("delete", {"doc_id": "d1"})]

    def test_read_with_empty_queue_goes_straight_through(self, deployment):
        collector, inner, _, docs, _ = deployment
        with collector.collect():
            assert collector.call("docs/app", "get",
                                  doc_id="d1") == {"doc": 1}
        assert inner.stats().messages_sent == 1
        assert docs.calls == [("get", {"doc_id": "d1"})]

    def test_admin_never_defers(self, deployment):
        collector, inner, _, _, admin = deployment
        with collector.collect():
            collector.call("admin", "insert", thing=1)
            assert inner.stats().messages_sent == 1
        assert admin.calls == [("insert", {"thing": 1})]

    def test_nested_scopes_flush_once(self, deployment):
        collector, inner, tactic, _, _ = deployment
        with collector.collect():
            collector.call("tactic/app/f/det", "insert", doc_id="d1")
            with collector.collect():
                collector.call("tactic/app/f/det", "insert", doc_id="d2")
            # Inner scope exit must not flush the outer queue.
            assert inner.stats().messages_sent == 0
        assert inner.stats().messages_sent == 1
        assert len(tactic.calls) == 2

    def test_flush_error_raises_after_whole_batch_ran(self, deployment):
        collector, _, tactic, _, _ = deployment
        with pytest.raises(RemoteError) as excinfo:
            with collector.collect():
                collector.call("tactic/app/f/det", "insert", doc_id="d1")
                collector.call("tactic/app/f/det", "update", doc_id="d1")
                collector.call("tactic/app/f/det", "insert", doc_id="d2")
        assert excinfo.value.remote_type == "ValueError"
        # Error isolation: the write after the failure still executed.
        assert [c[0] for c in tactic.calls] == ["insert", "insert"]

    def test_scope_flushes_on_application_error(self, deployment):
        collector, inner, tactic, _, _ = deployment
        with pytest.raises(RuntimeError):
            with collector.collect():
                collector.call("tactic/app/f/det", "insert", doc_id="d1")
                raise RuntimeError("gateway-side failure")
        # The queued write still reached the cloud.
        assert inner.stats().messages_sent == 1
        assert tactic.calls == [("insert", {"doc_id": "d1"})]

    def test_scopes_are_thread_local(self, deployment):
        collector, inner, tactic, _, _ = deployment
        started = threading.Event()
        release = threading.Event()
        errors = []

        def other_thread():
            try:
                # No scope on this thread: calls pass straight through
                # even while the main thread's scope is open.
                started.wait(5)
                collector.call("tactic/app/f/det", "insert", doc_id="t2")
                release.set()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                release.set()

        worker = threading.Thread(target=other_thread)
        worker.start()
        with collector.collect():
            collector.call("tactic/app/f/det", "insert", doc_id="t1")
            started.set()
            assert release.wait(5)
            # Other thread's call already shipped; ours is still queued.
            assert inner.stats().messages_sent == 1
        worker.join()
        assert not errors
        assert inner.stats().messages_sent == 2
        assert len(tactic.calls) == 2
