"""Regression: batch collection scopes are context-local, not
thread-local.

The gateway runtime multiplexes many logical operations over few pooled
threads.  Under the earlier ``threading.local`` scopes, an operation
cancelled (or crashed) while its collection scope was open left that
scope attached to the *pool thread*; the next unrelated operation
scheduled onto the same thread silently inherited it and deferred its
writes into a queue nobody would ever flush.  These tests pin the fixed
behaviour: a scope is visible exactly to the context that opened it
(and to context copies it hands out, e.g. ``asyncio.to_thread``), never
to a fresh operation context that happens to reuse the thread.
"""

from __future__ import annotations

import asyncio
import contextvars
from concurrent.futures import ThreadPoolExecutor

from repro.net.batch import BatchCollector
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

SERVICE = "tactic/app.field/det"


class RecordingInner(Transport):
    """Counts what actually reaches the wire."""

    def __init__(self):
        self.calls: list[Request] = []
        self.frames: list[list[Request]] = []

    def call(self, service, method, **kwargs):
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request):
        self.calls.append(request)
        return "direct"

    def call_batch(self, requests):
        requests = list(requests)
        self.frames.append(requests)
        return [Response(ok=True, result=None) for _ in requests]

    def stats(self):  # pragma: no cover - unused
        from repro.net.latency import NetworkStats

        return NetworkStats()


def run_as_operation(pool: ThreadPoolExecutor, fn):
    """Run ``fn`` the way the gateway runtime runs an operation: on a
    pooled thread, inside its own copy of the submitting context."""
    context = contextvars.copy_context()
    return pool.submit(context.run, fn).result()


class TestScopeIsContextLocal:
    def test_abandoned_scope_does_not_leak_to_next_operation(self):
        """The regression proper.

        Operation A opens a scope on the pool thread and is abandoned
        mid-flight (deadline cancellation) without ever exiting it.
        Operation B then lands on the *same* thread: its deferrable
        write must cross the wire immediately — under the old
        thread-local scopes it was swallowed into A's orphaned queue
        and this test deadlocked on data that never arrived.
        """
        inner = RecordingInner()
        collector = BatchCollector(inner)
        pool = ThreadPoolExecutor(max_workers=1)
        # Keep the abandoned scope alive, like a suspended-then-dropped
        # task frame would — the hazard is the *storage slot*, not GC.
        orphans = []
        try:
            def op_a():
                scope_cm = collector.collect()
                scope_cm.__enter__()  # cancelled before __exit__
                orphans.append(scope_cm)
                collector.call(SERVICE, "insert", doc_id="a")
                assert collector.in_scope()

            def op_b():
                assert not collector.in_scope()
                collector.call(SERVICE, "insert", doc_id="b")

            run_as_operation(pool, op_a)
            assert inner.calls == [] and inner.frames == []
            run_as_operation(pool, op_b)
            # B's write went straight through; A's orphan stayed put.
            assert [r.kwargs["doc_id"] for r in inner.calls] == ["b"]
            assert inner.frames == []
        finally:
            pool.shutdown()

    def test_same_thread_sequential_operations_batch_independently(self):
        inner = RecordingInner()
        collector = BatchCollector(inner)
        pool = ThreadPoolExecutor(max_workers=1)
        try:
            def op(tag):
                def body():
                    with collector.collect():
                        collector.call(SERVICE, "insert", doc_id=f"{tag}1")
                        collector.call(SERVICE, "insert", doc_id=f"{tag}2")
                return body

            run_as_operation(pool, op("x"))
            run_as_operation(pool, op("y"))
            shipped = [
                [r.kwargs["doc_id"] for r in frame]
                for frame in inner.frames
            ]
            assert shipped == [["x1", "x2"], ["y1", "y2"]]
        finally:
            pool.shutdown()

    def test_concurrent_tasks_keep_independent_scopes(self):
        """Two asyncio tasks on one loop never share a pending queue."""
        inner = RecordingInner()
        collector = BatchCollector(inner)

        async def operation(tag, pause_s):
            with collector.collect():
                collector.call(SERVICE, "insert", doc_id=f"{tag}1")
                await asyncio.sleep(pause_s)
                collector.call(SERVICE, "insert", doc_id=f"{tag}2")

        async def main():
            await asyncio.gather(operation("a", 0.02),
                                 operation("b", 0.01))

        asyncio.run(main())
        shipped = sorted(
            [r.kwargs["doc_id"] for r in frame] for frame in inner.frames
        )
        assert shipped == [["a1", "a2"], ["b1", "b2"]]

    def test_to_thread_work_joins_the_callers_scope(self):
        """``asyncio.to_thread`` copies the caller's context, so work
        hopped onto a worker thread defers into the *same* scope."""
        inner = RecordingInner()
        collector = BatchCollector(inner)

        async def operation():
            with collector.collect():
                collector.call(SERVICE, "insert", doc_id="loop")
                await asyncio.to_thread(
                    collector.call, SERVICE, "insert", doc_id="worker"
                )

        asyncio.run(operation())
        assert [
            [r.kwargs["doc_id"] for r in frame] for frame in inner.frames
        ] == [["loop", "worker"]]

    def test_plain_threads_keep_independent_scopes(self):
        """The pre-refactor guarantee still holds for ordinary threads
        (a fresh thread starts with a fresh context)."""
        import threading

        inner = RecordingInner()
        collector = BatchCollector(inner)
        barrier = threading.Barrier(2)

        def op(tag):
            with collector.collect():
                collector.call(SERVICE, "insert", doc_id=f"{tag}1")
                barrier.wait(timeout=5)
                collector.call(SERVICE, "insert", doc_id=f"{tag}2")

        threads = [threading.Thread(target=op, args=(t,))
                   for t in ("p", "q")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        shipped = sorted(
            [r.kwargs["doc_id"] for r in frame] for frame in inner.frames
        )
        assert shipped == [["p1", "p2"], ["q1", "q2"]]
