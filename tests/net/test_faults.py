"""Fault injection, retry/backoff/breaker resilience and idempotency."""

import random

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    RemoteError,
    RetryExhausted,
    TransportError,
    TransportFault,
)
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.multicloud import MultiCloudTransport, prefix_rule
from repro.net.resilience import (
    BreakerConfig,
    CircuitBreaker,
    ResilientTransport,
    RetryPolicy,
)
from repro.net.rpc import Request, Response, ServiceHost
from repro.net.transport import DirectTransport, InProcTransport, Transport


class CounterService:
    """Counts applications so tests can tell 'delivered' from 'applied'."""

    def __init__(self):
        self.applied = []

    def insert(self, value):
        self.applied.append(value)
        return len(self.applied)

    def read(self, value):
        return value

    def fail(self, reason):
        raise ValueError(reason)


@pytest.fixture()
def service():
    return CounterService()


@pytest.fixture()
def host(service):
    host = ServiceHost()
    host.register("svc", service)
    return host


@pytest.fixture()
def inproc(host):
    return InProcTransport(host)


def always(plan_kind):
    """A plan that fires one fault kind on every delivery."""
    return FaultPlan(**{plan_kind: 1.0})


class TestFaultPlan:
    def test_probabilities_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=0.7, duplicate=0.5)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=-0.1)


class TestFaultInjection:
    def test_same_seed_same_schedule(self, host):
        def run(seed):
            faulty = FaultInjectingTransport(
                InProcTransport(host), FaultPlan(drop=0.3, duplicate=0.3),
                seed=seed,
            )
            for i in range(30):
                try:
                    faulty.call("svc", "read", value=i)
                except TransportFault:
                    pass
            return [(e.seq, e.kind) for e in faulty.events()]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_drop_is_not_applied(self, inproc, service):
        faulty = FaultInjectingTransport(inproc, always("drop"))
        with pytest.raises(TransportFault):
            faulty.call("svc", "insert", value="x")
        assert service.applied == []

    def test_corrupt_is_not_applied(self, inproc, service):
        faulty = FaultInjectingTransport(inproc, always("corrupt"))
        with pytest.raises(TransportFault):
            faulty.call("svc", "insert", value="x")
        assert service.applied == []

    def test_disconnect_is_applied_but_reply_lost(self, inproc, service):
        faulty = FaultInjectingTransport(inproc, always("disconnect"))
        with pytest.raises(TransportFault):
            faulty.call("svc", "insert", value="x")
        assert service.applied == ["x"]

    def test_duplicate_applies_twice_without_idempotency_key(
        self, inproc, service
    ):
        faulty = FaultInjectingTransport(inproc, always("duplicate"))
        faulty.call("svc", "insert", value="x")
        assert service.applied == ["x", "x"]

    def test_duplicate_applies_once_with_idempotency_key(
        self, inproc, service, host
    ):
        faulty = FaultInjectingTransport(inproc, always("duplicate"))
        result = faulty.call_request(
            Request("svc", "insert", {"value": "x"}, idem="k1")
        )
        assert service.applied == ["x"]
        assert result == 1  # duplicate delivery returned the cached reply
        assert host.dedup_stats()["hits"] == 1

    def test_delay_is_accounted(self, inproc, service):
        faulty = FaultInjectingTransport(
            inproc, FaultPlan(delay=1.0, delay_seconds=0.25)
        )
        faulty.call("svc", "read", value=1)
        assert faulty.stats().simulated_delay_seconds >= 0.25
        assert faulty.stats().faults_injected == 1

    def test_batch_frame_faults(self, inproc, service):
        faulty = FaultInjectingTransport(inproc, always("drop"))
        with pytest.raises(TransportFault):
            faulty.call_batch([Request("svc", "insert", {"value": 1})])
        assert service.applied == []

    def test_batch_duplicate_dedups_keyed_requests(self, inproc, service):
        faulty = FaultInjectingTransport(inproc, always("duplicate"))
        responses = faulty.call_batch([
            Request("svc", "insert", {"value": 1}, idem="a"),
            Request("svc", "insert", {"value": 2}, idem="b"),
        ])
        assert [r.ok for r in responses] == [True, True]
        assert service.applied == [1, 2]

    def test_schedule_json_is_reproduction_artifact(self, inproc):
        faulty = FaultInjectingTransport(inproc, always("drop"), seed=42)
        with pytest.raises(TransportFault):
            faulty.call("svc", "read", value=1)
        artifact = faulty.schedule_json()
        assert '"seed": 42' in artifact
        assert '"drop"' in artifact


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_in_band_and_is_seeded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        a = [policy.backoff(1, random.Random(3)) for _ in range(5)]
        b = [policy.backoff(1, random.Random(3)) for _ in range(5)]
        assert a == b
        assert all(0.05 <= d <= 0.15 for d in a)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class FlakyTransport(Transport):
    """Fails the first ``failures`` deliveries, then delegates."""

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = failures
        self.seen_requests = []

    def call(self, service, method, **kwargs):
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request):
        self.seen_requests.append(request)
        if self.failures > 0:
            self.failures -= 1
            raise TransportFault("flaky")
        return self.inner.call_request(request)

    def call_batch(self, requests):
        self.seen_requests.extend(requests)
        if self.failures > 0:
            self.failures -= 1
            raise TransportFault("flaky")
        return self.inner.call_batch(requests)

    def stats(self):
        return self.inner.stats()


def fast_policy(**overrides):
    defaults = dict(max_attempts=4, sleep=False, jitter=0.0,
                    base_delay=0.01)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestResilientTransport:
    def test_retries_until_success(self, inproc, service):
        flaky = FlakyTransport(inproc, failures=2)
        resilient = ResilientTransport(flaky, fast_policy(), seed=0)
        assert resilient.call("svc", "insert", value="x") == 1
        assert service.applied == ["x"]
        assert resilient.stats().retries == 2

    def test_retry_reuses_one_idempotency_key(self, inproc, service):
        flaky = FlakyTransport(inproc, failures=2)
        resilient = ResilientTransport(flaky, fast_policy(), seed=0)
        resilient.call("svc", "insert", value="x")
        keys = {request.idem for request in flaky.seen_requests}
        assert len(keys) == 1 and keys != {""}

    def test_reads_stay_unkeyed(self, inproc, service):
        flaky = FlakyTransport(inproc, failures=0)
        resilient = ResilientTransport(flaky, fast_policy(), seed=0)
        resilient.call("svc", "read", value=1)
        assert flaky.seen_requests[-1].idem == ""

    def test_retry_after_disconnect_applies_once(self, inproc, service):
        # The dangerous case: the request WAS applied, the reply was
        # lost.  The retried delivery must hit the dedup window.
        calls = {"n": 0}

        class OneDisconnect(Transport):
            def call(self, service, method, **kwargs):
                return self.call_request(Request(service, method, kwargs))

            def call_request(self, request):
                calls["n"] += 1
                if calls["n"] == 1:
                    inproc.call_request(request)
                    raise TransportFault("reply lost")
                return inproc.call_request(request)

            def call_batch(self, requests):
                return inproc.call_batch(requests)

            def stats(self):
                return inproc.stats()

        resilient = ResilientTransport(OneDisconnect(), fast_policy(),
                                       seed=0)
        result = resilient.call("svc", "insert", value="x")
        assert service.applied == ["x"]  # applied exactly once
        assert result == 1               # retry returned the cached reply

    def test_remote_errors_are_not_retried(self, inproc, service):
        flaky = FlakyTransport(inproc, failures=0)
        resilient = ResilientTransport(flaky, fast_policy(), seed=0)
        with pytest.raises(RemoteError) as excinfo:
            resilient.call("svc", "fail", reason="boom")
        assert excinfo.value.remote_type == "ValueError"
        assert resilient.stats().retries == 0

    def test_exhausted_retries_raise_typed_error(self, inproc):
        flaky = FlakyTransport(inproc, failures=99)
        resilient = ResilientTransport(flaky, fast_policy(max_attempts=3),
                                       seed=0)
        with pytest.raises(RetryExhausted) as excinfo:
            resilient.call("svc", "read", value=1)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransportFault)

    def test_deadline_exceeded(self, inproc):
        clock = {"now": 0.0}

        def fake_clock():
            clock["now"] += 0.3
            return clock["now"]

        flaky = FlakyTransport(inproc, failures=99)
        resilient = ResilientTransport(
            flaky, fast_policy(max_attempts=10, deadline=0.5),
            seed=0, clock=fake_clock,
        )
        with pytest.raises(DeadlineExceeded):
            resilient.call("svc", "read", value=1)

    def test_batch_retry_is_dedup_safe(self, inproc, service):
        class DisconnectOnce(Transport):
            def __init__(self):
                self.first = True

            def call(self, service_, method, **kwargs):
                return inproc.call(service_, method, **kwargs)

            def call_batch(self, requests):
                if self.first:
                    self.first = False
                    inproc.call_batch(requests)
                    raise TransportFault("reply lost")
                return inproc.call_batch(requests)

            def stats(self):
                return inproc.stats()

        resilient = ResilientTransport(DisconnectOnce(), fast_policy(),
                                       seed=0)
        responses = resilient.call_batch([
            Request("svc", "insert", {"value": 1}),
            Request("svc", "insert", {"value": 2}),
        ])
        assert [r.ok for r in responses] == [True, True]
        assert service.applied == [1, 2]  # once each, not twice


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=threshold,
                          reset_timeout=reset),
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_failure_count(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock["now"] = 6.0
        assert breaker.allow()  # half-open probe
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock["now"] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert not breaker.allow()

    def test_resilient_transport_fails_fast_when_open(self, inproc):
        clock = {"now": 0.0}
        flaky = FlakyTransport(inproc, failures=99)
        resilient = ResilientTransport(
            flaky, fast_policy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=2,
                                  reset_timeout=100.0),
            seed=0, clock=lambda: clock["now"],
        )
        for _ in range(2):
            with pytest.raises(RetryExhausted):
                resilient.call("svc", "read", value=1)
        wire_calls = len(flaky.seen_requests)
        with pytest.raises(CircuitOpenError):
            resilient.call("svc", "read", value=1)
        assert len(flaky.seen_requests) == wire_calls  # wire untouched
        assert resilient.stats().breaker_opens == 1


class TestServiceHostDedup:
    def test_keyed_request_applied_once(self, host, service):
        request = Request("svc", "insert", {"value": "x"}, idem="key")
        first = host.dispatch(request)
        second = host.dispatch(request)
        assert service.applied == ["x"]
        assert first == second
        stats = host.dedup_stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["evictions"] == 0

    def test_unkeyed_request_applied_every_time(self, host, service):
        request = Request("svc", "insert", {"value": "x"})
        host.dispatch(request)
        host.dispatch(request)
        assert service.applied == ["x", "x"]

    def test_error_responses_are_cached_too(self, host, service):
        request = Request("svc", "fail", {"reason": "boom"}, idem="key")
        first = host.dispatch(request)
        second = host.dispatch(request)
        assert not first.ok and first == second

    def test_window_eviction(self, service):
        host = ServiceHost(dedup_window=2)
        host.register("svc", service)
        for key in ("a", "b", "c"):
            host.dispatch(Request("svc", "insert", {"value": key},
                                  idem=key))
        # "a" was evicted: replaying it applies again.
        host.dispatch(Request("svc", "insert", {"value": "a"}, idem="a"))
        assert service.applied == ["a", "b", "c", "a"]

    def test_idem_survives_the_wire(self, host, service, inproc):
        inproc.call_request(
            Request("svc", "insert", {"value": "x"}, idem="wire-key")
        )
        inproc.call_request(
            Request("svc", "insert", {"value": "x"}, idem="wire-key")
        )
        assert service.applied == ["x"]

    def test_request_payload_roundtrip_with_idem(self):
        request = Request("s", "m", {"a": 1}, idem="k")
        assert Request.from_payload(request.to_payload()) == request

    def test_unkeyed_payload_omits_idem(self):
        assert "idem" not in Request("s", "m", {}).to_payload()


class ShortBatchTransport(Transport):
    """Buggy provider answering fewer responses than requests."""

    def call(self, service, method, **kwargs):
        return None

    def call_batch(self, requests):
        return [Response(ok=True, result=None)
                for _ in range(len(requests) - 1)]

    def stats(self):
        from repro.net.latency import NetworkStats

        return NetworkStats()


class TestMultiCloudResilience:
    def test_incomplete_batch_raises_instead_of_shifting_slots(self):
        transport = MultiCloudTransport([
            (prefix_rule(""), ShortBatchTransport()),
        ])
        with pytest.raises(TransportError, match="incomplete"):
            transport.call_batch([
                Request("a", "m", {}), Request("a", "m", {}),
            ])

    def test_failover_engages_when_breaker_opens(self, host, service):
        primary_inner = FlakyTransport(InProcTransport(host), failures=99)
        primary = ResilientTransport(
            primary_inner, fast_policy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=1,
                                  reset_timeout=1000.0),
            seed=0,
        )
        secondary = InProcTransport(host)
        transport = MultiCloudTransport([
            (prefix_rule("svc"), primary, secondary),
        ])
        # First call trips the primary's breaker (counted as a failure).
        with pytest.raises(RetryExhausted):
            transport.call("svc", "read", value=1)
        # Breaker now open: traffic fails over to the secondary.
        assert transport.call("svc", "read", value=2) == 2
        assert transport.stats().failovers == 1

    def test_failover_batch(self, host, service):
        primary_inner = FlakyTransport(InProcTransport(host), failures=99)
        primary = ResilientTransport(
            primary_inner, fast_policy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=1,
                                  reset_timeout=1000.0),
            seed=0,
        )
        secondary = InProcTransport(host)
        transport = MultiCloudTransport([
            (prefix_rule("svc"), primary, secondary),
        ])
        with pytest.raises(RetryExhausted):
            transport.call("svc", "read", value=1)
        responses = transport.call_batch([
            Request("svc", "insert", {"value": 1}),
            Request("svc", "insert", {"value": 2}),
        ])
        assert [r.ok for r in responses] == [True, True]
        assert service.applied == [1, 2]
        assert transport.stats().failovers >= 1

    def test_no_secondary_propagates_circuit_open(self, host):
        primary = ResilientTransport(
            FlakyTransport(InProcTransport(host), failures=99),
            fast_policy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=1,
                                  reset_timeout=1000.0),
            seed=0,
        )
        transport = MultiCloudTransport([(prefix_rule("svc"), primary)])
        with pytest.raises(RetryExhausted):
            transport.call("svc", "read", value=1)
        with pytest.raises(CircuitOpenError):
            transport.call("svc", "read", value=2)


class CallOnlyTransport(Transport):
    """A minimal transport using the base call_batch fallback."""

    def __init__(self, host):
        self._direct = DirectTransport(host)

    def call(self, service, method, **kwargs):
        if method == "explode":
            raise ValueError("local failure")  # not a RemoteError
        if method == "linkdown":
            raise TransportFault("link down")
        return self._direct.call(service, method, **kwargs)

    def stats(self):
        return self._direct.stats()


class TestBaseCallBatchFallback:
    """Regression: the documented error-isolation contract of the base
    ``Transport.call_batch`` (transport.py) held only for RemoteError."""

    def test_non_remote_errors_become_error_slots(self, host, service):
        transport = CallOnlyTransport(host)
        responses = transport.call_batch([
            Request("svc", "insert", {"value": 1}),
            Request("svc", "explode", {}),
            Request("svc", "insert", {"value": 2}),
        ])
        assert [r.ok for r in responses] == [True, False, True]
        assert responses[1].error_type == "ValueError"
        assert service.applied == [1, 2]  # isolation: batch completed

    def test_remote_error_type_preserved(self, host):
        transport = CallOnlyTransport(host)
        responses = transport.call_batch([Request("svc", "fail",
                                                  {"reason": "r"})])
        assert responses[0].error_type == "ValueError"

    def test_link_failures_still_abort_the_batch(self, host):
        transport = CallOnlyTransport(host)
        with pytest.raises(TransportFault):
            transport.call_batch([Request("svc", "linkdown", {})])
