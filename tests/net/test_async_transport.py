"""The transports' async call paths and the cross-operation coalescer.

Every transport inherits working ``call_async``/``call_batch_async``
adapters (sync call on a worker thread); InProc and TCP additionally
implement native asyncio paths whose results — and wire accounting —
must match their sync twins.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.errors import RemoteError, TransportError
from repro.net.coalesce import FrameCoalescer
from repro.net.latency import NetworkModel
from repro.net.resilience import (
    ResilienceConfig,
    RetryPolicy,
    wrap_resilient,
)
from repro.net.rpc import Request, Response, ServiceHost
from repro.net.tcp import TcpRpcServer, TcpTransport
from repro.net.transport import DirectTransport, InProcTransport, Transport


class EchoService:
    def __init__(self):
        self.lock = threading.Lock()
        self.calls = 0

    def echo(self, value):
        with self.lock:
            self.calls += 1
        return value

    def slow_echo(self, value, delay):
        time.sleep(delay)
        return self.echo(value)

    def boom(self):
        raise ValueError("boom")


@pytest.fixture()
def host():
    service = EchoService()
    host = ServiceHost()
    host.register("echo", service)
    return host


def run(coroutine):
    return asyncio.run(coroutine)


class TestDefaultAsyncAdapters:
    def test_direct_transport_inherits_to_thread_adapter(self, host):
        transport = DirectTransport(host)
        assert run(transport.call_async("echo", "echo", value=7)) == 7

    def test_batch_adapter_matches_sync(self, host):
        transport = DirectTransport(host)
        requests = [Request("echo", "echo", {"value": i})
                    for i in range(4)]
        sync = [r.result for r in transport.call_batch(requests)]
        via_async = run(transport.call_batch_async(requests))
        assert [r.result for r in via_async] == sync == [0, 1, 2, 3]

    def test_remote_error_surfaces(self, host):
        transport = DirectTransport(host)
        with pytest.raises(RemoteError):
            run(transport.call_async("echo", "boom"))


class TestInProcNativeAsync:
    def test_result_and_metering_match_sync(self, host):
        sync_t = InProcTransport(host, NetworkModel(sleep=False))
        async_t = InProcTransport(host, NetworkModel(sleep=False))
        assert sync_t.call("echo", "echo", value="x") == run(
            async_t.call_async("echo", "echo", value="x")
        )
        # Native path meters the same frames as the sync path.
        assert async_t.stats().bytes_sent == sync_t.stats().bytes_sent
        assert (async_t.stats().messages_sent
                == sync_t.stats().messages_sent)

    def test_async_calls_overlap_modelled_latency(self, host):
        # 30 ms one-way latency, slept on the loop: 8 concurrent calls
        # should cost ~1 round trip, not 8.
        transport = InProcTransport(
            host, NetworkModel(one_way_latency_ms=30.0, sleep=True)
        )

        async def main():
            return await asyncio.gather(*[
                transport.call_async("echo", "echo", value=i)
                for i in range(8)
            ])

        started = time.perf_counter()
        results = run(main())
        elapsed = time.perf_counter() - started
        assert results == list(range(8))
        assert elapsed < 8 * 0.06 / 2

    def test_batch_async(self, host):
        transport = InProcTransport(host)
        responses = run(transport.call_batch_async(
            [Request("echo", "echo", {"value": i}) for i in range(3)]
        ))
        assert [r.result for r in responses] == [0, 1, 2]


class TestTcpNativeAsync:
    @pytest.fixture()
    def server(self, host):
        server = TcpRpcServer(host)
        server.serve_in_background()
        yield server
        server.shutdown()
        server.server_close()

    def test_roundtrip_matches_sync(self, server):
        transport = TcpTransport(server.endpoint)
        try:
            assert transport.call("echo", "echo", value=1) == 1
            assert run(transport.call_async("echo", "echo", value=2)) == 2
            responses = run(transport.call_batch_async(
                [Request("echo", "echo", {"value": i}) for i in range(3)]
            ))
            assert [r.result for r in responses] == [0, 1, 2]
        finally:
            transport.close()

    def test_concurrent_async_calls_ride_parallel_sockets(self, server):
        transport = TcpTransport(server.endpoint)
        try:
            async def main():
                return await asyncio.gather(*[
                    transport.call_async("echo", "slow_echo",
                                         value=i, delay=0.05)
                    for i in range(6)
                ])

            started = time.perf_counter()
            results = run(main())
            elapsed = time.perf_counter() - started
            assert results == list(range(6))
            # Serialized over one socket this is >= 0.30 s.
            assert elapsed < 0.25
        finally:
            transport.close()

    def test_closed_transport_refuses_async(self, server):
        transport = TcpTransport(server.endpoint)
        transport.close()
        with pytest.raises(TransportError):
            run(transport.call_async("echo", "echo", value=1))


class TestResilientAsync:
    def test_retries_then_succeeds(self, host):
        class Flaky(Transport):
            def __init__(self, inner, failures):
                self._inner = inner
                self.failures = failures
                self.attempts = 0

            def call(self, service, method, **kwargs):
                return self.call_request(
                    Request(service, method, kwargs)
                )

            def call_request(self, request):
                self.attempts += 1
                if self.failures > 0:
                    self.failures -= 1
                    raise TransportError("flake")
                return self._inner.call_request(request)

            def stats(self):
                return self._inner.stats()

        flaky = Flaky(DirectTransport(host), failures=2)
        resilient = wrap_resilient(flaky, ResilienceConfig(
            retry=RetryPolicy(max_attempts=5, sleep=False),
        ))
        assert run(resilient.call_async("echo", "echo", value=9)) == 9
        assert flaky.attempts == 3


class TestFrameCoalescer:
    class CountingInner(Transport):
        def __init__(self, delay=0.0):
            self.delay = delay
            self.lock = threading.Lock()
            self.batches: list[list[Request]] = []

        def call(self, service, method, **kwargs):  # pragma: no cover
            raise NotImplementedError

        def call_request(self, request):  # pragma: no cover
            raise NotImplementedError

        def call_batch(self, requests):
            requests = list(requests)
            if self.delay:
                time.sleep(self.delay)
            with self.lock:
                self.batches.append(requests)
            return [Response(ok=True, result=r.kwargs["value"])
                    for r in requests]

        def stats(self):  # pragma: no cover - unused
            from repro.net.latency import NetworkStats

            return NetworkStats()

    @staticmethod
    def frame(tag, n):
        return [Request("svc", "insert", {"value": f"{tag}{i}"})
                for i in range(n)]

    def test_frames_within_window_share_one_wire_batch(self):
        inner = self.CountingInner()
        coalescer = FrameCoalescer(inner, window_s=0.05, max_slots=64)
        try:
            f1 = coalescer.submit(self.frame("a", 2))
            f2 = coalescer.submit(self.frame("b", 3))
            r1, r2 = f1.result(2), f2.result(2)
            assert [r.result for r in r1] == ["a0", "a1"]
            assert [r.result for r in r2] == ["b0", "b1", "b2"]
            assert len(inner.batches) == 1
            assert len(inner.batches[0]) == 5
            assert coalescer.stats.frames_in == 2
            assert coalescer.stats.batches_out == 1
        finally:
            coalescer.close()

    def test_max_slots_closes_the_window_early(self):
        inner = self.CountingInner()
        coalescer = FrameCoalescer(inner, window_s=10.0, max_slots=4)
        try:
            f1 = coalescer.submit(self.frame("a", 2))
            f2 = coalescer.submit(self.frame("b", 2))
            f1.result(2)
            f2.result(2)
            assert len(inner.batches) == 1
        finally:
            coalescer.close()

    def test_failure_fans_out_to_every_member_frame(self):
        class FailingInner(self.CountingInner):
            def call_batch(self, requests):
                raise TransportError("wire down")

        coalescer = FrameCoalescer(FailingInner(), window_s=0.02,
                                   max_slots=8)
        try:
            f1 = coalescer.submit(self.frame("a", 1))
            f2 = coalescer.submit(self.frame("b", 1))
            for f in (f1, f2):
                with pytest.raises(TransportError):
                    f.result(2)
        finally:
            coalescer.close()

    def test_close_drains_cleanly(self):
        inner = self.CountingInner()
        coalescer = FrameCoalescer(inner, window_s=0.01)
        future = coalescer.submit(self.frame("a", 1))
        future.result(2)
        coalescer.close()
