"""Cache tier × frame coalescing: a cache-hit slot never re-ships.

The coalescer merges concurrently prepared frames into one wire batch;
the cache tier serves hits above the whole transport stack.  These
tests pin the interaction down: when an operation's fetch set is
partially cached, the frame it contributes holds only the miss slots —
a hit is never double-dispatched, alone or inside a coalesced batch.
"""

from __future__ import annotations

import threading

from repro.cache import CacheConfig
from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation, Schema
from repro.gateway.runtime import SyncGateway
from repro.net.batch import PipelineConfig
from repro.net.transport import InProcTransport, Transport
from repro.tactics import register_builtin_tactics


class FetchRecorder(Transport):
    """Records every document id the wire is asked to deliver."""

    def __init__(self, inner):
        self.inner = inner
        self.lock = threading.Lock()
        self.fetched: list[str] = []

    def _note(self, method, kwargs):
        with self.lock:
            if method == "get":
                self.fetched.append(kwargs["doc_id"])
            elif method == "get_many":
                self.fetched.extend(kwargs["doc_ids"])

    def call(self, service, method, **kwargs):
        self._note(method, kwargs)
        return self.inner.call(service, method, **kwargs)

    def call_request(self, request):
        self._note(request.method, request.kwargs)
        return self.inner.call_request(request)

    def call_batch(self, requests):
        requests = list(requests)
        for request in requests:
            self._note(request.method, request.kwargs)
        return self.inner.call_batch(requests)

    async def call_request_async(self, request):
        self._note(request.method, request.kwargs)
        return await self.inner.call_request_async(request)

    async def call_batch_async(self, requests):
        requests = list(requests)
        for request in requests:
            self._note(request.method, request.kwargs)
        return await self.inner.call_batch_async(requests)

    def stats(self):
        return self.inner.stats()

    def reset(self):
        with self.lock:
            self.fetched = []


def deploy():
    registry = TacticRegistry()
    register_builtin_tactics(registry)
    cloud = CloudZone(registry)
    recorder = FetchRecorder(InProcTransport(cloud.host))
    blinder = DataBlinder(
        "coalcache", recorder, registry=registry,
        pipeline=PipelineConfig(
            batch_writes=True, coalesce_window_ms=2.0,
            cache=CacheConfig(),
        ),
    )
    schema = Schema.define(
        "rec",
        status=("string", FieldAnnotation.parse("C4", "I,EQ")),
        note="string",
    )
    blinder.register_schema(schema)
    return blinder, recorder


class TestCoalescedCachedReads:
    def test_partial_hit_fetch_ships_only_the_misses(self):
        blinder, recorder = deploy()
        entities = blinder.entities("rec")
        ids = entities.insert_many(
            [{"status": "a", "note": f"n{i}"} for i in range(6)]
        )
        warmed = sorted(ids)[:3]
        for doc_id in warmed:
            entities.get(doc_id)
        recorder.reset()
        docs = entities.find(Eq("status", "a"))
        assert {d["_id"] for d in docs} == set(ids)
        fetched = recorder.fetched
        assert set(fetched) == set(ids) - set(warmed)
        # And the misses shipped exactly once each — no re-dispatch.
        assert len(fetched) == len(set(fetched))

    def test_concurrent_hit_and_miss_do_not_double_dispatch(self):
        """One coalesce window, two concurrent gets: the cached slot
        contributes nothing to the wire; only the miss ships."""
        blinder, recorder = deploy()
        runtime = blinder.async_runtime()
        try:
            gateway = SyncGateway(runtime, principal="alice")
            entities = gateway.entities("rec")
            seeded = blinder.entities("rec").insert_many(
                [{"status": "a", "note": f"n{i}"} for i in range(4)]
            )
            hit_id, miss_id = sorted(seeded)[:2]
            warmed = entities.get(hit_id)
            recorder.reset()
            hit_future = runtime.submit(
                lambda: runtime.entities("rec").get(hit_id),
                principal="alice", op="get",
            )
            miss_future = runtime.submit(
                lambda: runtime.entities("rec").get(miss_id),
                principal="alice", op="get",
            )
            assert hit_future.result(10) == warmed
            assert miss_future.result(10)["_id"] == miss_id
            assert recorder.fetched == [miss_id]
        finally:
            runtime.close()

    def test_full_hit_operation_ships_no_frame_at_all(self):
        blinder, recorder = deploy()
        entities = blinder.entities("rec")
        entities.insert_many(
            [{"status": "a", "note": f"n{i}"} for i in range(4)]
        )
        first = entities.find(Eq("status", "a"))
        recorder.reset()
        second = entities.find(Eq("status", "a"))
        assert second == first
        assert recorder.fetched == []
