"""TCP transport: a real socket between the two zones."""

import threading

import pytest

from repro.errors import RemoteError, TransportError
from repro.net.rpc import ServiceHost
from repro.net.tcp import TcpRpcServer, TcpTransport


class MathService:
    def add(self, a, b):
        return a + b

    def echo_bytes(self, blob):
        return blob

    def fail(self):
        raise RuntimeError("remote failure")


@pytest.fixture()
def server():
    host = ServiceHost()
    host.register("math", MathService())
    server = TcpRpcServer(host)
    server.serve_in_background()
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture()
def client(server):
    transport = TcpTransport(server.endpoint)
    yield transport
    transport.close()


class TestTcpTransport:
    def test_call(self, client):
        assert client.call("math", "add", a=2, b=3) == 5

    def test_bytes_survive_the_socket(self, client):
        blob = bytes(range(256))
        assert client.call("math", "echo_bytes", blob=blob) == blob

    def test_large_payload(self, client):
        blob = b"\xab" * 300_000
        assert client.call("math", "echo_bytes", blob=blob) == blob

    def test_remote_error(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.call("math", "fail")
        assert excinfo.value.remote_type == "RuntimeError"

    def test_sequential_calls_reuse_connection(self, client):
        for i in range(20):
            assert client.call("math", "add", a=i, b=1) == i + 1
        assert client.stats().messages_sent == 20

    def test_concurrent_clients(self, server):
        transport = TcpTransport(server.endpoint)
        errors = []

        def worker(base):
            try:
                for i in range(10):
                    assert transport.call("math", "add", a=base,
                                          b=i) == base + i
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        transport.close()
        assert not errors

    def test_traffic_accounting(self, client):
        client.call("math", "add", a=1, b=2)
        stats = client.stats()
        assert stats.bytes_sent > 0 and stats.bytes_received > 0

    def test_closed_transport_rejects_calls(self, server):
        transport = TcpTransport(server.endpoint)
        transport.close()
        with pytest.raises(TransportError):
            transport.call("math", "add", a=1, b=2)

    def test_connect_failure_raises_transport_error(self):
        transport = TcpTransport(("127.0.0.1", 1))  # nothing listens there
        with pytest.raises((TransportError, OSError)):
            transport.call("math", "add", a=1, b=2)

    def test_transparent_reconnect_after_server_restart(self):
        host = ServiceHost()
        host.register("math", MathService())
        server = TcpRpcServer(host)
        server.serve_in_background()
        port = server.endpoint[1]
        transport = TcpTransport(("127.0.0.1", port))
        assert transport.call("math", "add", a=1, b=1) == 2

        # Restart the untrusted zone on the same port: the pooled
        # connection is dead, but the next call reconnects transparently.
        server.shutdown()
        server.server_close()
        server2 = TcpRpcServer(host, ("127.0.0.1", port))
        server2.serve_in_background()
        try:
            assert transport.call("math", "add", a=2, b=3) == 5
        finally:
            transport.close()
            server2.shutdown()
            server2.server_close()
