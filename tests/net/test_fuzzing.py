"""Protocol robustness: malformed frames and adversarial payloads."""

import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import TransportError
from repro.net.message import decode, encode
from repro.net.rpc import ServiceHost
from repro.net.tcp import MAX_FRAME, TcpRpcServer, TcpTransport, send_frame


class Echo:
    def ping(self, x=None):
        return x


@pytest.fixture()
def server():
    host = ServiceHost()
    host.register("echo", Echo())
    server = TcpRpcServer(host)
    server.serve_in_background()
    yield server
    server.shutdown()
    server.server_close()


class TestTcpRobustness:
    def test_garbage_frame_gets_error_response_not_crash(self, server):
        sock = socket.create_connection(server.endpoint, timeout=5)
        try:
            send_frame(sock, b"\xff\xfenot json at all")
            header = sock.recv(4)
            (length,) = struct.unpack(">I", header)
            reply = b""
            while len(reply) < length:
                reply += sock.recv(length - len(reply))
            response = decode(reply)
            assert response["ok"] is False
        finally:
            sock.close()
        # The server still serves well-formed clients afterwards.
        transport = TcpTransport(server.endpoint)
        assert transport.call("echo", "ping", x=1) == 1
        transport.close()

    def test_oversize_frame_rejected_client_side(self, server):
        transport = TcpTransport(server.endpoint)
        try:
            with pytest.raises(TransportError):
                transport.call("echo", "ping", x="a" * (MAX_FRAME + 1))
        finally:
            transport.close()

    def test_half_frame_then_disconnect_is_survivable(self, server):
        sock = socket.create_connection(server.endpoint, timeout=5)
        sock.sendall(struct.pack(">I", 100) + b"only-a-few-bytes")
        sock.close()
        transport = TcpTransport(server.endpoint)
        try:
            assert transport.call("echo", "ping", x="still alive") == (
                "still alive"
            )
        finally:
            transport.close()

    @given(junk=st.binary(min_size=1, max_size=64))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture,
              ])
    def test_random_junk_never_hangs_the_server(self, server, junk):
        sock = socket.create_connection(server.endpoint, timeout=5)
        try:
            sock.sendall(junk)
        finally:
            sock.close()
        transport = TcpTransport(server.endpoint)
        try:
            assert transport.call("echo", "ping", x=0) == 0
        finally:
            transport.close()


class TestCodecRobustness:
    @given(junk=st.binary(max_size=80))
    @settings(max_examples=50)
    def test_decode_never_crashes_unexpectedly(self, junk):
        try:
            decode(junk)
        except TransportError:
            pass  # the only acceptable failure mode

    def test_deeply_nested_payload_roundtrips(self):
        payload = {"v": 0}
        for _ in range(40):
            payload = {"nested": payload, "blob": b"\x00"}
        assert decode(encode(payload)) == payload

    def test_spoofed_tag_collisions(self):
        # Dicts that *look* like codec tags but carry extra keys must not
        # be misinterpreted as bytes/tuples.
        payload = {"__b__": "00", "extra": 1}
        assert decode(encode(payload)) == payload
        payload2 = {"__t__": [1, 2], "extra": 1}
        assert decode(encode(payload2)) == payload2
