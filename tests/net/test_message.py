"""Wire codec: roundtrips, tagged types, failure modes."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TransportError
from repro.net.message import decode, encode, wire_size

wire_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**18), max_value=10**18),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=30),
        st.binary(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=12,
)


@given(payload=wire_values)
def test_roundtrip(payload):
    assert decode(encode(payload)) == payload


def test_bytes_tagging():
    assert decode(encode(b"\x00\xff")) == b"\x00\xff"


def test_tuples_survive():
    assert decode(encode((1, (2, b"x")))) == (1, (2, b"x"))


def test_sets_survive():
    assert decode(encode({"ids": {"a", "b"}})) == {"ids": {"a", "b"}}


def test_big_integers_survive():
    n = 2**2048 - 12345  # a Paillier-sized ciphertext
    assert decode(encode({"ct": n})) == {"ct": n}


def test_wire_size_positive():
    assert wire_size({"k": b"\x00" * 10}) > 10


def test_deterministic_encoding():
    assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})


def test_rejects_unencodable():
    with pytest.raises(TransportError):
        encode(object())


def test_rejects_garbage_bytes():
    with pytest.raises(TransportError):
        decode(b"\xff\xfe not json")
