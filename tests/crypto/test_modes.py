"""Block cipher modes: NIST vectors, padding, GCM authentication."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives.aes import AES
from repro.crypto.primitives.modes import (
    _GHash,
    _gf128_mul,
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    gcm_decrypt,
    gcm_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
    xor_bytes,
)
from repro.errors import CryptoError, IntegrityError

SP800_38A_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestCtr:
    def test_nist_sp800_38a_f51(self):
        counter = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        out = ctr_transform(AES(SP800_38A_KEY), counter, plaintext)
        assert out.hex() == "874d6191b620e3261bef6864990db6ce"

    def test_transform_is_involutive(self):
        cipher = AES(bytes(16))
        nonce = bytes(range(16))
        data = b"some plaintext of odd length!"
        once = ctr_transform(cipher, nonce, data)
        assert ctr_transform(cipher, nonce, once) == data

    def test_counter_wraps_at_128_bits(self):
        cipher = AES(bytes(16))
        nonce = b"\xff" * 16
        data = bytes(48)  # forces two counter increments past the wrap
        out = ctr_transform(cipher, nonce, data)
        assert len(out) == 48
        assert ctr_transform(cipher, nonce, out) == data

    def test_rejects_short_nonce(self):
        with pytest.raises(CryptoError):
            ctr_transform(AES(bytes(16)), bytes(12), b"x")


class TestCbc:
    def test_nist_sp800_38a_f21_first_block(self):
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        out = cbc_encrypt(AES(SP800_38A_KEY), iv, plaintext)
        assert out[:16].hex() == "7649abac8119b246cee98e9b12e9197d"

    @given(data=st.binary(max_size=200))
    def test_roundtrip(self, data):
        cipher = AES(b"k" * 16)
        iv = bytes(range(16))
        assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, data)) == data

    def test_rejects_truncated_ciphertext(self):
        cipher = AES(b"k" * 16)
        iv = bytes(16)
        with pytest.raises(CryptoError):
            cbc_decrypt(cipher, iv, b"short")


class TestPkcs7:
    @given(data=st.binary(max_size=100))
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    @given(data=st.binary(max_size=100))
    def test_padded_length_is_block_multiple(self, data):
        assert len(pkcs7_pad(data)) % 16 == 0

    def test_rejects_bad_padding(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(bytes(15) + b"\x03")
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"")
        with pytest.raises(CryptoError):
            pkcs7_unpad(bytes(16) + b"\x00" * 15 + b"\x11")


class TestGcm:
    KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    IV = bytes.fromhex("cafebabefacedbaddecaf888")
    PT = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
    )
    AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")

    def test_nist_test_case_4(self):
        ciphertext, tag = gcm_encrypt(AES(self.KEY), self.IV, self.PT,
                                      self.AAD)
        assert ciphertext.hex() == (
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca1"
            "2e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
        )
        assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_nist_test_case_1_empty(self):
        ciphertext, tag = gcm_encrypt(AES(bytes(16)), bytes(12), b"")
        assert ciphertext == b""
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_decrypt_roundtrip(self):
        cipher = AES(self.KEY)
        ciphertext, tag = gcm_encrypt(cipher, self.IV, self.PT, self.AAD)
        assert gcm_decrypt(cipher, self.IV, ciphertext, tag,
                           self.AAD) == self.PT

    def test_tamper_detection(self):
        cipher = AES(self.KEY)
        ciphertext, tag = gcm_encrypt(cipher, self.IV, self.PT, self.AAD)
        flipped = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
        with pytest.raises(IntegrityError):
            gcm_decrypt(cipher, self.IV, flipped, tag, self.AAD)

    def test_aad_binding(self):
        cipher = AES(self.KEY)
        ciphertext, tag = gcm_encrypt(cipher, self.IV, self.PT, self.AAD)
        with pytest.raises(IntegrityError):
            gcm_decrypt(cipher, self.IV, ciphertext, tag, b"other aad")

    def test_non_96_bit_nonce(self):
        cipher = AES(self.KEY)
        nonce = bytes(range(20))
        ciphertext, tag = gcm_encrypt(cipher, nonce, self.PT)
        assert gcm_decrypt(cipher, nonce, ciphertext, tag) == self.PT

    @given(plaintext=st.binary(max_size=96), aad=st.binary(max_size=32))
    def test_roundtrip_property(self, plaintext, aad):
        cipher = AES(b"z" * 16)
        ciphertext, tag = gcm_encrypt(cipher, bytes(12), plaintext, aad)
        assert gcm_decrypt(cipher, bytes(12), ciphertext, tag,
                           aad) == plaintext


class TestGhash:
    @given(h=st.binary(min_size=16, max_size=16),
           x=st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_table_agrees_with_reference_multiply(self, h, x):
        ghash = _GHash(h)
        assert ghash._mul_h(x) == _gf128_mul(x, int.from_bytes(h, "big"))

    def test_rejects_unaligned_input(self):
        with pytest.raises(CryptoError):
            _GHash(bytes(16)).digest(b"misaligned")


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\x00") == b"\xf0\xf0"
