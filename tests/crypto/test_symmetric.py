"""AEAD and deterministic (SIV-style) envelopes."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives.random import DeterministicRandom
from repro.crypto.symmetric import (
    Aead,
    Deterministic,
    SealedBox,
    open_value,
    seal_value,
)
from repro.errors import CryptoError, IntegrityError


class TestAead:
    @given(plaintext=st.binary(max_size=120), aad=st.binary(max_size=20))
    def test_roundtrip(self, plaintext, aad):
        envelope = Aead(b"k" * 16)
        assert envelope.decrypt(envelope.encrypt(plaintext, aad),
                                aad) == plaintext

    def test_probabilistic(self):
        envelope = Aead(b"k" * 16)
        assert envelope.encrypt(b"same") != envelope.encrypt(b"same")

    def test_tamper_detection(self):
        envelope = Aead(b"k" * 16)
        sealed = bytearray(envelope.encrypt(b"payload"))
        sealed[-1] ^= 1
        with pytest.raises(IntegrityError):
            envelope.decrypt(bytes(sealed))

    def test_aad_binding(self):
        envelope = Aead(b"k" * 16)
        sealed = envelope.encrypt(b"payload", aad=b"context-1")
        with pytest.raises(IntegrityError):
            envelope.decrypt(sealed, aad=b"context-2")

    def test_key_separation(self):
        sealed = Aead(b"1" * 16).encrypt(b"payload")
        with pytest.raises(IntegrityError):
            Aead(b"2" * 16).decrypt(sealed)

    def test_deterministic_rng_reproduces_ciphertexts(self):
        e1 = Aead(b"k" * 16, rng=DeterministicRandom(b"s"))
        e2 = Aead(b"k" * 16, rng=DeterministicRandom(b"s"))
        assert e1.encrypt(b"m") == e2.encrypt(b"m")

    def test_rejects_bad_key(self):
        with pytest.raises(CryptoError):
            Aead(b"short")


class TestDeterministic:
    @given(plaintext=st.binary(max_size=120))
    def test_roundtrip(self, plaintext):
        envelope = Deterministic(b"k" * 16)
        assert envelope.decrypt(envelope.encrypt(plaintext)) == plaintext

    @given(plaintext=st.binary(max_size=60))
    def test_equal_plaintexts_equal_ciphertexts(self, plaintext):
        envelope = Deterministic(b"k" * 16)
        assert envelope.encrypt(plaintext) == envelope.encrypt(plaintext)

    def test_distinct_plaintexts_distinct_ciphertexts(self):
        envelope = Deterministic(b"k" * 16)
        assert envelope.encrypt(b"a") != envelope.encrypt(b"b")

    def test_aad_changes_ciphertext(self):
        envelope = Deterministic(b"k" * 16)
        assert envelope.encrypt(b"v", b"f1") != envelope.encrypt(b"v", b"f2")

    def test_token_equals_encrypt(self):
        envelope = Deterministic(b"k" * 16)
        assert envelope.token(b"v") == envelope.encrypt(b"v")

    def test_tamper_detection(self):
        envelope = Deterministic(b"k" * 16)
        sealed = bytearray(envelope.encrypt(b"payload"))
        sealed[14] ^= 0xFF
        with pytest.raises((IntegrityError, CryptoError)):
            envelope.decrypt(bytes(sealed))

    def test_rejects_short_key(self):
        with pytest.raises(CryptoError):
            Deterministic(b"tiny")


class TestSealedBox:
    def test_roundtrip(self):
        box = SealedBox(bytes(12), b"ciphertext", bytes(16))
        assert SealedBox.from_bytes(box.to_bytes()) == box

    def test_rejects_short_blob(self):
        with pytest.raises(CryptoError):
            SealedBox.from_bytes(bytes(10))


class TestValueSealing:
    @pytest.mark.parametrize("value", [None, True, False, 0, -17, 3.25,
                                       "text", b"bytes"])
    def test_value_roundtrip_aead(self, value):
        envelope = Aead(b"k" * 16)
        assert open_value(envelope, seal_value(envelope, value)) == value

    @pytest.mark.parametrize("value", [42, "final", 6.3])
    def test_value_roundtrip_deterministic(self, value):
        envelope = Deterministic(b"k" * 16)
        assert open_value(envelope, seal_value(envelope, value)) == value
