"""AES block cipher: FIPS-197 vectors and structural properties."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives.aes import AES, BLOCK_SIZE, INV_SBOX, SBOX
from repro.errors import CryptoError

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f"
     "101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]


@pytest.mark.parametrize("key_hex,expected", FIPS_VECTORS)
def test_fips_197_encrypt(key_hex, expected):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(PLAINTEXT).hex() == expected


@pytest.mark.parametrize("key_hex,expected", FIPS_VECTORS)
def test_fips_197_decrypt(key_hex, expected):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(expected)) == PLAINTEXT


def test_all_zero_key_known_answer():
    assert AES(bytes(16)).encrypt_block(bytes(16)).hex() == (
        "66e94bd4ef8a2c3b884cfa59ca342b2e"
    )


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))
    assert all(INV_SBOX[SBOX[x]] == x for x in range(256))


@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
def test_roundtrip_128(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=32, max_size=32),
       block=st.binary(min_size=16, max_size=16))
def test_roundtrip_256(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
def test_encryption_changes_block(key, block):
    # A block cipher has no fixed point on all inputs with overwhelming
    # probability; equality here would indicate a broken transform.
    assert AES(key).encrypt_block(block) != block or True
    # The meaningful invariant: encrypt is injective per key.
    other = bytes(block[:-1]) + bytes([block[-1] ^ 1])
    cipher = AES(key)
    assert cipher.encrypt_block(block) != cipher.encrypt_block(other)


@pytest.mark.parametrize("bad_length", [0, 1, 15, 17, 20, 31, 33])
def test_rejects_bad_key_lengths(bad_length):
    with pytest.raises(CryptoError):
        AES(bytes(bad_length))


@pytest.mark.parametrize("bad_length", [0, 15, 17, 32])
def test_rejects_bad_block_lengths(bad_length):
    cipher = AES(bytes(16))
    with pytest.raises(CryptoError):
        cipher.encrypt_block(bytes(bad_length))
    with pytest.raises(CryptoError):
        cipher.decrypt_block(bytes(bad_length))


def test_block_size_constant():
    assert BLOCK_SIZE == 16
