"""Order-preserving and order-revealing encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ope import Ope, _hypergeom_sample, _probit
from repro.crypto.ore import Ore, OreCiphertext, compare
from repro.errors import CryptoError


class TestOpe:
    @pytest.fixture(scope="class")
    def scheme(self):
        return Ope(b"ope-key-16-bytes", domain_bits=16, range_bits=28)

    @given(a=st.integers(min_value=0, max_value=2**16 - 1),
           b=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=40, deadline=None)
    def test_order_preservation(self, scheme, a, b):
        ca, cb = scheme.encrypt(a), scheme.encrypt(b)
        if a < b:
            assert ca < cb
        elif a > b:
            assert ca > cb
        else:
            assert ca == cb

    @given(m=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, scheme, m):
        assert scheme.encrypt(m) == scheme.encrypt(m)

    @given(m=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=25, deadline=None)
    def test_range_bounds(self, scheme, m):
        assert 0 <= scheme.encrypt(m) < scheme.range_size

    def test_key_separation(self):
        s1 = Ope(b"a" * 16, domain_bits=12, range_bits=20)
        s2 = Ope(b"b" * 16, domain_bits=12, range_bits=20)
        values = [s1.encrypt(m) == s2.encrypt(m) for m in range(0, 4096, 97)]
        assert not all(values)

    def test_domain_edges(self, scheme):
        low = scheme.encrypt(0)
        high = scheme.encrypt(2**16 - 1)
        assert 0 <= low < high < 2**28

    def test_rejects_out_of_domain(self, scheme):
        with pytest.raises(CryptoError):
            scheme.encrypt(-1)
        with pytest.raises(CryptoError):
            scheme.encrypt(2**16)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(CryptoError):
            Ope(b"k" * 16, domain_bits=16, range_bits=16)
        with pytest.raises(CryptoError):
            Ope(b"", domain_bits=8, range_bits=16)

    def test_large_domain_still_ordered(self):
        scheme = Ope(b"k" * 16, domain_bits=40, range_bits=56)
        points = [0, 17, 2**20, 2**30, 2**39, 2**40 - 1]
        encrypted = [scheme.encrypt(p) for p in points]
        assert encrypted == sorted(encrypted)
        assert len(set(encrypted)) == len(points)

    def test_encrypt_many(self, scheme):
        assert scheme.encrypt_many([3, 1]) == [scheme.encrypt(3),
                                               scheme.encrypt(1)]


class TestSampler:
    @given(coin=st.floats(min_value=0.0, max_value=1.0,
                          exclude_max=True),
           population=st.integers(min_value=2, max_value=10**10),
           marked=st.integers(min_value=1, max_value=100),
           draws=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_sample_in_support(self, coin, population, marked, draws):
        marked = min(marked, population)
        draws = min(draws, population)
        value = _hypergeom_sample(coin, population, marked, draws)
        assert max(0, draws - (population - marked)) <= value
        assert value <= min(marked, draws)

    def test_probit_symmetry(self):
        assert _probit(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _probit(0.975) == pytest.approx(1.95996, abs=1e-3)
        assert _probit(0.025) == pytest.approx(-1.95996, abs=1e-3)


class TestOre:
    @pytest.fixture(scope="class")
    def scheme(self):
        return Ore(b"ore-key", bits=32)

    @given(a=st.integers(min_value=0, max_value=2**32 - 1),
           b=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_compare_matches_plaintext_order(self, scheme, a, b):
        result = compare(scheme.encrypt(a), scheme.encrypt(b))
        assert result == (a > b) - (a < b)

    @given(m=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_serialization_roundtrip(self, scheme, m):
        ciphertext = scheme.encrypt(m)
        assert OreCiphertext.from_bytes(ciphertext.to_bytes()) == ciphertext

    def test_ciphertext_is_not_the_plaintext_order(self, scheme):
        # Digit vectors are PRF-masked: sorting by raw bytes must not
        # reproduce plaintext order for all inputs (else it would be OPE).
        values = list(range(0, 2**16, 997))
        raw_sorted = sorted(values,
                            key=lambda v: scheme.encrypt(v).to_bytes())
        assert raw_sorted != sorted(values)

    def test_rejects_out_of_domain(self, scheme):
        with pytest.raises(CryptoError):
            scheme.encrypt(2**32)
        with pytest.raises(CryptoError):
            scheme.encrypt(-1)

    def test_rejects_width_mismatch(self):
        a = Ore(b"k", bits=16).encrypt(5)
        b = Ore(b"k", bits=32).encrypt(5)
        with pytest.raises(CryptoError):
            compare(a, b)

    def test_rejects_malformed_bytes(self):
        with pytest.raises(CryptoError):
            OreCiphertext.from_bytes(b"\x00")
        with pytest.raises(CryptoError):
            OreCiphertext.from_bytes(b"\x00\x10" + bytes(3))
