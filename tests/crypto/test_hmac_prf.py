"""PRF / HKDF / PRG keyed-hashing layer."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives.hmac_prf import (
    DIGEST_SIZE,
    hash_bytes,
    hkdf,
    hkdf_expand,
    hkdf_extract,
    prf,
    prf_int,
    prg,
)
from repro.errors import CryptoError


class TestPrf:
    def test_deterministic(self):
        assert prf(b"k", b"a", b"b") == prf(b"k", b"a", b"b")

    def test_output_length(self):
        assert len(prf(b"k", b"x")) == DIGEST_SIZE

    def test_part_boundaries_are_unambiguous(self):
        assert prf(b"k", b"ab", b"c") != prf(b"k", b"a", b"bc")
        assert prf(b"k", b"ab") != prf(b"k", b"a", b"b")

    def test_key_separation(self):
        assert prf(b"k1", b"x") != prf(b"k2", b"x")

    def test_rejects_empty_key(self):
        with pytest.raises(CryptoError):
            prf(b"", b"x")

    @given(bits=st.integers(min_value=1, max_value=256))
    def test_prf_int_range(self, bits):
        value = prf_int(b"key", b"input", bits=bits)
        assert 0 <= value < (1 << bits)

    def test_prf_int_rejects_bad_bits(self):
        with pytest.raises(CryptoError):
            prf_int(b"k", b"x", bits=0)
        with pytest.raises(CryptoError):
            prf_int(b"k", b"x", bits=257)


class TestHkdf:
    def test_rfc5869_test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf_expand(hkdf_extract(salt, ikm), info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5"
            "bf34007208d5b887185865"
        )

    def test_rfc5869_test_case_3_zero_salt(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf_expand(hkdf_extract(b"", ikm), b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    @given(length=st.integers(min_value=1, max_value=255))
    def test_output_length(self, length):
        assert len(hkdf(b"ikm", b"info", length)) == length

    def test_info_separation(self):
        assert hkdf(b"ikm", b"a") != hkdf(b"ikm", b"b")

    def test_rejects_oversize(self):
        with pytest.raises(CryptoError):
            hkdf(b"ikm", b"info", 255 * 32 + 1)


class TestPrg:
    @given(length=st.integers(min_value=0, max_value=500))
    def test_length(self, length):
        assert len(prg(b"seed", length)) == length

    def test_prefix_consistency(self):
        # Expanding to different lengths yields a consistent prefix.
        assert prg(b"s", 100)[:32] == prg(b"s", 32)

    def test_label_separation(self):
        assert prg(b"s", 32, label=b"a") != prg(b"s", 32, label=b"b")


def test_hash_bytes_unambiguous():
    assert hash_bytes(b"ab", b"c") != hash_bytes(b"a", b"bc")
    assert len(hash_bytes(b"x")) == 32
