"""Randomness sources."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives.random import (
    DeterministicRandom,
    SystemRandom,
    default_random,
)


class TestSystemRandom:
    def test_token_bytes_length(self):
        assert len(SystemRandom().token_bytes(24)) == 24

    def test_randbelow_range(self):
        rng = SystemRandom()
        assert all(0 <= rng.randbelow(10) < 10 for _ in range(100))

    def test_default_is_singleton(self):
        assert default_random() is default_random()


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(b"seed")
        b = DeterministicRandom(b"seed")
        assert a.token_bytes(100) == b.token_bytes(100)
        assert a.randbelow(10**9) == b.randbelow(10**9)

    def test_different_seeds_differ(self):
        assert DeterministicRandom(b"a").token_bytes(32) != (
            DeterministicRandom(b"b").token_bytes(32)
        )

    def test_string_seed(self):
        assert DeterministicRandom("s").token_bytes(8) == (
            DeterministicRandom(b"s").token_bytes(8)
        )

    def test_stream_is_consumed(self):
        rng = DeterministicRandom(b"seed")
        assert rng.token_bytes(16) != rng.token_bytes(16)

    @given(upper=st.integers(min_value=1, max_value=2**128))
    def test_randbelow_range(self, upper):
        assert 0 <= DeterministicRandom(b"x").randbelow(upper) < upper

    def test_randbelow_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicRandom(b"x").randbelow(0)
