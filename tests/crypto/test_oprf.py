"""DH-OPRF primitive and its HSM integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.oprf import (
    OprfClient,
    evaluate_blinded,
    generate_group,
    generate_key,
    unblinded_evaluate,
)
from repro.crypto.primitives.random import DeterministicRandom
from repro.errors import CryptoError, KeyManagementError
from repro.keys.hsm import SimulatedHsm

GROUP_BITS = 128  # small for test speed; size-independent properties


@pytest.fixture(scope="module")
def group():
    return generate_group(GROUP_BITS,
                          DeterministicRandom(b"oprf-group").randbelow)


@pytest.fixture(scope="module")
def key(group):
    return generate_key(group, DeterministicRandom(b"oprf-key"))


class TestProtocol:
    @given(data=st.binary(min_size=1, max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_blinded_equals_direct_evaluation(self, group, key, data):
        client = OprfClient(group)
        state, blinded = client.blind(data)
        evaluated = evaluate_blinded(group, key, blinded)
        output = client.finalize(data, state, evaluated)
        assert output == unblinded_evaluate(group, key, data)

    def test_deterministic_across_blindings(self, group, key):
        client = OprfClient(group)
        outputs = set()
        for _ in range(5):
            state, blinded = client.blind(b"same input")
            evaluated = evaluate_blinded(group, key, blinded)
            outputs.add(client.finalize(b"same input", state, evaluated))
        assert len(outputs) == 1

    def test_blinding_randomises_the_wire(self, group, key):
        client = OprfClient(group)
        _, blinded_a = client.blind(b"input")
        _, blinded_b = client.blind(b"input")
        assert blinded_a != blinded_b  # the server can't link inputs

    def test_different_inputs_different_outputs(self, group, key):
        assert unblinded_evaluate(group, key, b"a") != unblinded_evaluate(
            group, key, b"b"
        )

    def test_different_keys_different_outputs(self, group):
        k1 = generate_key(group, DeterministicRandom(b"k1"))
        k2 = generate_key(group, DeterministicRandom(b"k2"))
        assert unblinded_evaluate(group, k1, b"x") != unblinded_evaluate(
            group, k2, b"x"
        )

    def test_rejects_out_of_group_elements(self, group, key):
        with pytest.raises(CryptoError):
            evaluate_blinded(group, key, 0)
        with pytest.raises(CryptoError):
            evaluate_blinded(group, key, group.p)
        client = OprfClient(group)
        with pytest.raises(CryptoError):
            client.finalize(b"x", 3, group.p + 5)

    def test_hash_to_group_lands_in_subgroup(self, group):
        for data in (b"a", b"b", b"longer input value"):
            element = group.hash_to_group(data)
            # Quadratic residues have order q: element^q == 1.
            assert pow(element, group.q, group.p) == 1


class TestHsmIntegration:
    def test_create_and_evaluate(self):
        hsm = SimulatedHsm(DeterministicRandom(b"hsm"))
        group = hsm.create_oprf_key("idx", group_bits=128)
        client = OprfClient(group)
        state, blinded = client.blind(b"value")
        output = client.finalize(b"value", state,
                                 hsm.oprf_evaluate("idx", blinded))
        # Re-derivation is stable.
        state2, blinded2 = client.blind(b"value")
        output2 = client.finalize(b"value", state2,
                                  hsm.oprf_evaluate("idx", blinded2))
        assert output == output2

    def test_idempotent_creation(self):
        hsm = SimulatedHsm(DeterministicRandom(b"hsm2"))
        g1 = hsm.create_oprf_key("idx", group_bits=128)
        g2 = hsm.create_oprf_key("idx", group_bits=128)
        assert g1 == g2

    def test_unknown_label_rejected(self):
        with pytest.raises(KeyManagementError):
            SimulatedHsm().oprf_evaluate("ghost", 4)

    def test_key_isolation_between_labels(self):
        hsm = SimulatedHsm(DeterministicRandom(b"hsm3"))
        ga = hsm.create_oprf_key("a", group_bits=128)
        hsm.create_oprf_key("b", group_bits=128)
        client = OprfClient(ga)
        state, blinded = client.blind(b"x")
        out_a = client.finalize(b"x", state,
                                hsm.oprf_evaluate("a", blinded))
        # Same blinded element under the other label gives a different
        # function (possibly a different group; guard for that).
        try:
            out_b = client.finalize(b"x", state,
                                    hsm.oprf_evaluate("b", blinded))
        except (CryptoError, KeyManagementError):
            return
        assert out_a != out_b
