"""Obfuscator precomputation for Paillier encryption."""

import time

import pytest

from repro.crypto import paillier
from repro.crypto.primitives.random import DeterministicRandom
from repro.errors import CryptoError

PAILLIER_BITS = 256


@pytest.fixture(scope="module")
def key():
    return paillier.generate_keypair(
        PAILLIER_BITS, DeterministicRandom(b"paillier-pool").randbelow
    )


class TestObfuscator:
    def test_mask_is_in_group(self, key):
        mask = paillier.obfuscator(key.public)
        assert 0 < mask < key.public.n_squared

    def test_encrypt_with_mask_matches_encrypt(self, key):
        # encrypt() is defined as encrypt_with_mask over a fresh mask;
        # a precomputed mask must decrypt identically.
        mask = paillier.obfuscator(key.public)
        ciphertext = paillier.encrypt_with_mask(key.public, 1234, mask)
        assert paillier.decrypt(key, ciphertext) == 1234

    def test_masked_encryption_stays_homomorphic(self, key):
        ea = paillier.encrypt_with_mask(
            key.public, 30, paillier.obfuscator(key.public)
        )
        eb = paillier.encrypt_with_mask(
            key.public, 12, paillier.obfuscator(key.public)
        )
        assert paillier.decrypt(key, ea + eb) == 42


class TestObfuscatorPool:
    def test_rejects_non_positive_size(self, key):
        with pytest.raises(CryptoError):
            paillier.ObfuscatorPool(key.public, size=0)

    def test_roundtrip_signed(self, key):
        pool = paillier.ObfuscatorPool(key.public, size=2)
        try:
            for message in (0, 42, -17, 123456):
                assert paillier.decrypt(key, pool.encrypt(message)) == (
                    message
                )
        finally:
            pool.close()

    def test_encryption_is_probabilistic(self, key):
        pool = paillier.ObfuscatorPool(key.public, size=4)
        try:
            values = {pool.encrypt(5).value for _ in range(6)}
            assert len(values) == 6
        finally:
            pool.close()

    def test_background_refill(self, key):
        pool = paillier.ObfuscatorPool(key.public, size=4)
        try:
            pool.mask()  # first consumption starts the refill thread
            deadline = time.monotonic() + 5.0
            while pool.available() < 4 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.available() == 4
        finally:
            pool.close()

    def test_empty_pool_computes_inline(self, key):
        pool = paillier.ObfuscatorPool(key.public, size=1)
        pool.close()  # refill never runs: every mask is inline
        assert paillier.decrypt(key, pool.encrypt(7)) == 7

    def test_close_is_idempotent(self, key):
        pool = paillier.ObfuscatorPool(key.public, size=1)
        pool.close()
        pool.close()
