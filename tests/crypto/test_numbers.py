"""Number theory: inverses, CRT, Miller–Rabin, prime generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.primitives.numbers import (
    bytes_to_int,
    crt_pair,
    egcd,
    generate_distinct_primes,
    generate_prime,
    generate_safe_prime,
    int_to_bytes,
    invmod,
    is_probable_prime,
    lcm,
)
from repro.errors import CryptoError

KNOWN_PRIMES = [2, 3, 5, 7, 97, 65537, 2**127 - 1, 2**521 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 561, 1105, 1729, 2465, 6601, 8911,  # Carmichael
                    2**128, 65537 * 65539]


@pytest.mark.parametrize("n", KNOWN_PRIMES)
def test_known_primes_accepted(n):
    assert is_probable_prime(n)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_rejected(n):
    assert not is_probable_prime(n)


@given(a=st.integers(min_value=1, max_value=10**12),
       b=st.integers(min_value=1, max_value=10**12))
def test_egcd_bezout_identity(a, b):
    g, x, y = egcd(a, b)
    assert a * x + b * y == g
    assert a % g == 0 and b % g == 0


@given(a=st.integers(min_value=1, max_value=10**9))
def test_invmod_against_prime_modulus(a):
    p = 2**61 - 1  # Mersenne prime
    inverse = invmod(a, p)
    assert a * inverse % p == 1


def test_invmod_rejects_non_coprime():
    with pytest.raises(CryptoError):
        invmod(6, 9)


@given(r1=st.integers(min_value=0, max_value=16),
       r2=st.integers(min_value=0, max_value=18))
def test_crt_pair(r1, r2):
    x = crt_pair(r1, 17, r2, 19)
    assert x % 17 == r1
    assert x % 19 == r2
    assert 0 <= x < 17 * 19


def test_lcm():
    assert lcm(4, 6) == 12
    assert lcm(7, 13) == 91


@pytest.mark.parametrize("bits", [32, 64, 128])
def test_generate_prime_has_exact_bits(bits):
    p = generate_prime(bits)
    assert p.bit_length() == bits
    assert is_probable_prime(p)


def test_generate_safe_prime():
    p = generate_safe_prime(48)
    assert is_probable_prime(p)
    assert is_probable_prime((p - 1) // 2)


def test_generate_distinct_primes():
    primes = generate_distinct_primes(40, count=3)
    assert len(set(primes)) == 3
    assert all(is_probable_prime(p) for p in primes)


@given(n=st.integers(min_value=0, max_value=2**256))
def test_int_bytes_roundtrip(n):
    assert bytes_to_int(int_to_bytes(n)) == n


def test_int_to_bytes_fixed_length():
    assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"
    assert int_to_bytes(0) == b"\x00"
    with pytest.raises(CryptoError):
        int_to_bytes(-1)


def test_deterministic_prime_generation():
    """Prime generation with an injected RNG is reproducible."""
    from repro.crypto.primitives.random import DeterministicRandom

    p1 = generate_prime(64, DeterministicRandom(b"seed").randbelow)
    p2 = generate_prime(64, DeterministicRandom(b"seed").randbelow)
    assert p1 == p2
