"""Canonical value codec and the order-preserving numeric embedding."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.crypto.encoding import (
    decode_value,
    encode_value,
    value_to_ordered_int,
)
from repro.errors import CryptoError

scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=80),
    st.binary(max_size=80),
)


@given(value=scalar_values)
def test_roundtrip(value):
    assert decode_value(encode_value(value)) == value


@given(value=scalar_values)
def test_decoded_type_matches(value):
    decoded = decode_value(encode_value(value))
    assert type(decoded) is type(value)


def test_encoding_is_injective_across_types():
    """Values equal under Python `==` but of different types must not
    collide: DET tokens distinguish 1 from 1.0 and from True."""
    encodings = {encode_value(v) for v in (1, 1.0, True, "1", b"1")}
    assert len(encodings) == 5


def test_deterministic():
    assert encode_value("hello") == encode_value("hello")


def test_rejects_unencodable():
    with pytest.raises(CryptoError):
        encode_value(["list"])  # type: ignore[arg-type]
    with pytest.raises(CryptoError):
        decode_value(b"")
    with pytest.raises(CryptoError):
        decode_value(b"?junk")


numerics = st.one_of(
    st.integers(min_value=-(2**50), max_value=2**50),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e15, max_value=1e15),
)


@given(a=numerics, b=numerics)
def test_ordered_int_preserves_order(a, b):
    fa, fb = float(a), float(b)
    ia, ib = value_to_ordered_int(a), value_to_ordered_int(b)
    if fa < fb:
        assert ia < ib
    elif fa > fb:
        assert ia > ib
    else:
        assert ia == ib


@given(a=numerics)
def test_ordered_int_nonnegative_and_bounded(a):
    value = value_to_ordered_int(a)
    assert 0 <= value < (1 << 64)


@given(a=numerics)
def test_ordered_int_truncation_is_monotone(a):
    full = value_to_ordered_int(a, bits=64)
    narrow = value_to_ordered_int(a, bits=40)
    assert narrow == full >> 24


def test_ordered_int_sign_handling():
    assert (value_to_ordered_int(-math.pi)
            < value_to_ordered_int(-1)
            < value_to_ordered_int(-0.001)
            < value_to_ordered_int(0)
            < value_to_ordered_int(1e-9)
            < value_to_ordered_int(7)
            < value_to_ordered_int(1e12))
