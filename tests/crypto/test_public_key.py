"""RSA (OAEP + trapdoor permutation), Paillier and ElGamal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import elgamal, paillier, rsa
from repro.crypto.primitives.random import DeterministicRandom
from repro.errors import CryptoError

# Small keys keep the suite fast; size-related behaviour is tested
# explicitly where it matters.
RSA_BITS = 1024          # OAEP/SHA-256 needs >= 544-bit moduli
PAILLIER_BITS = 256
ELGAMAL_BITS = 160


@pytest.fixture(scope="module")
def rsa_key():
    return rsa.generate_keypair(RSA_BITS,
                                DeterministicRandom(b"rsa-test").randbelow)


@pytest.fixture(scope="module")
def paillier_key():
    return paillier.generate_keypair(
        PAILLIER_BITS, DeterministicRandom(b"paillier-test").randbelow
    )


@pytest.fixture(scope="module")
def elgamal_key():
    return elgamal.generate_keypair(
        ELGAMAL_BITS, DeterministicRandom(b"elgamal-test").randbelow
    )


class TestRsa:
    def test_keypair_shape(self, rsa_key):
        assert rsa_key.n == rsa_key.p * rsa_key.q
        assert rsa_key.n.bit_length() == RSA_BITS

    def test_oaep_roundtrip(self, rsa_key):
        message = b"wrap this data key"
        assert rsa.oaep_decrypt(
            rsa_key, rsa.oaep_encrypt(rsa_key.public, message)
        ) == message

    def test_oaep_label_binding(self, rsa_key):
        sealed = rsa.oaep_encrypt(rsa_key.public, b"m", label=b"a")
        with pytest.raises(CryptoError):
            rsa.oaep_decrypt(rsa_key, sealed, label=b"b")

    def test_oaep_is_probabilistic(self, rsa_key):
        assert rsa.oaep_encrypt(rsa_key.public, b"m") != rsa.oaep_encrypt(
            rsa_key.public, b"m"
        )

    def test_oaep_rejects_long_message(self, rsa_key):
        too_long = bytes(rsa_key.byte_length - 2 * 32 - 1)
        with pytest.raises(CryptoError):
            rsa.oaep_encrypt(rsa_key.public, too_long)

    def test_oaep_tamper_detection(self, rsa_key):
        sealed = bytearray(rsa.oaep_encrypt(rsa_key.public, b"m"))
        sealed[-1] ^= 1
        with pytest.raises(CryptoError):
            rsa.oaep_decrypt(rsa_key, bytes(sealed))

    @given(x=st.integers(min_value=0, max_value=2**64))
    def test_trapdoor_permutation_inverse(self, rsa_key, x):
        x %= rsa_key.n
        assert rsa_key.invert(rsa_key.public.apply(x)) == x
        assert rsa_key.public.apply(rsa_key.invert(x)) == x

    def test_permutation_rejects_out_of_range(self, rsa_key):
        with pytest.raises(CryptoError):
            rsa_key.public.apply(rsa_key.n)
        with pytest.raises(CryptoError):
            rsa_key.invert(-1)


class TestPaillier:
    @given(m=st.integers(min_value=-10**9, max_value=10**9))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_signed(self, paillier_key, m):
        ciphertext = paillier.encrypt(paillier_key.public, m)
        assert paillier.decrypt(paillier_key, ciphertext) == m

    @given(a=st.integers(min_value=-10**6, max_value=10**6),
           b=st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_additive_homomorphism(self, paillier_key, a, b):
        ea = paillier.encrypt(paillier_key.public, a)
        eb = paillier.encrypt(paillier_key.public, b)
        assert paillier.decrypt(paillier_key, ea + eb) == a + b

    @given(a=st.integers(min_value=-10**5, max_value=10**5),
           k=st.integers(min_value=-50, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_scalar_multiplication(self, paillier_key, a, k):
        ea = paillier.encrypt(paillier_key.public, a)
        assert paillier.decrypt(paillier_key, ea * k) == a * k

    def test_add_plain(self, paillier_key):
        ea = paillier.encrypt(paillier_key.public, 10)
        assert paillier.decrypt(paillier_key, ea.add_plain(32)) == 42

    def test_probabilistic(self, paillier_key):
        e1 = paillier.encrypt(paillier_key.public, 5)
        e2 = paillier.encrypt(paillier_key.public, 5)
        assert e1.value != e2.value
        assert paillier.decrypt(paillier_key, e1) == paillier.decrypt(
            paillier_key, e2
        )

    def test_rejects_oversized_plaintext(self, paillier_key):
        with pytest.raises(CryptoError):
            paillier.encrypt(paillier_key.public,
                             paillier_key.public.max_plaintext + 1)

    def test_rejects_cross_key_addition(self, paillier_key):
        other = paillier.generate_keypair(
            PAILLIER_BITS, DeterministicRandom(b"other").randbelow
        )
        ea = paillier.encrypt(paillier_key.public, 1)
        eb = paillier.encrypt(other.public, 1)
        with pytest.raises(CryptoError):
            _ = ea + eb
        with pytest.raises(CryptoError):
            paillier.decrypt(other, ea)

    def test_fixed_point_codec(self):
        codec = paillier.FixedPointCodec(3)
        assert codec.decode(codec.encode(6.337)) == pytest.approx(6.337)
        assert codec.decode_mean(codec.encode(6.3) + codec.encode(5.1),
                                 2) == pytest.approx(5.7)
        with pytest.raises(CryptoError):
            codec.decode_mean(100, 0)
        with pytest.raises(CryptoError):
            paillier.FixedPointCodec(99)


class TestElGamal:
    @given(m=st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, elgamal_key, m):
        ciphertext = elgamal.encrypt(elgamal_key.public, m)
        assert elgamal.decrypt(elgamal_key, ciphertext) == m

    @given(a=st.integers(min_value=1, max_value=10**4),
           b=st.integers(min_value=1, max_value=10**4))
    @settings(max_examples=20, deadline=None)
    def test_multiplicative_homomorphism(self, elgamal_key, a, b):
        ea = elgamal.encrypt(elgamal_key.public, a)
        eb = elgamal.encrypt(elgamal_key.public, b)
        assert elgamal.decrypt(elgamal_key, ea * eb) == a * b

    def test_homomorphic_exponentiation(self, elgamal_key):
        ciphertext = elgamal.encrypt(elgamal_key.public, 3)
        assert elgamal.decrypt(elgamal_key, ciphertext.pow(4)) == 81

    def test_rejects_non_positive(self, elgamal_key):
        with pytest.raises(CryptoError):
            elgamal.encrypt(elgamal_key.public, 0)

    def test_rejects_oversized(self, elgamal_key):
        with pytest.raises(CryptoError):
            elgamal.encrypt(elgamal_key.public, elgamal_key.public.q)

    def test_rejects_cross_key(self, elgamal_key):
        other = elgamal.generate_keypair(
            ELGAMAL_BITS, DeterministicRandom(b"other-eg").randbelow
        )
        ciphertext = elgamal.encrypt(elgamal_key.public, 2)
        with pytest.raises(CryptoError):
            elgamal.decrypt(other, ciphertext)
