"""Extended NIST test-vector coverage.

The basic vectors live next to each primitive's tests; this module adds
the longer multi-block series from NIST SP 800-38A (CBC, CTR over four
blocks) and the GCM specification's 192/256-bit-key test cases, pinning
the key-schedule paths the short vectors miss.
"""

import pytest

from repro.crypto.primitives.aes import AES
from repro.crypto.primitives.modes import (
    cbc_encrypt,
    ctr_transform,
    gcm_decrypt,
    gcm_encrypt,
)

KEY128 = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
KEY192 = bytes.fromhex("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b")
KEY256 = bytes.fromhex(
    "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"
)

# Four-block plaintext of SP 800-38A.
PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


class TestSp800_38aCtr:
    COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")

    @pytest.mark.parametrize("key,expected", [
        (KEY128,
         "874d6191b620e3261bef6864990db6ce"
         "9806f66b7970fdff8617187bb9fffdff"
         "5ae4df3edbd5d35e5b4f09020db03eab"
         "1e031dda2fbe03d1792170a0f3009cee"),
        (KEY192,
         "1abc932417521ca24f2b0459fe7e6e0b"
         "090339ec0aa6faefd5ccc2c6f4ce8e94"
         "1e36b26bd1ebc670d1bd1d665620abf7"
         "4f78a7f6d29809585a97daec58c6b050"),
        (KEY256,
         "601ec313775789a5b7a7f504bbf3d228"
         "f443e3ca4d62b59aca84e990cacaf5c5"
         "2b0930daa23de94ce87017ba2d84988d"
         "dfc9c58db67aada613c2dd08457941a6"),
    ])
    def test_ctr_four_blocks(self, key, expected):
        out = ctr_transform(AES(key), self.COUNTER, PLAINTEXT)
        assert out.hex() == expected


class TestSp800_38aCbc:
    IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")

    @pytest.mark.parametrize("key,expected", [
        (KEY128,
         "7649abac8119b246cee98e9b12e9197d"
         "5086cb9b507219ee95db113a917678b2"
         "73bed6b8e3c1743b7116e69e22229516"
         "3ff1caa1681fac09120eca307586e1a7"),
        (KEY256,
         "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
         "9cfc4e967edb808d679f777bc6702c7d"
         "39f23369a9d9bacfa530e26304231461"
         "b2eb05e2c39be9fcda6c19078c6a9d1b"),
    ])
    def test_cbc_four_blocks(self, key, expected):
        # Our cbc_encrypt pads; compare the first four blocks only.
        out = cbc_encrypt(AES(key), self.IV, PLAINTEXT)
        assert out[:64].hex() == expected


class TestGcmLongerKeys:
    """GCM spec test cases 7/8 (192-bit) and 13/14/15 (256-bit)."""

    def test_case_7_empty_192(self):
        ciphertext, tag = gcm_encrypt(AES(bytes(24)), bytes(12), b"")
        assert ciphertext == b""
        assert tag.hex() == "cd33b28ac773f74ba00ed1f312572435"

    def test_case_8_single_block_192(self):
        ciphertext, tag = gcm_encrypt(AES(bytes(24)), bytes(12), bytes(16))
        assert ciphertext.hex() == "98e7247c07f0fe411c267e4384b0f600"
        assert tag.hex() == "2ff58d80033927ab8ef4d4587514f0fb"

    def test_case_13_empty_256(self):
        ciphertext, tag = gcm_encrypt(AES(bytes(32)), bytes(12), b"")
        assert ciphertext == b""
        assert tag.hex() == "530f8afbc74536b9a963b4f1c4cb738b"

    def test_case_14_single_block_256(self):
        ciphertext, tag = gcm_encrypt(AES(bytes(32)), bytes(12), bytes(16))
        assert ciphertext.hex() == "cea7403d4d606b6e074ec5d3baf39d18"
        assert tag.hex() == "d0d1c8a799996bf0265b98b5d48ab919"

    def test_case_15_full_message_256(self):
        key = bytes.fromhex(
            "feffe9928665731c6d6a8f9467308308"
            "feffe9928665731c6d6a8f9467308308"
        )
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        plaintext = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a"
            "86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525"
            "b16aedf5aa0de657ba637b391aafd255"
        )
        ciphertext, tag = gcm_encrypt(AES(key), iv, plaintext)
        assert ciphertext.hex() == (
            "522dc1f099567d07f47f37a32a84427d"
            "643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838"
            "c5f61e6393ba7a0abcc9f662898015ad"
        )
        assert tag.hex() == "b094dac5d93471bdec1a502270e3cc6c"
        assert gcm_decrypt(AES(key), iv, ciphertext, tag) == plaintext
