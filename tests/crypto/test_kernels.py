"""Unit tests for the gateway crypto kernel layer.

Covers the three kernel building blocks in isolation — the fixed-base
windowed modexp table, the executor (sanitizer, LRU, dedup mapping,
inline/pool dispatch) and the worker kernel functions — plus the
pool-safety invariant: nothing but plain public integers ever crosses
the process boundary.
"""

from __future__ import annotations

import pytest

from repro.crypto import elgamal, paillier
from repro.crypto.kernels import workers
from repro.crypto.kernels.config import (
    FORCE_POOL_ENV,
    CryptoConfig,
    resolve_crypto,
)
from repro.crypto.kernels.executor import (
    CryptoExecutor,
    LruCache,
    ensure_plain_args,
)
from repro.crypto.kernels.modexp import FixedBaseTable
from repro.errors import CryptoError


class TestFixedBaseTable:
    @pytest.mark.parametrize("window_bits", [1, 3, 5, 8])
    def test_matches_builtin_pow(self, window_bits):
        modulus = 1_000_003
        table = FixedBaseTable(7, modulus, 64, window_bits)
        for exponent in (0, 1, 2, 63, 2**40 + 12345, 2**64 - 1):
            assert table.pow(exponent) == pow(7, exponent, modulus)

    def test_rejects_out_of_range_exponents(self):
        table = FixedBaseTable(3, 101, 16, 4)
        with pytest.raises(CryptoError):
            table.pow(-1)
        with pytest.raises(CryptoError):
            table.pow(2**16)

    def test_memory_accounting_positive(self):
        table = FixedBaseTable(3, 2**64 + 13, 64, 5)
        assert table.entries > 0
        assert table.memory_bytes > 0


class TestSanitizer:
    def test_accepts_plain_and_nested_plain(self):
        ensure_plain_args((1, "x", 2.5, True, None, (1, 2, [3, "y"])))

    @pytest.mark.parametrize("poison", [
        b"\x00" * 16,                       # raw key bytes
        object(),                           # arbitrary object
        {"n": 5},                           # mappings never ship
        (1, 2, (3, b"secret")),             # nested bytes
    ])
    def test_rejects_non_plain(self, poison):
        with pytest.raises(CryptoError):
            ensure_plain_args((poison,))

    def test_rejects_key_objects(self):
        key = paillier.generate_keypair(128)
        with pytest.raises(CryptoError):
            ensure_plain_args((key,))
        with pytest.raises(CryptoError):
            ensure_plain_args((key.public,))


class TestLruCache:
    def test_evicts_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1   # refresh "a"
        cache.put("c", 3)            # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_counts_hits_and_misses(self):
        cache = LruCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("absent")
        assert cache.hits == 1
        assert cache.misses == 1


class TestCryptoConfig:
    def test_defaults_are_inactive(self, monkeypatch):
        monkeypatch.delenv(FORCE_POOL_ENV, raising=False)
        config = CryptoConfig()
        assert not config.active
        assert resolve_crypto(None) == config

    def test_workers_or_precompute_activate(self):
        assert CryptoConfig(workers=2).active
        assert CryptoConfig(precompute=True).active

    def test_force_pool_env_overrides(self, monkeypatch):
        monkeypatch.setenv(FORCE_POOL_ENV, "3")
        assert resolve_crypto(CryptoConfig()).workers == 3
        assert resolve_crypto(CryptoConfig(workers=1)).workers == 3
        monkeypatch.delenv(FORCE_POOL_ENV)
        assert resolve_crypto(CryptoConfig(workers=1)).workers == 1


class TestCryptoExecutor:
    def test_inline_submit_runs_and_audits(self):
        executor = CryptoExecutor(CryptoConfig())
        future = executor.submit(workers.paillier_masks, 35, 2)
        masks = future.result()
        assert len(masks) == 2
        assert executor.audit == [("paillier_masks", (35, 2))]

    def test_submit_rejects_key_material(self):
        executor = CryptoExecutor(CryptoConfig())
        with pytest.raises(CryptoError):
            executor.submit(workers.paillier_masks, b"\x01" * 16, 1)

    def test_submit_batch_inline_and_small_batches_return_none(self):
        executor = CryptoExecutor(CryptoConfig(min_submit=4))
        assert executor.submit_batch(workers.paillier_masks, 8, 35, 8) is None
        pooled = CryptoExecutor(CryptoConfig(workers=1, min_submit=4))
        assert pooled.submit_batch(workers.paillier_masks, 3, 35, 3) is None

    def test_cache_only_when_active(self):
        assert CryptoExecutor(CryptoConfig()).cache() is None
        active = CryptoExecutor(CryptoConfig(precompute=True, cache_size=8))
        assert active.cache() is not None

    def test_dedup_map_inactive_calls_per_element(self):
        executor = CryptoExecutor(CryptoConfig())
        calls = []
        out = executor.dedup_map([1, 1, 2], lambda v: calls.append(v) or -v,
                                 key=lambda v: v)
        assert out == [-1, -1, -2]
        assert calls == [1, 1, 2]  # the exact seed loop: no dedup

    def test_dedup_map_active_dedups_and_caches(self):
        executor = CryptoExecutor(CryptoConfig(precompute=True))
        cache = executor.cache()
        calls = []
        out = executor.dedup_map([3, 1, 3, 1, 3],
                                 lambda v: calls.append(v) or -v,
                                 key=lambda v: v, cache=cache)
        assert out == [-3, -1, -3, -1, -3]
        assert calls == [3, 1]
        calls.clear()
        again = executor.dedup_map([1, 3], lambda v: calls.append(v) or -v,
                                   key=lambda v: v, cache=cache)
        assert again == [-1, -3]
        assert calls == []  # served entirely from the LRU

    def test_dedup_map_active_routes_through_batch(self):
        executor = CryptoExecutor(CryptoConfig(precompute=True))
        batches = []

        def batch(missing):
            batches.append(list(missing))
            return [-v for v in missing]

        out = executor.dedup_map([5, 6, 5], None, key=lambda v: v,
                                 batch=batch)
        assert out == [-5, -6, -5]
        assert batches == [[5, 6]]

    def test_submit_falls_back_inline_when_pool_cannot_spawn(self,
                                                             monkeypatch):
        """The safe-import rule (no __main__ guard) must not crash the
        write path: submit computes inline instead."""
        from repro.crypto.kernels import executor as executor_module

        def no_pool(workers):
            raise RuntimeError("bootstrapping phase")

        monkeypatch.setattr(executor_module, "_shared_pool", no_pool)
        executor = CryptoExecutor(CryptoConfig(workers=2))
        assert len(executor.submit(workers.paillier_masks, 35, 2)
                   .result()) == 2
        names = [name for name, _ in executor.drain_timings()]
        assert names == ["paillier_masks:pool-fallback"]
        executor.warm()  # must swallow the same spawn failure

    def test_result_falls_back_inline_when_pool_breaks(self):
        from concurrent.futures import BrokenExecutor, Future

        from repro.crypto.kernels.executor import _FallbackFuture

        broken: Future = Future()
        broken.set_exception(BrokenExecutor("worker died"))
        executor = CryptoExecutor(CryptoConfig(workers=1))
        wrapped = _FallbackFuture(broken, workers.paillier_masks,
                                  (35, 3), executor)
        assert len(wrapped.result()) == 3

    def test_warm_inline_is_noop_and_sanitizes_before_spawning(self):
        CryptoExecutor(CryptoConfig()).warm()  # no pool: returns at once
        pooled = CryptoExecutor(CryptoConfig(workers=1))
        with pytest.raises(CryptoError):  # raises before any pool spawn
            pooled.warm(workers.paillier_masks, b"\x01" * 16, 1)

    def test_timings_drain(self):
        executor = CryptoExecutor(CryptoConfig())
        executor.submit(workers.paillier_masks, 35, 1).result()
        names = [name for name, _ in executor.drain_timings()]
        assert names == ["paillier_masks"]
        assert executor.drain_timings() == []


class TestWorkerKernels:
    def test_paillier_masks_encrypt_correctly(self):
        private = paillier.generate_keypair(128)
        public = private.public
        for window_bits in (0, 4):
            masks = workers.paillier_masks(public.n, 3, window_bits)
            assert len(masks) == 3
            for i, mask in enumerate(masks):
                ciphertext = paillier.encrypt_with_mask(public, 40 + i, mask)
                assert paillier.decrypt(private, ciphertext) == 40 + i

    def test_elgamal_randoms_encrypt_correctly(self):
        private = elgamal.generate_keypair(128)
        public = private.public
        for window_bits in (0, 4):
            pairs = workers.elgamal_randoms(public.p, public.g, public.h,
                                            3, window_bits)
            assert len(pairs) == 3
            for i, (g_r, h_r) in enumerate(pairs):
                ciphertext = elgamal.encrypt_with_randomness(
                    public, 7 + i, g_r, h_r
                )
                assert elgamal.decrypt(private, ciphertext) == 7 + i


class TestProcessPool:
    """One real forkserver round trip, plus the safety invariant."""

    def test_pooled_batch_round_trip_and_plain_only_audit(self):
        private = paillier.generate_keypair(128)
        public = private.public
        executor = CryptoExecutor(CryptoConfig(workers=1, min_submit=1))
        future = executor.submit_batch(workers.paillier_masks, 4,
                                       public.n, 4, 4)
        assert future is not None
        masks = future.result()
        assert len(masks) == 4
        for mask in masks:
            ciphertext = paillier.encrypt_with_mask(public, -9, mask)
            assert paillier.decrypt(private, ciphertext) == -9
        # The audit mirror holds exactly what was pickled to the pool:
        # plain ints only, and none of them private key material.
        secrets_set = {private.lam, private.mu, private.p, private.q}
        for name, args in executor.audit:
            assert name == "paillier_masks"
            ensure_plain_args(args)
            assert not (set(args) & secrets_set)
