"""Synthetic FHIR-shaped medical data.

The paper's experiments run on FHIR-compliant documents from an industry
partner; those are not available, so this generator produces synthetic
populations with the same shape and realistic distributions: a patient
cohort, per-patient observation streams (glucose, heart rate, blood
pressure, ...), and medication dispense events.  Seeded, so every
benchmark run sees the same data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.fhir.model import MedicationDispense, Observation, Patient

_FIRST_NAMES = [
    "John", "Jane", "Alex", "Maria", "Wei", "Fatima", "Liam", "Nora",
    "Pieter", "Ingrid", "Tom", "Els", "Jan", "An", "Bart", "Sofie",
]
_LAST_NAMES = [
    "Doe", "Roe", "Peeters", "Janssens", "Maes", "Jacobs", "Mertens",
    "Willems", "Claes", "Goossens", "Wouters", "DeSmet",
]
_CITIES = [
    "Leuven", "Ghent", "Antwerp", "Brussels", "Bruges", "Hasselt",
    "Mechelen", "Namur",
]
_CONDITIONS = [
    "diabetes-type-2", "hypertension", "asthma", "gastric-cancer",
    "arrhythmia", "healthy", "copd", "anemia",
]
_PRACTITIONERS = [
    "Dr. Smith", "Dr. Jones", "Dr. Vermeulen", "Nurse Adams",
    "Nurse Peters", "Dr. Laurent",
]
_MEDICATIONS = [
    "Doxycycline", "Metformin", "Lisinopril", "Salbutamol",
    "Atorvastatin", "Amoxicillin",
]
_STATUSES = ["registered", "preliminary", "final", "amended"]

#: observation code -> (mean, stddev, unit-ish plausible bounds)
_OBSERVATION_CODES = {
    "glucose": (5.5, 1.4, 2.0, 20.0),
    "heart-rate": (75.0, 12.0, 35.0, 190.0),
    "systolic-bp": (125.0, 15.0, 80.0, 220.0),
    "body-temperature": (36.8, 0.5, 34.0, 42.0),
    "bmi": (24.5, 4.0, 14.0, 55.0),
}

_EPOCH_2012 = 1325376000  # 2012-01-01
_YEAR = 365 * 24 * 3600


@dataclass
class MedicalDataset:
    """A generated cohort plus its event streams."""

    patients: list[Patient] = field(default_factory=list)
    observations: list[Observation] = field(default_factory=list)
    dispenses: list[MedicationDispense] = field(default_factory=list)


class MedicalDataGenerator:
    """Seeded generator of FHIR-shaped synthetic data."""

    def __init__(self, seed: int = 2019):
        self._rng = random.Random(seed)
        self._sequence = 0

    def _next_id(self, prefix: str) -> str:
        self._sequence += 1
        return f"{prefix}{self._sequence:07d}"

    # -- resources -------------------------------------------------------------

    def patient(self) -> Patient:
        rng = self._rng
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        year = rng.randint(1930, 2010)
        return Patient(
            id=self._next_id("p"),
            name=name,
            birth_date=f"{year:04d}-{rng.randint(1, 12):02d}-"
                       f"{rng.randint(1, 28):02d}",
            gender=rng.choice(["male", "female"]),
            address_city=rng.choice(_CITIES),
            condition=rng.choice(_CONDITIONS),
        )

    def observation(self, patient: Patient,
                    code: str | None = None) -> Observation:
        rng = self._rng
        if code is None:
            code = rng.choice(list(_OBSERVATION_CODES))
        mean, std, low, high = _OBSERVATION_CODES[code]
        value = min(max(rng.gauss(mean, std), low), high)
        effective = _EPOCH_2012 + rng.randint(0, 6 * _YEAR)
        interpretation = (
            "high" if value > mean + std
            else "low" if value < mean - std
            else "normal"
        )
        return Observation(
            id=self._next_id("f"),
            identifier=rng.randint(1000, 99999),
            status=rng.choices(_STATUSES, weights=[1, 2, 9, 1])[0],
            code=code,
            subject=patient.name,
            effective=effective,
            issued=effective + rng.randint(3600, 30 * 24 * 3600),
            performer=rng.choice(_PRACTITIONERS),
            value=round(value, 2),
            interpretation=interpretation,
        )

    def dispense(self, patient: Patient) -> MedicationDispense:
        rng = self._rng
        return MedicationDispense(
            id=self._next_id("m"),
            patient=patient.name,
            medication=rng.choice(_MEDICATIONS),
            performer=rng.choice(_PRACTITIONERS),
            quantity=rng.randint(1, 90),
            when_handed_over=_EPOCH_2012 + rng.randint(0, 6 * _YEAR),
        )

    # -- datasets ----------------------------------------------------------------

    def dataset(self, patients: int = 100,
                observations_per_patient: int = 10,
                dispenses_per_patient: int = 3) -> MedicalDataset:
        data = MedicalDataset()
        for _ in range(patients):
            patient = self.patient()
            data.patients.append(patient)
            for _ in range(observations_per_patient):
                data.observations.append(self.observation(patient))
            for _ in range(dispenses_per_patient):
                data.dispenses.append(self.dispense(patient))
        return data

    def observations(self, count: int,
                     cohort_size: int = 50) -> list[Observation]:
        """A flat observation stream over a fixed-size cohort."""
        cohort = [self.patient() for _ in range(cohort_size)]
        return [
            self.observation(self._rng.choice(cohort)) for _ in range(count)
        ]
