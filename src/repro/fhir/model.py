"""FHIR-shaped resource models (HL7 Fast Healthcare Interoperability
Resources).

The paper validates DataBlinder on FHIR-compliant medical documents; its
§5.1 example is an *Observation* (the amount of glucose observed in a
blood test).  This module provides flattened Python representations of
the resources the use case touches — Observation, Patient, Practitioner,
MedicationDispense — plus the annotated DataBlinder schemas matching the
paper's protection table.

Values are flat scalars because DataBlinder annotates *fields*; the
``to_document``/``from_document`` pair maps between resource objects and
middleware documents.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields as dataclass_fields

from repro.core.schema import FieldAnnotation, Schema


@dataclass
class Observation:
    """A measurement or assertion about a patient (FHIR Observation).

    Mirrors the paper's example document: glucose amount in a blood
    test, with `effective`/`issued` as Unix timestamps.
    """

    id: str
    identifier: int
    status: str          # registered | preliminary | final | amended
    code: str            # what was observed, e.g. "glucose"
    subject: str         # patient reference
    effective: int       # clinically relevant time (Unix seconds)
    issued: int          # time made available (Unix seconds)
    performer: str       # who made the observation
    value: float         # the measured quantity
    interpretation: str = ""  # high / low / normal

    def to_document(self) -> dict:
        return asdict(self)

    @classmethod
    def from_document(cls, document: dict) -> "Observation":
        names = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in document.items() if k in names})


@dataclass
class Patient:
    """Demographics and administrative information (FHIR Patient)."""

    id: str
    name: str
    birth_date: str      # ISO date
    gender: str
    address_city: str
    condition: str       # dominant active condition, flattened

    def to_document(self) -> dict:
        return asdict(self)

    @classmethod
    def from_document(cls, document: dict) -> "Patient":
        names = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in document.items() if k in names})


@dataclass
class MedicationDispense:
    """Supply of a medication to a patient (FHIR MedicationDispense).

    Backs the paper's third motivating query: *the number of times that
    the nurses refilled Doxycycline for a patient* (aggregated search).
    """

    id: str
    patient: str
    medication: str
    performer: str
    quantity: int
    when_handed_over: int  # Unix seconds

    def to_document(self) -> dict:
        return asdict(self)

    @classmethod
    def from_document(cls, document: dict) -> "MedicationDispense":
        names = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in document.items() if k in names})


def observation_schema() -> Schema:
    """The paper's §5.1 annotated Observation schema, verbatim.

    status/code: C3 [I,EQ,BL]; subject: C2 [I,EQ];
    effective/issued: C5 [I,EQ,BL,RG]; performer: C1 [I];
    value: C3 [I,EQ,BL] agg [avg].  ``id``/``identifier``/
    ``interpretation`` are left unannotated (non-sensitive) as in the
    example document.
    """
    return Schema.define(
        "observation",
        id="string",
        identifier="int",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        code=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        subject=("string", FieldAnnotation.parse("C2", "I,EQ")),
        effective=("int", FieldAnnotation.parse("C5", "I,EQ,BL,RG")),
        issued=("int", FieldAnnotation.parse("C5", "I,EQ,BL,RG")),
        performer=("string", FieldAnnotation.parse("C1", "I")),
        value=("float", FieldAnnotation.parse("C3", "I,EQ,BL", "avg")),
        interpretation="string",
    )


def benchmark_observation_schema() -> Schema:
    """The §5.2 benchmark annotation: 8 tactic instances.

    The throughput experiment (Figure 5) involves "in total 8 tactics ...
    namely Mitra, RND, Paillier, and five times DET": DET on status,
    code, effective, issued and value; Mitra on subject; RND on
    performer; Paillier on value.
    """
    return Schema.define(
        "observation",
        id="string",
        identifier="int",
        status=("string", FieldAnnotation.parse("C4", "I,EQ")),
        code=("string", FieldAnnotation.parse("C4", "I,EQ")),
        subject=("string", FieldAnnotation.parse("C2", "I,EQ")),
        effective=("int", FieldAnnotation.parse("C4", "I,EQ")),
        issued=("int", FieldAnnotation.parse("C4", "I,EQ")),
        performer=("string", FieldAnnotation.parse("C1", "I")),
        value=("float", FieldAnnotation.parse("C4", "I,EQ", "avg")),
        interpretation="string",
    )


def patient_schema() -> Schema:
    """An annotated Patient schema for the e-health examples."""
    return Schema.define(
        "patient",
        id="string",
        name=("string", FieldAnnotation.parse("C2", "I,EQ")),
        birth_date=("string", FieldAnnotation.parse("C4", "I,EQ")),
        gender=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        address_city=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        condition=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
    )


def medication_dispense_schema() -> Schema:
    """An annotated MedicationDispense schema (aggregated search)."""
    return Schema.define(
        "medication_dispense",
        id="string",
        patient=("string", FieldAnnotation.parse("C2", "I,EQ")),
        medication=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        performer=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        quantity=("int", FieldAnnotation.parse("C4", "I,EQ", "sum,avg")),
        when_handed_over=("int", FieldAnnotation.parse("C5", "I,EQ,RG")),
    )
