"""FHIR substrate: resource models and synthetic medical data.

Replaces the industry partner's FHIR-compliant documents with synthetic
equivalents of the same shape (paper Section 5.1).
"""

from repro.fhir.generator import MedicalDataGenerator, MedicalDataset
from repro.fhir.model import (
    MedicationDispense,
    Observation,
    Patient,
    benchmark_observation_schema,
    medication_dispense_schema,
    observation_schema,
    patient_schema,
)

__all__ = [
    "MedicalDataGenerator",
    "MedicalDataset",
    "MedicationDispense",
    "Observation",
    "Patient",
    "benchmark_observation_schema",
    "medication_dispense_schema",
    "observation_schema",
    "patient_schema",
]
