"""Configuration of the gateway read-cache tier.

The cache tier lives entirely in the trusted zone (the gateway of the
paper's Fig. 3): the untrusted cloud only ever sees ciphertext, so the
gateway is the one place where plaintext-side caching is admissible at
all.  Even there, cached plaintext is memory-resident secret material,
so admission is leakage-aware: fields annotated at the strictest
protection class are never cached in plaintext, regardless of knobs.

The all-defaults ``PipelineConfig`` carries ``cache=None``, which keeps
the seed read path byte-for-byte: no tier is constructed, no extra
state, no wire changes.  Constructing a :class:`CacheConfig` turns the
three levels on individually.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Knobs of the three-level gateway read cache.

    All three levels are *correctness-transparent*: a cached answer is
    only served while its coherence token (topology epoch, key epoch,
    local write version and — with integrity configured — the freshness
    ledger stamp) still matches, so results equal what the uncached
    path would have returned.
    """

    #: Level 1 — memoise deterministic trapdoors (DET seals, blind-index
    #: HSM-OPRF tokens, OPE/ORE codes) per tactic instance, keyed by
    #: plaintext under the instance's key epoch.  Saves crypto-kernel
    #: work and HSM round trips; token bytes on the wire are unchanged
    #: (the memoised functions are deterministic).
    tokens: bool = True
    #: Per-tactic-instance token cache capacity (entries).
    token_capacity: int = 4096
    #: Level 2 — cache whole query results keyed by compiled plan shape
    #: + parameter values + principal, validated against the coherence
    #: token on every hit.  A repeat query becomes a single
    #: ledger-validation check instead of a scatter/gather.
    results: bool = True
    #: Result cache capacity (entries).
    result_capacity: int = 512
    #: Result entry time-to-live in seconds; 0 disables expiry.  The
    #: TTL is the only coherence bound for *cross-gateway* writes when
    #: integrity is not configured — with a FreshnessLedger the stamp
    #: check supersedes it.
    result_ttl_s: float = 30.0
    #: Level 3 — cache decrypted documents by id (bounded LRU with TTL
    #: and size accounting), invalidated by local writes
    #: (read-your-writes) and by ledger root/seq advance for
    #: cross-gateway writes.
    documents: bool = True
    #: Document cache capacity (entries).
    document_capacity: int = 2048
    #: Document entry time-to-live in seconds; 0 disables expiry.
    document_ttl_s: float = 30.0
    #: Approximate plaintext budget of the document cache in bytes;
    #: 0 disables size-based eviction (capacity still bounds it).
    document_max_bytes: int = 16 * 1024 * 1024
    #: Remember DocumentNotFound outcomes so repeated misses for the
    #: same id short-circuit at the gateway.  Negative entries obey the
    #: same coherence token and are dropped when the id is inserted
    #: locally.
    negative_entries: bool = True
    #: Scope result- and document-cache entries by the requesting
    #: principal (the gateway runtime's per-operation principal), so
    #: tenants sharing one gateway never observe each other's cache.
    #: Token caches are key-material-scoped, not principal-scoped: the
    #: trapdoor for a value is identical for every principal.
    per_principal: bool = True
    #: Leakage-aware admission floor for *plaintext-bearing* caches
    #: (documents and document-carrying results): a schema is admitted
    #: only if every sensitive field's protection class is at or above
    #: this value.  Class C1 (== 1, the strictest) is never cacheable —
    #: values below 2 are treated as 2.  Id-only and count results
    #: carry no field plaintext and are always admissible.
    min_cacheable_class: int = 2

    def plaintext_floor(self) -> int:
        """The effective admission floor (C1 is never admissible)."""
        return max(2, int(self.min_cacheable_class))

    @property
    def active(self) -> bool:
        return bool(self.tokens or self.results or self.documents)
