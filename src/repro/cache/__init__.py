"""Gateway read-cache tier (trusted-zone token/result/document caches)."""

from repro.cache.config import CacheConfig
from repro.cache.lru import TtlLruCache
from repro.cache.tier import (
    MISS,
    NEGATIVE,
    DocumentReadScope,
    GatewayCacheTier,
    current_principal,
    set_principal,
)

__all__ = [
    "CacheConfig",
    "TtlLruCache",
    "GatewayCacheTier",
    "DocumentReadScope",
    "MISS",
    "NEGATIVE",
    "set_principal",
    "current_principal",
]
