"""The gateway read-cache tier: tokens, results, documents.

Three levels, all trusted-zone-resident and all *coherence-checked*:

* **Token caches** (level 1) live inside the crypto executor / tactic
  instances (:meth:`repro.crypto.kernels.executor.CryptoExecutor.cache`)
  and memoise deterministic trapdoors — DET seals, blind-index HSM-OPRF
  tokens, OPE/ORE codes — per plaintext value under the instance's key
  material.  They need no freshness protocol: the mapping is a pure
  function of the key epoch, and key rotation rebuilds the instances.

* **The search-result cache** (level 2) keys whole query results by
  compiled plan shape + parameter values + principal.  Entries carry
  the coherence token captured *before* the query executed; a hit is
  served only after one forced freshness-ledger re-sync shows the token
  unchanged — the "repeat query is a single ledger-validation check"
  property.  Parameter plaintext never lands in a key: the key holds a
  SHA-256 digest of the (shape, params) tuple.

* **The document cache** (level 3) holds decrypted documents (and
  negative entries for missing ids) per (schema, principal, id),
  invalidated by local writes (read-your-writes) and by any freshness
  advance — a ledger stamp that moved, a topology epoch bump, or a key
  rotation — for cross-gateway writes.

Coherence protocol
------------------

The *coherence token* is ``(topology epoch, key-root epoch, ledger
stamp)``; result entries additionally carry the schema's local
write-version.  Fill tokens are captured when a read **begins** (before
any id resolution or fetch), so state that advances mid-operation makes
the freshly stored entries fail their first validation instead of
serving the in-between snapshot.  Hit validation *forces* one ledger
re-sync (``report()`` per shard over the labeled transport channel —
the same per-shard roots the integrity subsystem already aggregates),
so a stamp that moved — a cross-gateway write, a rollback, a reshard —
turns the hit into a miss.  A tampered or rolled-back report raises
through :meth:`FreshnessLedger.accept_report` exactly as it would on an
uncached verified read: the cache can never mask what
:class:`~repro.integrity.verify.VerifyingTransport` would have caught.

Without integrity configured the ledger stamp is ``None`` and coherence
degrades to local write-versions plus TTL — correct under the
single-writer-per-gateway deployment, bounded-staleness otherwise
(which is why the concurrent-writer benchmarks run with integrity on).

Leakage admission: a schema whose sensitive fields include any class
below :meth:`CacheConfig.plaintext_floor` (C1 always) is never admitted
to the plaintext-bearing levels; id-only and count results carry no
field plaintext and cache regardless.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Iterable

from repro.cache.config import CacheConfig
from repro.cache.lru import TtlLruCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gateway.service import GatewayRuntime

#: Lookup sentinels: ``MISS`` — nothing (valid) cached; ``NEGATIVE`` —
#: the id is known-absent (cached DocumentNotFound).
MISS = object()
NEGATIVE = object()

#: The requesting principal, installed per logical operation by the
#: gateway runtime (and defaulting to the shared anonymous scope for
#: direct embedded use).  Context-local like the batch scopes, so
#: concurrent operations on pooled threads or asyncio tasks never see
#: each other's principal.
_PRINCIPAL: ContextVar[str] = ContextVar(
    "datablinder_cache_principal", default=""
)


def set_principal(principal: str | None):
    """Bind the cache principal for the current context."""
    return _PRINCIPAL.set(principal or "")


def current_principal() -> str:
    return _PRINCIPAL.get()


def _approx_size(document: Any) -> int:
    """Cheap plaintext-size estimate for the byte budget."""
    try:
        from repro.net import message

        return len(message.encode(document))
    except Exception:
        return 256


def _copy_result(value: Any) -> Any:
    if isinstance(value, list):
        return copy.deepcopy(value)
    if isinstance(value, set):
        return set(value)
    if isinstance(value, dict):
        return copy.deepcopy(value)
    return value


class GatewayCacheTier:
    """Owner of the result/document caches and the coherence protocol."""

    def __init__(self, config: CacheConfig, runtime: "GatewayRuntime"):
        self.config = config
        self.runtime = runtime
        self.documents: TtlLruCache | None = (
            TtlLruCache(
                config.document_capacity,
                ttl_s=config.document_ttl_s,
                max_bytes=config.document_max_bytes,
            )
            if config.documents else None
        )
        self.results: TtlLruCache | None = (
            TtlLruCache(config.result_capacity, ttl_s=config.result_ttl_s)
            if config.results else None
        )
        self._write_versions: dict[str, int] = {}
        self._admitted: dict[str, bool] = {}
        #: plan-shape key -> [validated hits, misses]: the signal the
        #: cost model's hit-probability estimate learns from.
        self._shape_stats: dict[Any, list[int]] = {}
        self._lock = threading.Lock()
        self.coherence_validations = 0
        self.stamp_mismatches = 0

    # -- leakage admission ---------------------------------------------------

    def register_schema(self, schema) -> None:
        """Decide plaintext admission for one schema, once."""
        floor = self.config.plaintext_floor()
        admitted = True
        for spec in schema.sensitive_fields():
            if int(spec.annotation.protection_class) < floor:
                admitted = False
                break
        with self._lock:
            self._admitted[schema.name] = admitted

    def admits_plaintext(self, schema_name: str) -> bool:
        with self._lock:
            return self._admitted.get(schema_name, False)

    # -- local write-versioning ---------------------------------------------

    def write_version(self, schema_name: str) -> int:
        with self._lock:
            return self._write_versions.get(schema_name, 0)

    def note_local_write(self, schema_name: str,
                         doc_ids: Iterable[str] = ()) -> None:
        """Read-your-writes: bump the schema's version (dropping its
        result entries lazily) and invalidate the written ids — positive
        *and* negative entries, so an insert of a previously-missing id
        clears its cached absence."""
        with self._lock:
            self._write_versions[schema_name] = (
                self._write_versions.get(schema_name, 0) + 1
            )
        if self.documents is not None:
            ids = set(doc_ids)
            if ids:
                self.documents.invalidate_where(
                    lambda key: key[0] == schema_name and key[2] in ids
                )

    # -- coherence tokens ----------------------------------------------------

    def _stamp(self, force: bool) -> tuple:
        verifier = self.runtime.verifier
        ledger_stamp = (
            verifier.coherence_stamp(force=force)
            if verifier is not None else None
        )
        return (
            self.runtime.topology_epoch(),
            self.runtime.keystore.root_epoch,
            ledger_stamp,
        )

    def fill_token(self) -> tuple:
        """Token to stamp entries with — captured before a read begins.

        Not forced: the ledger re-syncs only if a write left it dirty,
        so an all-miss operation adds no wire rounds beyond what the
        verifying read path already pays.
        """
        return self._stamp(force=False)

    def validation_token(self) -> tuple:
        """Token a hit must match — one forced ledger re-sync.

        Raises :class:`repro.errors.IntegrityError` /
        :class:`repro.errors.StaleStateError` when the re-synced report
        is itself tampered or rolled back, exactly as a verified fetch
        would.
        """
        with self._lock:
            self.coherence_validations += 1
        return self._stamp(force=True)

    def note_stamp_mismatch(self) -> None:
        with self._lock:
            self.stamp_mismatches += 1

    def _principal(self) -> str:
        return current_principal() if self.config.per_principal else ""

    # -- document level ------------------------------------------------------

    def read_scope(self, schema_name: str) -> "DocumentReadScope | None":
        """A per-operation view over the document cache, or ``None``
        when the level is off or the schema is not admitted."""
        if self.documents is None or not self.admits_plaintext(schema_name):
            return None
        return DocumentReadScope(self, schema_name)

    # -- result level --------------------------------------------------------

    def _result_key(self, schema_name: str, plan_key: Any,
                    extra: Any) -> tuple:
        digest = hashlib.sha256(
            repr((plan_key, extra)).encode()
        ).hexdigest()
        return (schema_name, self._principal(), digest)

    def _shape_note(self, plan_key: Any, hit: bool) -> None:
        with self._lock:
            entry = self._shape_stats.setdefault(plan_key, [0, 0])
            entry[0 if hit else 1] += 1

    def shape_hit_probability(self, plan_key: Any) -> float | None:
        """Observed validated-hit rate for one plan shape (None until
        the shape has been seen)."""
        with self._lock:
            entry = self._shape_stats.get(plan_key)
            if entry is None or (entry[0] + entry[1]) == 0:
                return None
            return entry[0] / (entry[0] + entry[1])

    def result_lookup(self, schema_name: str, plan_key: Any, extra: Any,
                      plaintext: bool) -> Any:
        if self.results is None:
            return MISS
        if plaintext and not self.admits_plaintext(schema_name):
            return MISS
        key = self._result_key(schema_name, plan_key, extra)
        value, token, found = self.results.lookup(key)
        if not found:
            self._shape_note(plan_key, hit=False)
            return MISS
        expected = (self.validation_token(),
                    self.write_version(schema_name))
        if token != expected:
            self.results.invalidate(key)
            self.note_stamp_mismatch()
            self._shape_note(plan_key, hit=False)
            return MISS
        self._shape_note(plan_key, hit=True)
        return _copy_result(value)

    def result_fill_token(self, schema_name: str) -> tuple:
        """Captured before executing the query the entry will hold."""
        return (self.fill_token(), self.write_version(schema_name))

    def result_store(self, schema_name: str, plan_key: Any, extra: Any,
                     value: Any, fill_token: tuple,
                     plaintext: bool) -> None:
        if self.results is None:
            return
        if plaintext and not self.admits_plaintext(schema_name):
            return
        key = self._result_key(schema_name, plan_key, extra)
        self.results.put(key, _copy_result(value), token=fill_token)

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        token_stats = self.runtime.kernels.token_cache_stats()
        with self._lock:
            coherence = {
                "validations": self.coherence_validations,
                "stamp_mismatches": self.stamp_mismatches,
            }
            admitted = dict(self._admitted)
        return {
            "tokens": token_stats,
            "results": (self.results.stats()
                        if self.results is not None else None),
            "documents": (self.documents.stats()
                          if self.documents is not None else None),
            "coherence": coherence,
            "admitted": admitted,
        }


class DocumentReadScope:
    """One read operation's validated window onto the document cache.

    The fill token is captured at construction — before the operation
    resolves ids or fetches anything — and the validation token is
    computed lazily on the first actual hit, then memoised, so one
    operation pays at most one forced ledger re-sync however many of
    its candidate ids hit.
    """

    __slots__ = ("_tier", "_schema", "_principal", "_fill", "_validated")

    def __init__(self, tier: GatewayCacheTier, schema_name: str):
        self._tier = tier
        self._schema = schema_name
        self._principal = tier._principal()
        self._fill = tier.fill_token()
        self._validated: tuple | None = None

    def _key(self, doc_id: str) -> tuple:
        return (self._schema, self._principal, doc_id)

    def _validation(self) -> tuple:
        if self._validated is None:
            self._validated = self._tier.validation_token()
        return self._validated

    def lookup(self, doc_id: str) -> Any:
        """``MISS``, ``NEGATIVE``, or a private copy of the document."""
        cache = self._tier.documents
        value, token, found = cache.lookup(self._key(doc_id))
        if not found:
            return MISS
        if token != self._validation():
            cache.invalidate(self._key(doc_id))
            self._tier.note_stamp_mismatch()
            return MISS
        if value is NEGATIVE:
            return NEGATIVE
        return copy.deepcopy(value)

    def store(self, doc_id: str, document: dict) -> None:
        self._tier.documents.put(
            self._key(doc_id), copy.deepcopy(document),
            token=self._fill, size=_approx_size(document),
        )

    def store_negative(self, doc_id: str) -> None:
        if self._tier.config.negative_entries:
            self._tier.documents.put(
                self._key(doc_id), NEGATIVE, token=self._fill, size=1
            )
