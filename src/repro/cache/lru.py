"""Bounded TTL+size LRU used by the result and document cache levels.

Unlike :class:`repro.crypto.kernels.executor.LruCache` (a minimal
hit/miss memo for deterministic crypto), these entries can go *wrong*
over time — the untrusted zone moves underneath them — so every entry
carries an expiry deadline and an opaque coherence token, and lookups
hand the token back so the tier can validate it before serving.
Eviction is capacity- and byte-bounded; counters split evictions from
expirations from explicit invalidations so benchmarks and the EXPLAIN
footer can attribute misses.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterable


class _Entry:
    __slots__ = ("value", "token", "expires_at", "size")

    def __init__(self, value: Any, token: Hashable,
                 expires_at: float, size: int) -> None:
        self.value = value
        self.token = token
        self.expires_at = expires_at
        self.size = size


class TtlLruCache:
    """Thread-safe LRU with per-entry TTL, token and size accounting."""

    def __init__(self, capacity: int, ttl_s: float = 0.0,
                 max_bytes: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.capacity = max(0, int(capacity))
        self.ttl_s = max(0.0, float(ttl_s))
        self.max_bytes = max(0, int(max_bytes))
        self._clock = clock
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: Hashable) -> tuple[Any, Hashable, bool]:
        """Return ``(value, token, found)``; expired entries miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, None, False
            if entry.expires_at and self._clock() >= entry.expires_at:
                self._drop(key, entry)
                self.expirations += 1
                self.misses += 1
                return None, None, False
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value, entry.token, True

    # -- insert ---------------------------------------------------------------

    def put(self, key: Hashable, value: Any, token: Hashable = None,
            size: int = 1) -> None:
        if self.capacity <= 0:
            return
        expires_at = (self._clock() + self.ttl_s) if self.ttl_s else 0.0
        entry = _Entry(value, token, expires_at, max(1, int(size)))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.size
            self._entries[key] = entry
            self._bytes += entry.size
            while len(self._entries) > self.capacity or (
                self.max_bytes and self._bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                victim_key, victim = self._entries.popitem(last=False)
                self._bytes -= victim.size
                self.evictions += 1
                if victim_key == key:
                    break

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.size
            self.invalidations += 1
            return True

    def invalidate_where(self,
                         predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *key* satisfies ``predicate``."""
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for key in doomed:
                entry = self._entries.pop(key)
                self._bytes -= entry.size
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self.invalidations += count
            return count

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def keys(self) -> Iterable[Hashable]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
            }

    def _drop(self, key: Hashable, entry: _Entry) -> None:
        del self._entries[key]
        self._bytes -= entry.size
