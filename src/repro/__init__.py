"""DataBlinder reproduction: a distributed data protection middleware
supporting search and computation on encrypted data.

Reproduces Heydari Beni et al., "DataBlinder" (Middleware Industry '19):
crypto-agile, fine-grained field-level data protection with adaptive
runtime tactic selection and a pluggable SPI architecture, together with
every substrate the paper depends on (crypto schemes, SSE constructions,
document/KV stores, gateway-cloud transport, load generator).

Quickstart::

    from repro import (
        CloudZone, DataBlinder, Eq, FieldAnnotation, InProcTransport,
        Schema,
    )

    cloud = CloudZone()
    blinder = DataBlinder("ehealth", InProcTransport(cloud.host))
    schema = Schema.define(
        "observation",
        id="string",
        status=("string", FieldAnnotation.parse("C3", "I,EQ,BL")),
        value=("float", FieldAnnotation.parse("C3", "I,EQ,BL", "avg")),
    )
    blinder.register_schema(schema)
    observations = blinder.entities("observation")
    doc_id = observations.insert({"status": "final", "value": 6.3})
    assert observations.find(Eq("status", "final"))[0]["_id"] == doc_id
"""

from repro.cache import CacheConfig
from repro.cloud.server import CloudZone
from repro.core.entities import Entities
from repro.core.middleware import DataBlinder
from repro.core.query import AggregateQuery, And, Eq, Not, Or, Range
from repro.core.registry import TacticRegistry, default_registry
from repro.core.schema import FieldAnnotation, FieldSpec, Schema
from repro.crypto.kernels.config import CryptoConfig
from repro.net.batch import PipelineConfig
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.latency import NetworkModel
from repro.net.resilience import (
    BreakerConfig,
    ResilienceConfig,
    RetryPolicy,
)
from repro.net.tcp import TcpRpcServer, TcpTransport
from repro.net.transport import DirectTransport, InProcTransport
from repro.spi.descriptors import Aggregate, Operation
from repro.spi.leakage import LeakageLevel, ProtectionClass

__version__ = "0.1.0"

__all__ = [
    "Aggregate",
    "AggregateQuery",
    "And",
    "BreakerConfig",
    "CacheConfig",
    "CloudZone",
    "CryptoConfig",
    "DataBlinder",
    "DirectTransport",
    "Entities",
    "Eq",
    "FaultInjectingTransport",
    "FaultPlan",
    "FieldAnnotation",
    "FieldSpec",
    "InProcTransport",
    "LeakageLevel",
    "NetworkModel",
    "Not",
    "Operation",
    "Or",
    "PipelineConfig",
    "ProtectionClass",
    "Range",
    "ResilienceConfig",
    "RetryPolicy",
    "Schema",
    "TacticRegistry",
    "TcpRpcServer",
    "TcpTransport",
    "default_registry",
]
