"""Workload generation: the §5.2 benchmark mix.

The paper's experiments balance *read* (equality search protocols),
*write* (insertions and secure indexing) and *aggregate* operations
(search + homomorphic averages) over FHIR Observation documents.  A
:class:`Workload` is a deterministic, seeded sequence of operations the
load generator replays against any scenario application.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.crypto.encoding import Value
from repro.fhir.generator import MedicalDataGenerator

OP_INSERT = "insert"
OP_EQ_SEARCH = "eq_search"
OP_AGGREGATE = "aggregate"

#: fields an equality search may target in the benchmark schema, with the
#: hard-coded scenario's tactic for each (searchable fields only).
SEARCHABLE_FIELDS = ("status", "code", "subject", "effective", "issued",
                     "value")


@dataclass(frozen=True)
class Operation:
    """One replayable workload step."""

    kind: str
    document: dict[str, Value] | None = None     # insert
    field: str = ""                              # eq_search target
    value: Value = None                          # eq_search argument
    agg_field: str = ""                          # aggregate target
    where_field: str = ""                        # aggregate filter
    where_value: Value = None


@dataclass
class WorkloadSpec:
    """Mix proportions and size of one run.

    Defaults mirror the paper's balance between reads, writes and
    aggregates (a third each).
    """

    operations: int = 300
    insert_fraction: float = 1 / 3
    search_fraction: float = 1 / 3
    aggregate_fraction: float = 1 / 3
    cohort_size: int = 20
    seed: int = 2019

    def __post_init__(self) -> None:
        total = (self.insert_fraction + self.search_fraction
                 + self.aggregate_fraction)
        if abs(total - 1.0) > 1e-9:
            raise ValueError("workload fractions must sum to 1")


class Workload:
    """A concrete, fully materialised operation sequence."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.operations: list[Operation] = []
        self._build()

    def _build(self) -> None:
        rng = random.Random(self.spec.seed)
        generator = MedicalDataGenerator(self.spec.seed)
        cohort = [generator.patient() for _ in range(self.spec.cohort_size)]
        inserted_values: dict[str, list[Value]] = {
            field: [] for field in SEARCHABLE_FIELDS
        }
        subjects: list[str] = []

        def remember(document: dict[str, Value]) -> None:
            for field in SEARCHABLE_FIELDS:
                if document.get(field) is not None:
                    inserted_values[field].append(document[field])
            subjects.append(document["subject"])

        # Seed a few documents so early searches have data to hit.
        seed_inserts = max(3, int(self.spec.operations
                                  * self.spec.insert_fraction * 0.1))
        for _ in range(seed_inserts):
            document = generator.observation(rng.choice(cohort)).to_document()
            remember(document)
            self.operations.append(Operation(OP_INSERT, document=document))

        remaining = self.spec.operations - seed_inserts
        choices = [OP_INSERT, OP_EQ_SEARCH, OP_AGGREGATE]
        weights = [self.spec.insert_fraction, self.spec.search_fraction,
                   self.spec.aggregate_fraction]
        for _ in range(remaining):
            kind = rng.choices(choices, weights=weights)[0]
            if kind == OP_INSERT:
                document = generator.observation(
                    rng.choice(cohort)
                ).to_document()
                remember(document)
                self.operations.append(
                    Operation(OP_INSERT, document=document)
                )
            elif kind == OP_EQ_SEARCH:
                field = rng.choice(SEARCHABLE_FIELDS)
                values = inserted_values[field]
                value = rng.choice(values) if values else "final"
                self.operations.append(
                    Operation(OP_EQ_SEARCH, field=field, value=value)
                )
            else:
                self.operations.append(Operation(
                    OP_AGGREGATE,
                    agg_field="value",
                    where_field="subject",
                    where_value=rng.choice(subjects),
                ))

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def mix(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for operation in self.operations:
            counts[operation.kind] = counts.get(operation.kind, 0) + 1
        return counts
