"""Closed-loop load generator (the Locust role in the paper's testbed).

``users`` worker threads pull operations from a shared queue and execute
them against a scenario application, recording per-operation latency.
The run is closed-loop: a user issues its next request only after the
previous one completes, like Locust's default user behaviour.

The paper drives ~151k requests from 1,000 simulated users across VMs;
here the workload is scaled down (pure-Python crypto on one core) but the
mix, the closed-loop shape and the reported metrics are the same.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.bench.metrics import MetricsRecorder, RunReport
from repro.bench.scenarios import ScenarioApp
from repro.bench.workloads import (
    OP_AGGREGATE,
    OP_EQ_SEARCH,
    OP_INSERT,
    Operation,
    Workload,
)


@dataclass
class LoadResult:
    report: RunReport
    errors: list[str] = field(default_factory=list)


def _execute(app: ScenarioApp, operation: Operation) -> None:
    if operation.kind == OP_INSERT:
        app.insert(dict(operation.document))
    elif operation.kind == OP_EQ_SEARCH:
        app.eq_search(operation.field, operation.value)
    elif operation.kind == OP_AGGREGATE:
        app.average(operation.agg_field, operation.where_field,
                    operation.where_value)
    else:
        raise ValueError(f"unknown operation kind {operation.kind!r}")


def run_load(app: ScenarioApp, workload: Workload,
             users: int = 4) -> LoadResult:
    """Replay a workload against an application with ``users`` workers."""
    recorder = MetricsRecorder()
    errors: list[str] = []
    error_lock = threading.Lock()
    pending: "queue.Queue[Operation | None]" = queue.Queue()

    # Seed inserts run sequentially first so searches always have data,
    # mirroring Locust's ramp-up phase.
    operations = list(workload)
    start = time.perf_counter()

    for operation in operations:
        pending.put(operation)
    for _ in range(users):
        pending.put(None)

    def worker() -> None:
        while True:
            operation = pending.get()
            if operation is None:
                return
            try:
                with recorder.timed(operation.kind):
                    _execute(app, operation)
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                with error_lock:
                    errors.append(f"{operation.kind}: {exc}")

    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(users)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    elapsed = time.perf_counter() - start
    return LoadResult(
        report=recorder.report(app.name, elapsed=elapsed),
        errors=errors,
    )
