"""Benchmark harness: the Locust role of the paper's testbed.

Workload generation (balanced read/write/aggregate mix), the three
evaluation scenarios (S_A no protection, S_B hard-coded tactics, S_C
DataBlinder), a closed-loop multi-user load generator, and renderers for
Figure 5 and the latency table.
"""

from repro.bench.loadgen import LoadResult, run_load
from repro.bench.metrics import MetricsRecorder, OperationStats, RunReport
from repro.bench.report import (
    HeadlineRatios,
    headline_ratios,
    render_figure5,
    render_latency_table,
    render_run,
)
from repro.bench.scenarios import (
    HardcodedApp,
    MiddlewareApp,
    NoProtectionApp,
    build_scenario,
)
from repro.bench.workloads import Operation, Workload, WorkloadSpec

__all__ = [
    "HardcodedApp",
    "HeadlineRatios",
    "LoadResult",
    "MetricsRecorder",
    "MiddlewareApp",
    "NoProtectionApp",
    "Operation",
    "OperationStats",
    "RunReport",
    "Workload",
    "WorkloadSpec",
    "build_scenario",
    "headline_ratios",
    "render_figure5",
    "render_latency_table",
    "render_run",
    "run_load",
]
