"""Benchmark metrics: latency samples, percentiles and throughput.

Collects what the paper's Locust deployment reported: per-operation and
overall throughput (Figure 5) and average / 50th / 75th / 99th percentile
latency (the §5.2 latency table).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank-with-interpolation percentile of a sample list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


@dataclass
class OperationStats:
    """Latency and throughput for one operation type."""

    operation: str
    count: int
    throughput: float           # operations per second
    mean_ms: float
    p50_ms: float
    p75_ms: float
    p99_ms: float
    # Appended with a default so positional construction stays valid.
    p95_ms: float = 0.0

    def as_dict(self) -> dict:
        """The one JSON spelling every benchmark shares: throughput plus
        the p50/p95/p99 ladder, keys stable across BENCH_*.json files."""
        return {
            "ops": self.count,
            "throughput_ops_s": round(self.throughput, 2),
            "mean_ms": round(self.mean_ms, 2),
            "p50_ms": round(self.p50_ms, 2),
            "p75_ms": round(self.p75_ms, 2),
            "p95_ms": round(self.p95_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
        }

    @classmethod
    def from_samples(cls, operation: str, samples: list[float],
                     elapsed: float) -> "OperationStats":
        milliseconds = [s * 1000 for s in samples]
        return cls(
            operation=operation,
            count=len(samples),
            throughput=len(samples) / elapsed if elapsed > 0 else 0.0,
            mean_ms=sum(milliseconds) / len(milliseconds)
            if milliseconds else 0.0,
            p50_ms=percentile(milliseconds, 0.50),
            p75_ms=percentile(milliseconds, 0.75),
            p95_ms=percentile(milliseconds, 0.95),
            p99_ms=percentile(milliseconds, 0.99),
        )


@dataclass
class RunReport:
    """The outcome of one load-generation run."""

    scenario: str
    elapsed_seconds: float
    per_operation: dict[str, OperationStats] = field(default_factory=dict)

    @property
    def total_operations(self) -> int:
        return sum(s.count for s in self.per_operation.values())

    @property
    def overall_throughput(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_operations / self.elapsed_seconds

    def overall(self) -> OperationStats:
        """Aggregate stats across every operation type."""
        counts = sum(s.count for s in self.per_operation.values())
        if counts == 0:
            return OperationStats("overall", 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        mean = sum(
            s.mean_ms * s.count for s in self.per_operation.values()
        ) / counts
        # Percentiles over merged samples are recomputed by the recorder;
        # this path only runs when samples were discarded, so approximate
        # with the count-weighted maximum.
        return OperationStats(
            operation="overall",
            count=counts,
            throughput=self.overall_throughput,
            mean_ms=mean,
            p50_ms=max(s.p50_ms for s in self.per_operation.values()),
            p75_ms=max(s.p75_ms for s in self.per_operation.values()),
            p95_ms=max(s.p95_ms for s in self.per_operation.values()),
            p99_ms=max(s.p99_ms for s in self.per_operation.values()),
        )


class MetricsRecorder:
    """Thread-safe latency sample collector."""

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = {}
        self._lock = threading.Lock()
        self._started = time.perf_counter()

    def record(self, operation: str, seconds: float) -> None:
        with self._lock:
            self._samples.setdefault(operation, []).append(seconds)

    def timed(self, operation: str):
        """Context manager measuring one operation."""
        return _Timed(self, operation)

    def report(self, scenario: str,
               elapsed: float | None = None) -> RunReport:
        with self._lock:
            samples = {op: list(s) for op, s in self._samples.items()}
        if elapsed is None:
            elapsed = time.perf_counter() - self._started
        report = RunReport(scenario=scenario, elapsed_seconds=elapsed)
        merged: list[float] = []
        for operation, values in sorted(samples.items()):
            report.per_operation[operation] = OperationStats.from_samples(
                operation, values, elapsed
            )
            merged.extend(values)
        if merged:
            report.per_operation["overall"] = OperationStats.from_samples(
                "overall", merged, elapsed
            )
        return report


class _Timed:
    def __init__(self, recorder: MetricsRecorder, operation: str):
        self._recorder = recorder
        self._operation = operation

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if exc_info[0] is None:
            self._recorder.record(
                self._operation, time.perf_counter() - self._start
            )
