"""Renderers for the paper's evaluation artifacts.

ASCII equivalents of Figure 5 (per-operation and overall throughput bars
for S_A/S_B/S_C) and the §5.2 latency percentile table, plus the derived
headline ratios: tactic cost (S_A vs S_B) and middleware cost (S_B vs
S_C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.metrics import RunReport

_BAR_WIDTH = 40
_OPERATIONS = ("insert", "eq_search", "aggregate", "overall")


@dataclass(frozen=True)
class HeadlineRatios:
    """The paper's two headline numbers, recomputed from measurements."""

    #: overall throughput loss of hard-coded tactics vs no protection
    #: (paper: ~44%).
    tactic_loss_percent: float
    #: additional overall throughput loss of the middleware vs hard-coded
    #: tactics (paper: ~1.4%).
    middleware_loss_percent: float


def headline_ratios(reports: dict[str, RunReport]) -> HeadlineRatios:
    t_a = reports["S_A"].per_operation["overall"].throughput
    t_b = reports["S_B"].per_operation["overall"].throughput
    t_c = reports["S_C"].per_operation["overall"].throughput
    tactic_loss = 100.0 * (1 - t_b / t_a) if t_a else 0.0
    middleware_loss = 100.0 * (1 - t_c / t_b) if t_b else 0.0
    return HeadlineRatios(tactic_loss, middleware_loss)


def render_figure5(reports: dict[str, RunReport]) -> str:
    """ASCII bar chart of per-operation and overall throughput."""
    lines = ["Figure 5 — per-operation and overall throughput (ops/s)", ""]
    maxima = {}
    for operation in _OPERATIONS:
        maxima[operation] = max(
            (r.per_operation[operation].throughput
             for r in reports.values() if operation in r.per_operation),
            default=0.0,
        )
    for operation in _OPERATIONS:
        lines.append(f"{operation}:")
        for scenario in ("S_A", "S_B", "S_C"):
            report = reports.get(scenario)
            if report is None or operation not in report.per_operation:
                continue
            value = report.per_operation[operation].throughput
            top = maxima[operation] or 1.0
            bar = "#" * max(1, round(_BAR_WIDTH * value / top))
            lines.append(f"  {scenario}  {bar:<{_BAR_WIDTH}} {value:8.1f}")
        lines.append("")
    ratios = headline_ratios(reports)
    lines.append(
        f"tactic throughput loss (S_A -> S_B): "
        f"{ratios.tactic_loss_percent:.1f}%  (paper: ~44%)"
    )
    lines.append(
        f"middleware throughput loss (S_B -> S_C): "
        f"{ratios.middleware_loss_percent:.1f}%  (paper: ~1.4%)"
    )
    return "\n".join(lines)


def render_latency_table(reports: dict[str, RunReport]) -> str:
    """The §5.2 latency table: avg, p50, p75, p95, p99 (milliseconds)."""
    header = (
        f"{'scenario':<10}{'ops':>8}{'avg ms':>10}{'p50 ms':>10}"
        f"{'p75 ms':>10}{'p95 ms':>10}{'p99 ms':>10}"
    )
    lines = ["Latency (overall, milliseconds)", header,
             "-" * len(header)]
    for scenario in ("S_A", "S_B", "S_C"):
        report = reports.get(scenario)
        if report is None:
            continue
        stats = report.per_operation["overall"]
        lines.append(
            f"{scenario:<10}{stats.count:>8}{stats.mean_ms:>10.2f}"
            f"{stats.p50_ms:>10.2f}{stats.p75_ms:>10.2f}"
            f"{stats.p95_ms:>10.2f}{stats.p99_ms:>10.2f}"
        )
    return "\n".join(lines)


def render_run(report: RunReport) -> str:
    """Per-operation breakdown of one run."""
    header = (
        f"{'operation':<12}{'count':>7}{'ops/s':>10}{'avg ms':>10}"
        f"{'p50':>9}{'p75':>9}{'p95':>9}{'p99':>9}"
    )
    lines = [f"scenario {report.scenario} "
             f"({report.elapsed_seconds:.2f}s)", header, "-" * len(header)]
    for name, stats in sorted(report.per_operation.items()):
        lines.append(
            f"{name:<12}{stats.count:>7}{stats.throughput:>10.1f}"
            f"{stats.mean_ms:>10.2f}{stats.p50_ms:>9.2f}"
            f"{stats.p75_ms:>9.2f}{stats.p95_ms:>9.2f}"
            f"{stats.p99_ms:>9.2f}"
        )
    return "\n".join(lines)
