"""The three §5.2 evaluation scenarios.

* **S_A** — the application "only does data operations and does not use
  the middleware or any tactic": plaintext documents to the cloud
  document store, searches as plaintext filters, averages computed
  client-side over fetched values.
* **S_B** — "the data protection tactics are implemented hard-coded into
  the application without using the middleware": the same 8 tactic
  instances the benchmark schema selects (5×DET, Mitra, RND, Paillier),
  wired by hand against the SPI implementations — the crypto work of S_C
  without schema validation, policy, selection or dispatch.
* **S_C** — the application uses DataBlinder.

All three expose the same minimal application interface (insert /
equality search / average), so the load generator drives them
identically.  The S_B/S_C pair shares the exact same tactic classes and
cloud services; the measured difference is purely the middleware layer —
the paper's headline 1.4%.
"""

from __future__ import annotations

from typing import Protocol

from repro.cloud.server import CloudZone
from repro.core.middleware import DataBlinder
from repro.core.query import Eq
from repro.crypto.encoding import Value
from repro.crypto.symmetric import Aead
from repro.fhir.model import benchmark_observation_schema
from repro.gateway.service import GatewayRuntime
from repro.net import message
from repro.net.batch import PipelineConfig
from repro.net.transport import Transport
from repro.spi.descriptors import Aggregate
from repro.core.query import AggregateQuery
from repro.tactics.base import random_doc_id

SCENARIO_NO_PROTECTION = "S_A"
SCENARIO_HARDCODED = "S_B"
SCENARIO_MIDDLEWARE = "S_C"

#: field -> hard-coded tactic of the §5.2 benchmark (8 instances).
HARDCODED_TACTICS = {
    "status": "det",
    "code": "det",
    "effective": "det",
    "issued": "det",
    "value": "det",
    "subject": "mitra",
    "performer": "rnd",
}
HARDCODED_AGGREGATE_FIELD = "value"

_SENSITIVE_FIELDS = tuple(HARDCODED_TACTICS)


class ScenarioApp(Protocol):
    """What the load generator needs from an application under test."""

    name: str

    def insert(self, document: dict[str, Value]) -> str: ...

    def eq_search(self, field: str, value: Value) -> list[dict]: ...

    def average(self, field: str, where_field: str,
                where_value: Value) -> float | None: ...


class NoProtectionApp:
    """S_A: plaintext storage, no tactics, no middleware."""

    name = SCENARIO_NO_PROTECTION

    def __init__(self, transport: Transport, application: str = "bench-a"):
        self._transport = transport
        self._application = application
        transport.call("admin", "provision_application",
                       application=application)
        self._docs = f"docs/{application}"

    def insert(self, document: dict[str, Value]) -> str:
        doc_id = document.get("_id") or random_doc_id()
        payload = {k: v for k, v in document.items() if k != "_id"}
        self._transport.call(self._docs, "insert", document={
            "_id": doc_id, "schema": "observation", "plain": payload,
            "body": b"",
        })
        return doc_id

    def eq_search(self, field: str, value: Value) -> list[dict]:
        ids = self._transport.call(self._docs, "find_plain", query={
            f"plain.{field}": value,
        })
        stored = self._transport.call(self._docs, "get_many", doc_ids=ids)
        return [dict(item["plain"], _id=item["_id"]) for item in stored]

    def average(self, field: str, where_field: str,
                where_value: Value) -> float | None:
        matches = self.eq_search(where_field, where_value)
        values = [m[field] for m in matches if m.get(field) is not None]
        if not values:
            return None
        return sum(values) / len(values)


class HardcodedApp:
    """S_B: the 8 benchmark tactics wired by hand, no middleware layer.

    This is what an application team would write directly against the
    tactic implementations: fixed tactic choices, fixed field wiring,
    explicit body encryption — and none of DataBlinder's schema
    validation, selection, policy audit or dispatch.
    """

    name = SCENARIO_HARDCODED

    def __init__(self, transport: Transport, application: str = "bench-b"):
        self._runtime = GatewayRuntime(application, transport)
        self._body = Aead(
            self._runtime.keystore.derive("observation._body", "app", "aead")
        )
        # Hard-coded tactic instances (the inflexibility DataBlinder
        # removes): one per field, plus Paillier on `value`.
        self._tactics = {
            field: self._runtime.tactic(f"observation.{field}", tactic)
            for field, tactic in HARDCODED_TACTICS.items()
        }
        self._paillier = self._runtime.tactic(
            f"observation.{HARDCODED_AGGREGATE_FIELD}", "paillier"
        )

    def insert(self, document: dict[str, Value]) -> str:
        doc_id = document.get("_id") or random_doc_id()
        sensitive = {
            f: document[f] for f in _SENSITIVE_FIELDS if f in document
        }
        plain = {
            k: v for k, v in document.items()
            if k not in _SENSITIVE_FIELDS and k != "_id"
        }
        for field, value in sensitive.items():
            self._tactics[field].insert(doc_id, value)
        if HARDCODED_AGGREGATE_FIELD in sensitive:
            self._paillier.insert(
                doc_id, sensitive[HARDCODED_AGGREGATE_FIELD]
            )
        self._runtime.docs("insert", document={
            "_id": doc_id,
            "schema": "observation",
            "body": self._body.encrypt(message.encode(sensitive)),
            "plain": plain,
        })
        return doc_id

    def _search_ids(self, field: str, value: Value) -> list[str]:
        tactic = self._tactics[field]
        return sorted(tactic.resolve_eq(tactic.eq_query(value)))

    def eq_search(self, field: str, value: Value) -> list[dict]:
        ids = self._search_ids(field, value)
        stored = self._runtime.docs("get_many", doc_ids=ids)
        documents = []
        for item in stored:
            document = dict(item.get("plain", {}))
            document.update(message.decode(self._body.decrypt(item["body"])))
            document["_id"] = item["_id"]
            documents.append(document)
        return documents

    def average(self, field: str, where_field: str,
                where_value: Value) -> float | None:
        if field != HARDCODED_AGGREGATE_FIELD:
            raise ValueError(
                f"hard-coded application only aggregates "
                f"{HARDCODED_AGGREGATE_FIELD!r}"
            )
        ids = self._search_ids(where_field, where_value)
        if not ids:
            return None
        return self._paillier.aggregate("avg", ids)


class MiddlewareApp:
    """S_C: the same workload through DataBlinder."""

    name = SCENARIO_MIDDLEWARE

    def __init__(self, transport: Transport, application: str = "bench-c",
                 verify_results: bool = False,
                 pipeline: PipelineConfig | None = None):
        # Verification is disabled to match S_B's behaviour exactly: the
        # hard-coded app trusts its tactics' result sets, so the fair
        # comparison has the middleware do the same.
        self._blinder = DataBlinder(
            application, transport, verify_results=verify_results,
            pipeline=pipeline,
        )
        self._blinder.register_schema(benchmark_observation_schema())
        self._entities = self._blinder.entities("observation")

    @property
    def middleware(self) -> DataBlinder:
        return self._blinder

    def insert(self, document: dict[str, Value]) -> str:
        return self._entities.insert(document)

    def eq_search(self, field: str, value: Value) -> list[dict]:
        return self._entities.find(Eq(field, value))

    def average(self, field: str, where_field: str,
                where_value: Value) -> float | None:
        return self._entities.aggregate(AggregateQuery(
            Aggregate.AVG, field, where=Eq(where_field, where_value)
        ))


def build_scenario(name: str, transport: Transport,
                   pipeline: PipelineConfig | None = None) -> ScenarioApp:
    """Instantiate a scenario application by its paper name.

    ``pipeline`` only applies to the middleware scenario (the batched
    data path of EXP-BATCH); S_A and S_B stay per-RPC by construction.
    """
    if name == SCENARIO_NO_PROTECTION:
        return NoProtectionApp(transport)
    if name == SCENARIO_HARDCODED:
        return HardcodedApp(transport)
    if name == SCENARIO_MIDDLEWARE:
        return MiddlewareApp(transport, pipeline=pipeline)
    raise ValueError(f"unknown scenario {name!r}")
