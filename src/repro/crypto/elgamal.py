"""Multiplicative ElGamal over a safe-prime group.

The paper's background section names ElGamal as the classic
multiplicatively homomorphic scheme (E(a) * E(b) = E(a*b)).  It is included
as an *extension tactic* substrate: DataBlinder's catalog (Table 2) ships
Paillier for sums/averages, and the pluggable SPI is demonstrated by also
registering a product-capable aggregate tactic built on this module.

Messages are embedded in the subgroup of quadratic residues mod a safe
prime ``p = 2q + 1`` (squaring the embedding keeps DDH intact).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.primitives.numbers import (
    RandBelow,
    generate_safe_prime,
    invmod,
)
from repro.errors import CryptoError

DEFAULT_KEY_BITS = 512


@dataclass(frozen=True)
class ElGamalPublicKey:
    p: int  # safe prime
    g: int  # generator of the order-q subgroup
    h: int  # g^x

    @property
    def q(self) -> int:
        return (self.p - 1) // 2


@dataclass(frozen=True)
class ElGamalPrivateKey:
    public: ElGamalPublicKey
    x: int


@dataclass(frozen=True)
class ElGamalCiphertext:
    public: ElGamalPublicKey
    c1: int
    c2: int

    def __mul__(self, other: "ElGamalCiphertext") -> "ElGamalCiphertext":
        if not isinstance(other, ElGamalCiphertext):
            return NotImplemented
        if other.public != self.public:
            raise CryptoError("mixed-key ElGamal multiplication")
        p = self.public.p
        return ElGamalCiphertext(
            self.public, self.c1 * other.c1 % p, self.c2 * other.c2 % p
        )

    def pow(self, exponent: int) -> "ElGamalCiphertext":
        """Homomorphic exponentiation: E(m) -> E(m**exponent)."""
        p = self.public.p
        return ElGamalCiphertext(
            self.public, pow(self.c1, exponent, p), pow(self.c2, exponent, p)
        )


def generate_keypair(bits: int = DEFAULT_KEY_BITS,
                     randbelow: RandBelow | None = None) -> ElGamalPrivateKey:
    import secrets

    randbelow = randbelow or secrets.randbelow
    p = generate_safe_prime(bits, randbelow)
    q = (p - 1) // 2
    # A random square generates the order-q subgroup (with overwhelming
    # probability it is not 1).
    while True:
        candidate = pow(randbelow(p - 2) + 2, 2, p)
        if candidate != 1:
            g = candidate
            break
    x = randbelow(q - 1) + 1
    return ElGamalPrivateKey(ElGamalPublicKey(p, g, pow(g, x, p)), x)


def _embed(public: ElGamalPublicKey, message: int) -> int:
    if not 1 <= message:
        raise CryptoError("ElGamal message must be a positive integer")
    embedded = pow(message, 2, public.p)  # force into the QR subgroup
    if message >= public.q:
        raise CryptoError("message too large for square-embedding")
    return embedded


def _unembed(public: ElGamalPublicKey, residue: int) -> int:
    """Invert the squaring embedding via a modular square root.

    For a safe prime ``p = 2q + 1`` (``p % 4 == 3``), the square root of a
    quadratic residue is ``r^((p+1)/4)``; the embedding picked the root
    below ``q``.
    """
    root = pow(residue, (public.p + 1) // 4, public.p)
    if root >= public.q:
        root = public.p - root
    return root


def encrypt_with_randomness(public: ElGamalPublicKey, message: int,
                            g_r: int, h_r: int) -> ElGamalCiphertext:
    """Encrypt using a precomputed randomness pair ``(g^r, h^r)``.

    The expensive exponentiations are plaintext-independent, so the
    crypto kernel layer pregenerates the pairs (process pool or
    fixed-base tables) and this assembly step costs one modmul — the
    message itself never has to leave the caller.
    """
    return ElGamalCiphertext(
        public, g_r, _embed(public, message) * h_r % public.p
    )


def encrypt(public: ElGamalPublicKey, message: int,
            randbelow: RandBelow | None = None) -> ElGamalCiphertext:
    import secrets

    randbelow = randbelow or secrets.randbelow
    m = _embed(public, message)
    r = randbelow(public.q - 1) + 1
    return ElGamalCiphertext(
        public,
        pow(public.g, r, public.p),
        m * pow(public.h, r, public.p) % public.p,
    )


def decrypt(private: ElGamalPrivateKey, ciphertext: ElGamalCiphertext) -> int:
    public = private.public
    if ciphertext.public != public:
        raise CryptoError("ciphertext was produced under a different key")
    s = pow(ciphertext.c1, private.x, public.p)
    residue = ciphertext.c2 * invmod(s, public.p) % public.p
    return _unembed(public, residue)
