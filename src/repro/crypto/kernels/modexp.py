"""Fixed-base windowed modular exponentiation.

Both expensive gateway exponentiations are *fixed-base*: Paillier masks
are powers of one ``β = r₀^n mod n²`` and ElGamal ciphertext components
are powers of the public ``g`` and ``h``.  Precomputing the table

    table[i][d] = base^(d · 2^(w·i)) mod m      d ∈ [0, 2^w)

turns every later exponentiation into at most ``ceil(bits/w)`` modular
multiplications — one table row per non-zero exponent digit — instead of
the ~1.5·bits square-and-multiply operations of a cold ``pow``.  At the
default ``w = 5`` and a 2048-bit modulus that is ~205 modmuls per
exponentiation (~7x fewer), for ~1.7 MB of table built once per key.
"""

from __future__ import annotations

from repro.errors import CryptoError


class FixedBaseTable:
    """Windowed power table for one (base, modulus) pair.

    >>> table = FixedBaseTable(3, 1000003, exponent_bits=20)
    >>> table.pow(123456) == pow(3, 123456, 1000003)
    True
    """

    __slots__ = ("modulus", "window_bits", "_rows")

    def __init__(self, base: int, modulus: int, exponent_bits: int,
                 window_bits: int = 5):
        if modulus <= 1:
            raise CryptoError("fixed-base modulus must exceed 1")
        if not 1 <= window_bits <= 8:
            raise CryptoError("window width out of supported range")
        if exponent_bits < 1:
            raise CryptoError("exponent size must be positive")
        self.modulus = modulus
        self.window_bits = window_bits
        radix = 1 << window_bits
        rows: list[list[int]] = []
        current = base % modulus
        for _ in range(-(-exponent_bits // window_bits)):
            row = [1, current]
            for _ in range(radix - 2):
                row.append(row[-1] * current % modulus)
            rows.append(row)
            for _ in range(window_bits):
                current = current * current % modulus
        self._rows = rows

    def pow(self, exponent: int) -> int:
        """``base ** exponent mod modulus`` via the table."""
        if exponent < 0:
            raise CryptoError("fixed-base exponent must be non-negative")
        result = 1
        mask = (1 << self.window_bits) - 1
        row_index = 0
        rows = self._rows
        modulus = self.modulus
        while exponent:
            if row_index >= len(rows):
                raise CryptoError("exponent exceeds precomputed table")
            digit = exponent & mask
            if digit:
                result = result * rows[row_index][digit] % modulus
            exponent >>= self.window_bits
            row_index += 1
        return result

    @property
    def entries(self) -> int:
        return sum(len(row) for row in self._rows)

    @property
    def memory_bytes(self) -> int:
        """Approximate resident size: entries × modulus width."""
        width = (self.modulus.bit_length() + 7) // 8
        return self.entries * width
