"""CryptoExecutor: the shared dispatcher of the gateway crypto kernels.

One executor per :class:`~repro.gateway.service.GatewayRuntime`, handed
to every tactic through its context.  It provides the three services the
batch SPI builds on:

* **Process-pool offload** for big-int kernels.  Python big-int modexp
  holds the GIL, so threads cannot parallelise it; the pool uses the
  ``forkserver`` start method (fork is unsafe under the runtime's daemon
  threads) and is shared module-wide per worker count, so many runtimes
  in one process reuse the same workers.
* **A plain-argument sanitizer**: everything submitted to the pool must
  be built from int/str/float/bool/None.  Key *objects* (Paillier or
  ElGamal private keys, HSM handles) and even raw key bytes are rejected
  at the submission boundary, so no private material can ever be pickled
  into a worker — the kernels only ever ship public parameters and
  counts.  Every submission is mirrored into :attr:`audit` so tests can
  assert that invariant against real traffic.
* **Dedup/LRU mapping** for deterministic per-value crypto (DET seals,
  blind-index tags, OPE/ORE codes): one computation per distinct value,
  results remembered across batches in a per-field LRU.

With an inactive config every helper degrades to the exact sequential
loop of the seed, computing ``fn(value)`` per element in order.
"""

from __future__ import annotations

import atexit
import threading
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.crypto.kernels.config import CryptoConfig
from repro.errors import CryptoError

#: Types a pool submission may be built from.  Deliberately excludes
#: ``bytes``: symmetric keys, tokens and ciphertext blobs all live in
#: bytes, and the big-int kernels need none of them.
_PLAIN_TYPES = (int, float, str, bool, type(None))


def ensure_plain_args(args: Sequence[Any]) -> None:
    """Reject any pool argument that is not plain public data."""
    stack = list(args)
    while stack:
        item = stack.pop()
        if isinstance(item, _PLAIN_TYPES):
            continue
        if isinstance(item, (tuple, list)):
            stack.extend(item)
            continue
        raise CryptoError(
            "crypto kernel arguments must be plain int/str/float/bool "
            f"values, got {type(item).__name__} — key material and key "
            "objects never cross the process boundary"
        )


class LruCache:
    """A small thread-safe LRU used for deterministic token caches."""

    __slots__ = ("_capacity", "_entries", "_lock", "hits", "misses")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise CryptoError("cache capacity must be positive")
        self._capacity = capacity
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Any | None:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _Resolved:
    """A completed inline 'future' so callers need one result() shape."""

    __slots__ = ("_value",)

    def __init__(self, value: Any):
        self._value = value

    def result(self) -> Any:
        return self._value


class _FallbackFuture:
    """A pool future that recomputes inline if the pool dies.

    Kernels are pure functions of plain public arguments, so an inline
    recompute is always a correct substitute for a lost worker result —
    e.g. a pool broken because the hosting script lacked the
    multiprocessing ``__main__`` guard, or had its workers killed.
    """

    __slots__ = ("_future", "_fn", "_args", "_executor")

    def __init__(self, future: Future, fn: Callable[..., Any],
                 args: tuple, executor: "CryptoExecutor"):
        self._future = future
        self._fn = fn
        self._args = args
        self._executor = executor

    def result(self) -> Any:
        try:
            return self._future.result()
        except BrokenExecutor:
            started = time.perf_counter()
            value = self._fn(*self._args)
            self._executor.record(f"{self._fn.__name__}:pool-fallback",
                                  time.perf_counter() - started)
            return value


# -- shared process pools ------------------------------------------------------

_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            import multiprocessing

            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("forkserver"),
            )
            _POOLS[workers] = pool
        return pool


def _shutdown_pools() -> None:
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pools)


class CryptoExecutor:
    """Kernel dispatcher bound to one runtime's :class:`CryptoConfig`."""

    def __init__(self, config: CryptoConfig | None = None):
        self.config = config or CryptoConfig()
        #: Mirror of every pool submission: ``(kernel name, args)``.
        #: Bounded; consumed by the forkserver-safety test.
        self.audit: list[tuple[str, tuple]] = []
        self._audit_limit = 512
        self._timings: list[tuple[str, float]] = []
        self._lock = threading.Lock()
        #: Cache-tier token level: when enabled, :meth:`cache` and
        #: :meth:`dedup_map` memoise deterministic trapdoors even while
        #: the kernels themselves are inactive (results are identical —
        #: the memoised functions are pure per key epoch).
        self.token_caching = False
        self._token_cache_capacity = 0
        self._token_caches: list[LruCache] = []

    # -- process-pool offload --------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any):
        """Run a big-int kernel, pooled when configured.

        Returns a future-shaped object; ``result()`` yields the kernel
        output.  Arguments are sanitised *before* anything reaches the
        pool — submitting key objects or key bytes raises.
        """
        ensure_plain_args(args)
        with self._lock:
            if len(self.audit) < self._audit_limit:
                self.audit.append((getattr(fn, "__name__", repr(fn)), args))
        if self.config.workers < 1:
            started = time.perf_counter()
            value = fn(*args)
            self.record(fn.__name__, time.perf_counter() - started)
            return _Resolved(value)
        started = time.perf_counter()
        try:
            future = _shared_pool(self.config.workers).submit(fn, *args)
        except RuntimeError:
            # Python's safe-import rule: a script without an
            # ``if __name__ == "__main__"`` guard cannot spawn workers
            # while its main module is still importing.  Degrade to
            # inline computation rather than crash the write path.
            value = fn(*args)
            self.record(f"{fn.__name__}:pool-fallback",
                        time.perf_counter() - started)
            return _Resolved(value)
        future.add_done_callback(
            lambda f: self.record(fn.__name__,
                                  time.perf_counter() - started)
        )
        return _FallbackFuture(future, fn, args, self)

    def warm(self, fn: Callable[..., Any] | None = None,
             *args: Any) -> None:
        """Pay the pool's one-time costs up front (no-op when inline).

        A worker's first task is charged an interpreter spawn plus the
        package import, and the first batch against a given key builds
        that worker's fixed-base table.  A service calls this at
        startup — optionally with a real kernel invocation such as
        ``(paillier_masks, n, 1, window_bits)`` so the per-key tables
        warm too — instead of taxing the first live batch.  One task per
        worker is submitted concurrently, so every worker comes up.
        """
        if self.config.workers < 1:
            return
        if fn is None:
            from repro.crypto.kernels.workers import paillier_masks

            fn, args = paillier_masks, (35, 1)
        ensure_plain_args(args)
        try:
            pool = _shared_pool(self.config.workers)
            futures = [
                pool.submit(fn, *args) for _ in range(self.config.workers)
            ]
            for future in futures:
                future.result()
        except RuntimeError:  # includes BrokenExecutor
            # Can't spawn (safe-import rule) or pool already broken —
            # nothing to warm; live submissions fall back inline.
            return

    def submit_batch(self, fn: Callable[..., Any], count: int,
                     *args: Any) -> "Future | _Resolved | None":
        """Submit when the batch is pool-worthy, else signal inline.

        Returns ``None`` for batches below ``min_submit`` or with the
        pool off — the caller then runs its sequential fallback, which
        for small batches is cheaper than a pool round trip.
        """
        if self.config.workers < 1 or count < self.config.min_submit:
            return None
        return self.submit(fn, *args)

    # -- deterministic-value mapping -------------------------------------------

    def enable_token_caching(self, capacity: int) -> None:
        """Turn the cache tier's token level on (idempotent).

        Must run before tactic instances are built — they capture their
        token caches at ``setup()`` time.
        """
        self.token_caching = True
        self._token_cache_capacity = max(1, int(capacity))

    def cache(self) -> LruCache | None:
        """A per-call-site LRU, or None while the kernels are inactive
        and the token-cache level is off."""
        if self.config.active:
            cache = LruCache(self.config.cache_size)
        elif self.token_caching:
            cache = LruCache(self._token_cache_capacity)
        else:
            return None
        with self._lock:
            self._token_caches.append(cache)
        return cache

    def token_cache_stats(self) -> dict:
        """Aggregate hit/miss counters over every handed-out cache."""
        with self._lock:
            caches = list(self._token_caches)
        return {
            "caches": len(caches),
            "entries": sum(len(cache) for cache in caches),
            "hits": sum(cache.hits for cache in caches),
            "misses": sum(cache.misses for cache in caches),
        }

    def dedup_map(self, values: Iterable[Any], fn: Callable[[Any], Any],
                  *, key: Callable[[Any], Any],
                  cache: LruCache | None = None,
                  batch: Callable[[list[Any]], list[Any]] | None = None
                  ) -> list[Any]:
        """Map a deterministic ``fn`` over ``values``.

        Inactive config: the exact seed loop, one call per element.
        Active: one computation per *distinct* key, optionally served
        from ``cache`` and computed through ``batch`` (a vectorised
        implementation such as one multi-element HSM round).
        """
        values = list(values)
        if not self.config.active and not self.token_caching:
            return [fn(value) for value in values]
        started = time.perf_counter()
        keys = [key(value) for value in values]
        outputs: dict[Any, Any] = {}
        missing: list[Any] = []
        for cache_key, value in zip(keys, values):
            if cache_key in outputs:
                continue
            cached = cache.get(cache_key) if cache is not None else None
            if cached is not None:
                outputs[cache_key] = cached
            else:
                outputs[cache_key] = _PENDING
                missing.append(value)
        if missing:
            computed = (batch(missing) if batch is not None
                        else [fn(value) for value in missing])
            for value, output in zip(missing, computed):
                cache_key = key(value)
                outputs[cache_key] = output
                if cache is not None:
                    cache.put(cache_key, output)
        if self.config.active:
            # Token-caching-only mode skips the timing sink: nothing
            # drains it outside the kernelised write paths.
            self.record("dedup_map", time.perf_counter() - started)
        return [outputs[cache_key] for cache_key in keys]

    # -- timing ----------------------------------------------------------------

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            self._timings.append((name, seconds))

    def drain_timings(self) -> list[tuple[str, float]]:
        """Kernel timings accumulated since the last drain."""
        with self._lock:
            timings, self._timings = self._timings, []
        return timings


_PENDING = object()

_INLINE: CryptoExecutor | None = None
_INLINE_LOCK = threading.Lock()


def inline_executor() -> CryptoExecutor:
    """The do-nothing executor used by bare tactic harnesses."""
    global _INLINE
    if _INLINE is None:
        with _INLINE_LOCK:
            if _INLINE is None:
                _INLINE = CryptoExecutor(CryptoConfig())
    return _INLINE
