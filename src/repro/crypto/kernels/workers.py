"""Process-pool kernel functions.

Module-level functions taking only plain int arguments, so they pickle
by reference and unpickle in a forkserver worker by importing this
module.  By design they receive **public parameters and counts only**
(``n`` for Paillier, ``(p, g, h)`` for ElGamal): randomness is drawn
worker-side from ``secrets`` (fork-safe), plaintexts stay in the parent
and are folded in afterwards with one modmul.  Private keys cannot reach
a worker even by accident — the executor's sanitizer rejects non-plain
arguments, and these signatures have nowhere to put them.

Per-key fixed-base tables are cached in a worker-global so a long-lived
pool pays each table build once.
"""

from __future__ import annotations

import secrets

from repro.crypto.kernels.modexp import FixedBaseTable
from repro.crypto.primitives.numbers import egcd

#: Worker-resident fixed-base tables (or tuples of them) keyed by
#: (kind, modulus-defining ints, window).  Bounded by the handful of
#: keys a deployment uses.
_TABLES: dict[tuple, object] = {}


def _unit_below(n: int) -> int:
    while True:
        r = secrets.randbelow(n - 1) + 1
        if egcd(r, n)[0] == 1:
            return r


def paillier_masks(n: int, count: int, window_bits: int = 0) -> list[int]:
    """``count`` fresh Paillier obfuscator masks ``r^n mod n²``.

    With ``window_bits`` set, the worker keeps a fixed-base table for
    ``β = r₀^n`` and returns ``β^k`` masks (the amortised-randomness
    trade documented in docs/architecture.md); otherwise each mask is a
    full cold exponentiation.
    """
    n_squared = n * n
    if window_bits <= 0:
        return [pow(_unit_below(n), n, n_squared) for _ in range(count)]
    key = ("paillier", n, window_bits)
    table = _TABLES.get(key)
    if table is None:
        beta = pow(_unit_below(n), n, n_squared)
        table = FixedBaseTable(beta, n_squared, n.bit_length(), window_bits)
        _TABLES[key] = table
    return [table.pow(secrets.randbelow(n - 1) + 1) for _ in range(count)]


def elgamal_randoms(p: int, g: int, h: int, count: int,
                    window_bits: int = 0) -> list[tuple[int, int]]:
    """``count`` ElGamal randomness pairs ``(g^r, h^r) mod p``.

    The parent multiplies the embedded message into the second component
    (one modmul), so plaintexts never reach the worker.
    """
    q = (p - 1) // 2
    if window_bits <= 0:
        pairs = []
        for _ in range(count):
            r = secrets.randbelow(q - 1) + 1
            pairs.append((pow(g, r, p), pow(h, r, p)))
        return pairs
    key = ("elgamal", p, g, h, window_bits)
    tables = _TABLES.get(key)
    if tables is None:
        tables = (FixedBaseTable(g, p, q.bit_length(), window_bits),
                  FixedBaseTable(h, p, q.bit_length(), window_bits))
        _TABLES[key] = tables
    table_g, table_h = tables
    pairs = []
    for _ in range(count):
        r = secrets.randbelow(q - 1) + 1
        pairs.append((table_g.pow(r), table_h.pow(r)))
    return pairs
