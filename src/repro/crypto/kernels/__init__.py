"""Gateway crypto kernels: batched, pooled, precomputed crypto.

Public surface:

* :class:`~repro.crypto.kernels.config.CryptoConfig` — the
  ``PipelineConfig.crypto`` knob set (defaults keep everything off).
* :class:`~repro.crypto.kernels.executor.CryptoExecutor` — the shared
  dispatcher (process pool, sanitizer, dedup/LRU maps, kernel timings).
* :class:`~repro.crypto.kernels.modexp.FixedBaseTable` — windowed
  fixed-base modexp precomputation.

``repro.crypto.kernels.workers`` holds the process-pool kernel
functions; it is imported lazily by call sites (and by the forkserver
workers), never here, so ``paillier.py`` can import the table type
without a cycle.
"""

from repro.crypto.kernels.config import CryptoConfig, resolve_crypto
from repro.crypto.kernels.executor import (
    CryptoExecutor,
    LruCache,
    ensure_plain_args,
    inline_executor,
)
from repro.crypto.kernels.modexp import FixedBaseTable

__all__ = [
    "CryptoConfig",
    "CryptoExecutor",
    "FixedBaseTable",
    "LruCache",
    "ensure_plain_args",
    "inline_executor",
    "resolve_crypto",
]
