"""Configuration of the gateway crypto kernel layer.

The kernel layer is the CPU-side twin of the RPC batching pipeline: it
turns per-value crypto calls into batch operations and decides *where*
each batch runs — inline on the calling thread (cheap symmetric work),
or on a shared process pool (big-int modular exponentiation, which the
GIL serialises when run on threads).

The all-defaults :class:`CryptoConfig` keeps every kernel off:
``active`` is False, the tactic batch SPI falls back to its sequential
per-value loops, and ciphertexts are byte-identical to the seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

#: Environment override forcing the process pool on (worker count).  The
#: CI matrix uses it to run the whole suite through the multiprocessing
#: path and surface pickling/forkserver flakes that a defaults-only run
#: would never reach.
FORCE_POOL_ENV = "DATABLINDER_CRYPTO_FORCE_POOL"


@dataclass(frozen=True)
class CryptoConfig:
    """Knobs of the gateway crypto kernels.

    ``workers`` and ``precompute`` are independent: a 1-core gateway
    gets its speedup from precomputation alone, a multi-core gateway
    adds the pool so mask pregeneration overlaps the inline symmetric
    work.
    """

    #: Process-pool workers for big-int kernels (Paillier obfuscator
    #: masks, ElGamal randomness pairs).  0 keeps all crypto inline.
    workers: int = 0
    #: Fixed-base windowed modexp tables (Paillier ``r^n`` masks, the
    #: ElGamal ``g``/``h`` bases) plus the OPE split-node memo.
    precompute: bool = False
    #: Window width of the fixed-base tables.  6 bits ≈ 171 modmuls per
    #: 1024-bit exponentiation (vs ~1200 for the built-in sliding-window
    #: pow) at ~2.8 MB of table per 2048-bit modulus; measured ~6x on
    #: Paillier mask generation.
    window_bits: int = 6
    #: Per-field LRU size for deterministic token/ciphertext caches
    #: (DET seals, blind-index tags, OPE/ORE codes) and the OPE node
    #: memo.  Only consulted while the kernels are active.
    cache_size: int = 4096
    #: Smallest batch worth a process-pool round trip; smaller batches
    #: stay inline to dodge the submission overhead.
    min_submit: int = 4

    @property
    def active(self) -> bool:
        """Whether any kernel behaviour differs from the seed loops."""
        return self.workers > 0 or self.precompute


def resolve_crypto(config: CryptoConfig | None) -> CryptoConfig:
    """Apply environment overrides to a (possibly absent) config."""
    resolved = config or CryptoConfig()
    forced = os.environ.get(FORCE_POOL_ENV)
    if forced:
        try:
            workers = int(forced)
        except ValueError:
            raise ValueError(
                f"{FORCE_POOL_ENV} must be an integer, got {forced!r}"
            ) from None
        if workers > 0 and workers != resolved.workers:
            resolved = replace(resolved, workers=workers)
    return resolved
