"""Boldyreva order-preserving encryption (OPE).

Implements the Boldyreva–Chenette–Lee–O'Neill construction: a random
order-preserving function from the plaintext domain into a larger
ciphertext range, lazily sampled with PRF-derived coins so that the same
key always defines the same function.  The binary-search recursion splits
the range and samples a hypergeometric variate to decide how many domain
points land in each half.

For moderate parameters the exact hypergeometric quantile from scipy is
used; beyond scipy's numeric comfort zone the sampler falls back to a
clamped normal approximation.  Order preservation only requires that the
split point be deterministic and within the hypergeometric support — which
both samplers guarantee — so the approximation does not affect
correctness, only how closely the sampled function matches a uniform
random order-preserving function.

Leakage: ciphertext order equals plaintext order (class 5 / *order* in the
paper's taxonomy).
"""

from __future__ import annotations

import math

from scipy.stats import hypergeom

from repro.crypto.primitives.hmac_prf import prf
from repro.errors import CryptoError

DEFAULT_DOMAIN_BITS = 32
DEFAULT_RANGE_BITS = 48

_EXACT_LIMIT = 1 << 24  # use scipy's exact quantile below this population


def _uniform_coin(key: bytes, *parts: bytes) -> float:
    """Deterministic uniform in [0, 1) derived from the PRF."""
    raw = int.from_bytes(prf(key, *parts), "big")
    return (raw >> 203) / float(1 << 53)  # 53-bit mantissa-exact float


def _hypergeom_sample(coin: float, population: int, marked: int,
                      draws: int) -> int:
    """Quantile sampling of Hypergeometric(population, marked, draws)."""
    low = max(0, draws - (population - marked))
    high = min(marked, draws)
    if low == high:
        return low
    if population <= _EXACT_LIMIT:
        value = int(hypergeom.ppf(coin, population, marked, draws))
    else:
        mean = draws * marked / population
        var = (
            draws
            * (marked / population)
            * (1 - marked / population)
            * (population - draws)
            / max(population - 1, 1)
        )
        std = math.sqrt(max(var, 0.0))
        # Inverse-normal via erfinv-free approximation: use the probit of
        # the coin computed from math.erf inversion by bisection-free
        # rational approximation (Acklam). Good to ~1e-9, ample here.
        value = round(mean + std * _probit(coin))
    return min(max(value, low), high)


def _probit(u: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    if not 0.0 < u < 1.0:
        u = min(max(u, 1e-12), 1 - 1e-12)
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if u < p_low:
        q = math.sqrt(-2 * math.log(u))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if u > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - u))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q
                            + 1)
    q = u - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


class Ope:
    """A keyed order-preserving function ``[0, 2^d) -> [0, 2^r)``.

    >>> scheme = Ope(b"k" * 16, domain_bits=16, range_bits=24)
    >>> scheme.encrypt(100) < scheme.encrypt(200)
    True
    """

    def __init__(self, key: bytes, domain_bits: int = DEFAULT_DOMAIN_BITS,
                 range_bits: int = DEFAULT_RANGE_BITS,
                 cache_nodes: int = 0):
        if range_bits <= domain_bits:
            raise CryptoError("OPE range must be strictly larger than domain")
        if not key:
            raise CryptoError("OPE key must be non-empty")
        self._key = key
        self.domain_bits = domain_bits
        self.range_bits = range_bits
        self.domain_size = 1 << domain_bits
        self.range_size = 1 << range_bits
        #: Memo of bisection-node split decisions, keyed by the node's
        #: (domain, range) intervals.  The sampled function is fully
        #: determined by the key, so memoised walks produce identical
        #: ciphertexts — the cache only skips re-sampling the (scipy)
        #: hypergeometric quantile at nodes many plaintexts share, which
        #: is most of them when values cluster (ages, vitals, prices).
        self._node_cache: dict[tuple[int, int, int, int], int] | None = (
            {} if cache_nodes > 0 else None
        )
        self._node_cache_limit = cache_nodes

    def encrypt(self, plaintext: int) -> int:
        if not 0 <= plaintext < self.domain_size:
            raise CryptoError("plaintext outside OPE domain")
        d_lo, d_hi = 0, self.domain_size  # domain interval [d_lo, d_hi)
        r_lo, r_hi = 0, self.range_size   # range interval [r_lo, r_hi)
        cache = self._node_cache
        while d_hi - d_lo > 1:
            node = (d_lo, d_hi, r_lo, r_hi)
            split = None if cache is None else cache.get(node)
            d_size = d_hi - d_lo
            r_size = r_hi - r_lo
            r_mid = r_lo + r_size // 2
            if split is None:
                draws = r_mid - r_lo
                coin = _uniform_coin(
                    self._key,
                    b"node",
                    d_lo.to_bytes(16, "big"), d_hi.to_bytes(16, "big"),
                    r_lo.to_bytes(16, "big"), r_hi.to_bytes(16, "big"),
                )
                # How many of the d_size domain points fall into the left
                # half of the range (draws slots out of r_size).
                left_count = _hypergeom_sample(coin, r_size, d_size, draws)
                split = d_lo + left_count
                if cache is not None:
                    if len(cache) >= self._node_cache_limit:
                        cache.clear()
                    cache[node] = split
            if plaintext < split:
                d_hi, r_hi = split, r_mid
            else:
                d_lo, r_lo = split, r_mid
            if d_hi - d_lo > r_hi - r_lo:
                raise CryptoError("OPE sampler violated its support")
        # Single remaining plaintext: place it uniformly in what is left
        # of the range.
        coin = _uniform_coin(
            self._key, b"leaf", d_lo.to_bytes(16, "big"),
            r_lo.to_bytes(16, "big"), r_hi.to_bytes(16, "big"),
        )
        return r_lo + int(coin * (r_hi - r_lo))

    def encrypt_many(self, plaintexts: list[int]) -> list[int]:
        return [self.encrypt(p) for p in plaintexts]
