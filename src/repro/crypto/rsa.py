"""RSA: key generation, OAEP encryption and the raw trapdoor permutation.

Two consumers exist in this repository:

* The **Sophos** tactic (:mod:`repro.tactics.sophos`) uses the *raw* RSA
  trapdoor permutation over Z_n — the gateway walks the permutation
  backwards with the private key while the cloud walks it forwards with the
  public key; that asymmetry is exactly what gives Sophos forward privacy.
* OAEP provides standard public-key encryption (the paper's prototype uses
  RSA/OAEP via Bouncy Castle) used by the simulated HSM for key wrapping.

Default modulus size is configurable; tests use small moduli for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.primitives.hmac_prf import hash_bytes, prg
from repro.crypto.primitives.numbers import (
    RandBelow,
    bytes_to_int,
    generate_distinct_primes,
    int_to_bytes,
    invmod,
    lcm,
)
from repro.crypto.primitives.random import RandomSource, default_random
from repro.errors import CryptoError

DEFAULT_MODULUS_BITS = 1024
PUBLIC_EXPONENT = 65537
_HASH_LEN = 32


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int = PUBLIC_EXPONENT

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def apply(self, x: int) -> int:
        """Forward trapdoor permutation: ``x**e mod n``."""
        if not 0 <= x < self.n:
            raise CryptoError("permutation input out of range")
        return pow(x, self.e, self.n)


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def invert(self, y: int) -> int:
        """Inverse trapdoor permutation with CRT speedup."""
        if not 0 <= y < self.n:
            raise CryptoError("permutation input out of range")
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        mp = pow(y % self.p, dp, self.p)
        mq = pow(y % self.q, dq, self.q)
        q_inv = invmod(self.q, self.p)
        h = (q_inv * (mp - mq)) % self.p
        return mq + h * self.q


def generate_keypair(bits: int = DEFAULT_MODULUS_BITS,
                     randbelow: RandBelow | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair with an exactly ``bits``-bit modulus."""
    if bits < 128:
        raise CryptoError("modulus too small")
    while True:
        p, q = generate_distinct_primes(bits // 2, 2, randbelow)
        n = p * q
        if n.bit_length() != bits:
            continue
        lam = lcm(p - 1, q - 1)
        if lam % PUBLIC_EXPONENT == 0:
            continue
        d = invmod(PUBLIC_EXPONENT, lam)
        return RsaPrivateKey(n=n, e=PUBLIC_EXPONENT, d=d, p=p, q=q)


# ---------------------------------------------------------------------------
# OAEP (RFC 8017 style, SHA-256, MGF1 via the PRG)
# ---------------------------------------------------------------------------


def _mgf1(seed: bytes, length: int) -> bytes:
    return prg(seed, length, label=b"mgf1")


def oaep_encrypt(key: RsaPublicKey, message: bytes, label: bytes = b"",
                 rng: RandomSource | None = None) -> bytes:
    rng = rng or default_random()
    k = key.byte_length
    max_len = k - 2 * _HASH_LEN - 2
    if len(message) > max_len:
        raise CryptoError(f"message too long for OAEP ({len(message)} > {max_len})")
    l_hash = hash_bytes(label)
    padding = bytes(k - len(message) - 2 * _HASH_LEN - 2)
    data_block = l_hash + padding + b"\x01" + message
    seed = rng.token_bytes(_HASH_LEN)
    masked_db = bytes(
        a ^ b for a, b in zip(data_block, _mgf1(seed, len(data_block)))
    )
    masked_seed = bytes(
        a ^ b for a, b in zip(seed, _mgf1(masked_db, _HASH_LEN))
    )
    encoded = b"\x00" + masked_seed + masked_db
    return int_to_bytes(key.apply(bytes_to_int(encoded)), k)


def oaep_decrypt(key: RsaPrivateKey, ciphertext: bytes,
                 label: bytes = b"") -> bytes:
    k = key.byte_length
    if len(ciphertext) != k:
        raise CryptoError("OAEP ciphertext has wrong length")
    encoded = int_to_bytes(key.invert(bytes_to_int(ciphertext)), k)
    if encoded[0] != 0:
        raise CryptoError("OAEP decoding failed")
    masked_seed = encoded[1:1 + _HASH_LEN]
    masked_db = encoded[1 + _HASH_LEN:]
    seed = bytes(
        a ^ b for a, b in zip(masked_seed, _mgf1(masked_db, _HASH_LEN))
    )
    data_block = bytes(
        a ^ b for a, b in zip(masked_db, _mgf1(seed, len(masked_db)))
    )
    l_hash = hash_bytes(label)
    if data_block[:_HASH_LEN] != l_hash:
        raise CryptoError("OAEP label mismatch")
    try:
        separator = data_block.index(b"\x01", _HASH_LEN)
    except ValueError:
        raise CryptoError("OAEP decoding failed") from None
    if any(data_block[_HASH_LEN:separator]):
        raise CryptoError("OAEP decoding failed")
    return data_block[separator + 1:]
