"""Chenette–Lewi–Weis–Wu (CLWW) practical order-revealing encryption.

Each plaintext bit is blinded with a PRF over its prefix, modulo 3.  Two
ciphertexts are compared by locating the first position where they differ:
the +1 (mod 3) relation at that position reveals which plaintext is
larger.  Unlike OPE the ciphertext is not itself a number — order is
revealed only through the public :func:`compare` routine — and the scheme
leaks the index of the most significant differing bit in addition to
order (class 5 / *order* leakage in the paper's taxonomy, like OPE).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.primitives.hmac_prf import prf
from repro.errors import CryptoError

DEFAULT_BITS = 64


@dataclass(frozen=True)
class OreCiphertext:
    bits: int
    digits: tuple[int, ...]  # one ternary digit per plaintext bit

    def to_bytes(self) -> bytes:
        """Pack the ternary digits two bits each, headed by the bit count."""
        packed = 0
        for digit in self.digits:
            packed = (packed << 2) | digit
        length = (2 * self.bits + 7) // 8
        return self.bits.to_bytes(2, "big") + packed.to_bytes(length, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "OreCiphertext":
        if len(data) < 2:
            raise CryptoError("ORE ciphertext too short")
        bits = int.from_bytes(data[:2], "big")
        length = (2 * bits + 7) // 8
        if len(data) != 2 + length:
            raise CryptoError("ORE ciphertext has wrong length")
        packed = int.from_bytes(data[2:], "big")
        digits = tuple(
            (packed >> (2 * (bits - 1 - i))) & 0b11 for i in range(bits)
        )
        if any(d > 2 for d in digits):
            raise CryptoError("ORE ciphertext contains an invalid digit")
        return cls(bits, digits)


class Ore:
    """Keyed CLWW ORE over ``bits``-bit unsigned integers."""

    def __init__(self, key: bytes, bits: int = DEFAULT_BITS):
        if not key:
            raise CryptoError("ORE key must be non-empty")
        if bits < 1 or bits > 512:
            raise CryptoError("unsupported ORE width")
        self._key = key
        self.bits = bits

    def encrypt(self, plaintext: int) -> OreCiphertext:
        if not 0 <= plaintext < (1 << self.bits):
            raise CryptoError("plaintext outside ORE domain")
        digits = []
        for i in range(self.bits):
            prefix = plaintext >> (self.bits - i)  # the i most significant bits
            bit = (plaintext >> (self.bits - 1 - i)) & 1
            mask = prf(
                self._key, b"clww", i.to_bytes(4, "big"),
                prefix.to_bytes((i + 8) // 8 or 1, "big"),
            )[0] % 3
            digits.append((mask + bit) % 3)
        return OreCiphertext(self.bits, tuple(digits))


def compare(a: OreCiphertext, b: OreCiphertext) -> int:
    """Public comparison: -1 if pt(a) < pt(b), 0 if equal, 1 if greater.

    Runs without any key — this is what lets the *cloud* side evaluate
    range predicates over ORE ciphertexts.
    """
    if a.bits != b.bits:
        raise CryptoError("cannot compare ORE ciphertexts of unequal width")
    for da, db in zip(a.digits, b.digits):
        if da == db:
            continue
        return -1 if (da + 1) % 3 == db else 1
    return 0
