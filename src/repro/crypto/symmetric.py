"""High-level symmetric encryption envelopes.

Three envelopes back the value-protection tactics of the paper:

* :class:`Aead` — probabilistic authenticated encryption (AES-GCM with a
  random 96-bit nonce).  This is the cryptographic core of the **RND**
  tactic (Table 2: class 1, *structure* leakage).
* :class:`Deterministic` — SIV-style deterministic authenticated
  encryption: the nonce is a PRF over the plaintext, so equal plaintexts
  produce equal ciphertexts.  Core of the **DET** tactic (class 4,
  *equalities* leakage).
* :func:`seal_value` / :func:`open_value` — convenience wrappers applying
  the canonical value codec before encryption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.encoding import Value, decode_value, encode_value
from repro.crypto.primitives.aes import AES
from repro.crypto.primitives.hmac_prf import hkdf, prf
from repro.crypto.primitives.modes import gcm_decrypt, gcm_encrypt
from repro.crypto.primitives.random import RandomSource, default_random
from repro.errors import CryptoError

NONCE_SIZE = 12
TAG_SIZE = 16
KEY_SIZE = 16


@dataclass(frozen=True)
class SealedBox:
    """A self-contained ciphertext: nonce || ciphertext || tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.nonce + self.ciphertext + self.tag

    @classmethod
    def from_bytes(cls, data: bytes) -> "SealedBox":
        if len(data) < NONCE_SIZE + TAG_SIZE:
            raise CryptoError("sealed box too short")
        return cls(
            nonce=data[:NONCE_SIZE],
            ciphertext=data[NONCE_SIZE:-TAG_SIZE],
            tag=data[-TAG_SIZE:],
        )


class Aead:
    """Probabilistic AES-GCM envelope (fresh random nonce per message)."""

    def __init__(self, key: bytes, rng: RandomSource | None = None):
        if len(key) not in (16, 24, 32):
            raise CryptoError("AEAD key must be 16, 24 or 32 bytes")
        self._cipher = AES(key)
        self._rng = rng or default_random()

    def encrypt(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        nonce = self._rng.token_bytes(NONCE_SIZE)
        ciphertext, tag = gcm_encrypt(self._cipher, nonce, plaintext, aad)
        return SealedBox(nonce, ciphertext, tag).to_bytes()

    def decrypt(self, sealed: bytes, aad: bytes = b"") -> bytes:
        box = SealedBox.from_bytes(sealed)
        return gcm_decrypt(self._cipher, box.nonce, box.ciphertext, box.tag,
                           aad)


class Deterministic:
    """SIV-style deterministic authenticated encryption.

    The nonce is derived as ``PRF(mac_key, aad, plaintext)``; decryption
    re-derives and compares it, giving authenticity.  Equal plaintexts under
    the same key map to identical ciphertexts — the *equalities* leakage
    that places DET in protection class 4.
    """

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise CryptoError("deterministic key must be at least 16 bytes")
        self._enc_key = hkdf(key, b"det-enc", KEY_SIZE)
        self._mac_key = hkdf(key, b"det-mac", 32)
        self._cipher = AES(self._enc_key)

    def encrypt(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        nonce = prf(self._mac_key, aad, plaintext)[:NONCE_SIZE]
        ciphertext, tag = gcm_encrypt(self._cipher, nonce, plaintext, aad)
        return SealedBox(nonce, ciphertext, tag).to_bytes()

    def decrypt(self, sealed: bytes, aad: bytes = b"") -> bytes:
        box = SealedBox.from_bytes(sealed)
        plaintext = gcm_decrypt(self._cipher, box.nonce, box.ciphertext,
                                box.tag, aad)
        expected = prf(self._mac_key, aad, plaintext)[:NONCE_SIZE]
        if expected != box.nonce:
            raise CryptoError("deterministic nonce mismatch")
        return plaintext

    def token(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """The deterministic ciphertext usable as an equality-search token."""
        return self.encrypt(plaintext, aad)


def seal_value(envelope: Aead | Deterministic, value: Value,
               aad: bytes = b"") -> bytes:
    """Encode a scalar field value canonically, then encrypt it."""
    return envelope.encrypt(encode_value(value), aad)


def open_value(envelope: Aead | Deterministic, sealed: bytes,
               aad: bytes = b"") -> Value:
    """Decrypt and decode a value sealed with :func:`seal_value`."""
    return decode_value(envelope.decrypt(sealed, aad))
