"""Number-theoretic building blocks for the public-key schemes.

Implements modular arithmetic helpers, Miller–Rabin primality testing and
prime generation on top of Python big integers.  These back the RSA
(:mod:`repro.crypto.rsa`), Paillier (:mod:`repro.crypto.paillier`) and
ElGamal (:mod:`repro.crypto.elgamal`) implementations.
"""

from __future__ import annotations

import secrets
from typing import Callable

from repro.errors import CryptoError

# Small primes used to cheaply reject composite candidates before the more
# expensive Miller-Rabin rounds run.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
    307, 311, 313, 317, 331, 337, 347, 349,
]

RandBelow = Callable[[int], int]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def invmod(a: int, n: int) -> int:
    """Return the inverse of ``a`` modulo ``n``.

    Raises :class:`CryptoError` when ``gcd(a, n) != 1``.
    """
    g, x, _ = egcd(a % n, n)
    if g != 1:
        raise CryptoError(f"{a} is not invertible modulo {n}")
    return x % n


def crt_pair(r1: int, n1: int, r2: int, n2: int) -> int:
    """Chinese remainder for two coprime moduli.

    Return the unique ``x`` modulo ``n1*n2`` with ``x % n1 == r1`` and
    ``x % n2 == r2``.
    """
    m1 = invmod(n2, n1)
    m2 = invmod(n1, n2)
    return (r1 * n2 * m1 + r2 * n1 * m2) % (n1 * n2)


def lcm(a: int, b: int) -> int:
    g, _, _ = egcd(a, b)
    return a // g * b


def is_probable_prime(n: int, rounds: int = 40,
                      randbelow: RandBelow | None = None) -> bool:
    """Miller–Rabin primality test.

    With 40 random rounds the probability of accepting a composite is
    below 2**-80, the standard choice for cryptographic prime generation.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    randbelow = randbelow or secrets.randbelow
    # Write n - 1 as d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = randbelow(n - 3) + 2  # uniform in [2, n - 2]
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def random_bits(bits: int, randbelow: RandBelow | None = None) -> int:
    """Return a uniform integer with exactly ``bits`` bits (MSB set)."""
    if bits < 2:
        raise CryptoError("need at least 2 bits")
    randbelow = randbelow or secrets.randbelow
    return (1 << (bits - 1)) | randbelow(1 << (bits - 1))


def generate_prime(bits: int, randbelow: RandBelow | None = None) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    randbelow = randbelow or secrets.randbelow
    while True:
        candidate = random_bits(bits, randbelow) | 1  # force odd
        if is_probable_prime(candidate, randbelow=randbelow):
            return candidate


def generate_safe_prime(bits: int,
                        randbelow: RandBelow | None = None) -> int:
    """Generate a safe prime ``p`` (``(p - 1) / 2`` is also prime).

    Used by ElGamal so that the subgroup structure is known.  Safe-prime
    generation is slow; keep ``bits`` modest in tests.
    """
    randbelow = randbelow or secrets.randbelow
    while True:
        q = generate_prime(bits - 1, randbelow)
        p = 2 * q + 1
        if is_probable_prime(p, randbelow=randbelow):
            return p


def generate_distinct_primes(bits: int, count: int = 2,
                             randbelow: RandBelow | None = None) -> list[int]:
    """Generate ``count`` distinct primes of ``bits`` bits each."""
    primes: list[int] = []
    while len(primes) < count:
        p = generate_prime(bits, randbelow)
        if p not in primes:
            primes.append(p)
    return primes


def int_to_bytes(n: int, length: int | None = None) -> bytes:
    """Big-endian encoding of a non-negative integer.

    When ``length`` is omitted the minimal number of bytes is used
    (``b"\\x00"`` for zero).
    """
    if n < 0:
        raise CryptoError("cannot encode negative integer")
    if length is None:
        length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")
