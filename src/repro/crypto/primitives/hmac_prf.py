"""Keyed hashing: PRF, HKDF and pseudorandom generation.

HMAC-SHA256 serves as the pseudorandom function underlying every searchable
encryption tactic (token derivation, label derivation, per-keyword keys)
and as the extract/expand core of HKDF (RFC 5869), which the key
management subsystem uses to derive per-field, per-tactic keys from a
master key.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError

DIGEST_SIZE = hashlib.sha256().digest_size  # 32


def prf(key: bytes, *parts: bytes) -> bytes:
    """HMAC-SHA256 PRF over the unambiguous concatenation of ``parts``.

    Each part is length-prefixed so that ``prf(k, b"ab", b"c")`` and
    ``prf(k, b"a", b"bc")`` differ.
    """
    if not key:
        raise CryptoError("PRF key must be non-empty")
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(len(part).to_bytes(8, "big"))
        mac.update(part)
    return mac.digest()


def prf_int(key: bytes, *parts: bytes, bits: int = 64) -> int:
    """PRF output truncated to a ``bits``-bit non-negative integer."""
    if bits < 1 or bits > 8 * DIGEST_SIZE:
        raise CryptoError("bits out of range for a single PRF block")
    value = int.from_bytes(prf(key, *parts), "big")
    return value >> (8 * DIGEST_SIZE - bits)


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    return hmac.new(salt or bytes(DIGEST_SIZE), ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    if length > 255 * DIGEST_SIZE:
        raise CryptoError("HKDF output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            prk, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, info: bytes, length: int = 32,
         salt: bytes = b"") -> bytes:
    """RFC 5869 HKDF-SHA256 (extract then expand)."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)


def prg(seed: bytes, length: int, label: bytes = b"prg") -> bytes:
    """Deterministic pseudorandom byte stream expanded from ``seed``.

    Counter-mode HMAC expansion; used wherever a tactic needs many
    pseudorandom bytes from one PRF output (e.g. OPE coin streams).
    """
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += prf(seed, label, counter.to_bytes(8, "big"))
        counter += 1
    return bytes(out[:length])


def hash_bytes(*parts: bytes) -> bytes:
    """Plain SHA-256 over length-prefixed parts (collision-resistant id)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(8, "big"))
        digest.update(part)
    return digest.digest()
