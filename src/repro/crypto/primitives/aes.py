"""Pure-Python AES block cipher (FIPS 197).

The paper's prototype uses Bouncy Castle for AES; this repository is
offline and dependency-free, so the block cipher is implemented from
scratch.  Encryption uses the classic 32-bit T-table formulation, which is
the fastest arrangement available to pure Python; decryption uses the
equivalent inverse tables.  Both are verified against the FIPS 197 and
NIST SP 800-38A test vectors in ``tests/crypto/test_aes.py``.

Only the raw block transform lives here; modes of operation are in
:mod:`repro.crypto.primitives.modes`.
"""

from __future__ import annotations

from repro.errors import CryptoError

BLOCK_SIZE = 16

# ---------------------------------------------------------------------------
# Table generation (runs once at import time).
# ---------------------------------------------------------------------------


def _build_sbox() -> tuple[list[int], list[int]]:
    """Build the AES S-box from the GF(2^8) inverse + affine transform."""
    # Exp/log tables over GF(2^8) with generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 (x ^= xtime(x))
        xt = x << 1
        if xt & 0x100:
            xt ^= 0x11B
        x ^= xt
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = exp[255 - log[value]] if value else 0
        # Affine transformation over GF(2).
        s = inv
        result = inv
        for _ in range(4):
            s = ((s << 1) | (s >> 7)) & 0xFF
            result ^= s
        result ^= 0x63
        sbox[value] = result
        inv_sbox[result] = value
    return sbox, inv_sbox


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


SBOX, INV_SBOX = _build_sbox()

# Encryption T-tables: T0[x] = (S[x]*2, S[x], S[x], S[x]*3) packed big-endian;
# T1..T3 are byte rotations of T0.
_T0 = []
for _x in range(256):
    _s = SBOX[_x]
    _T0.append(
        (_gf_mul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gf_mul(_s, 3)
    )
_T1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _T0]
_T2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in _T0]
_T3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in _T0]

# Decryption tables: U0[x] = (Si[x]*14, Si[x]*9, Si[x]*13, Si[x]*11).
_U0 = []
for _x in range(256):
    _s = INV_SBOX[_x]
    _U0.append(
        (_gf_mul(_s, 14) << 24)
        | (_gf_mul(_s, 9) << 16)
        | (_gf_mul(_s, 13) << 8)
        | _gf_mul(_s, 11)
    )
_U1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _U0]
_U2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in _U0]
_U3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in _U0]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D]

_ROUNDS_BY_KEYLEN = {16: 10, 24: 12, 32: 14}


def _expand_key(key: bytes) -> list[int]:
    """AES key schedule: return the round keys as 32-bit words."""
    nk = len(key) // 4
    rounds = _ROUNDS_BY_KEYLEN[len(key)]
    words = [int.from_bytes(key[4 * i:4 * i + 4], "big") for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = words[i - 1]
        if i % nk == 0:
            # RotWord + SubWord + Rcon.
            temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
            temp = (
                (SBOX[(temp >> 24) & 0xFF] << 24)
                | (SBOX[(temp >> 16) & 0xFF] << 16)
                | (SBOX[(temp >> 8) & 0xFF] << 8)
                | SBOX[temp & 0xFF]
            )
            temp ^= _RCON[i // nk - 1] << 24
        elif nk > 6 and i % nk == 4:
            temp = (
                (SBOX[(temp >> 24) & 0xFF] << 24)
                | (SBOX[(temp >> 16) & 0xFF] << 16)
                | (SBOX[(temp >> 8) & 0xFF] << 8)
                | SBOX[temp & 0xFF]
            )
        words.append(words[i - nk] ^ temp)
    return words


def _invert_round_keys(words: list[int], rounds: int) -> list[int]:
    """Transform encryption round keys for the equivalent inverse cipher."""
    inv = list(reversed([words[4 * r:4 * r + 4] for r in range(rounds + 1)]))
    flat = [w for group in inv for w in group]
    # Apply InvMixColumns to all round keys except the first and last.
    for i in range(4, 4 * rounds):
        w = flat[i]
        flat[i] = (
            _U0[SBOX[(w >> 24) & 0xFF]]
            ^ _U1[SBOX[(w >> 16) & 0xFF]]
            ^ _U2[SBOX[(w >> 8) & 0xFF]]
            ^ _U3[SBOX[w & 0xFF]]
        )
    return flat


class AES:
    """Raw AES block transform for 128/192/256-bit keys.

    >>> cipher = AES(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEYLEN:
            raise CryptoError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self.rounds = _ROUNDS_BY_KEYLEN[len(key)]
        self._ek = _expand_key(key)
        self._dk = _invert_round_keys(self._ek, self.rounds)

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES block must be 16 bytes")
        ek = self._ek
        s0 = int.from_bytes(block[0:4], "big") ^ ek[0]
        s1 = int.from_bytes(block[4:8], "big") ^ ek[1]
        s2 = int.from_bytes(block[8:12], "big") ^ ek[2]
        s3 = int.from_bytes(block[12:16], "big") ^ ek[3]
        t0 = t1 = t2 = t3 = 0
        for r in range(1, self.rounds):
            k = 4 * r
            t0 = (_T0[(s0 >> 24) & 0xFF] ^ _T1[(s1 >> 16) & 0xFF]
                  ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ ek[k])
            t1 = (_T0[(s1 >> 24) & 0xFF] ^ _T1[(s2 >> 16) & 0xFF]
                  ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ ek[k + 1])
            t2 = (_T0[(s2 >> 24) & 0xFF] ^ _T1[(s3 >> 16) & 0xFF]
                  ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ ek[k + 2])
            t3 = (_T0[(s3 >> 24) & 0xFF] ^ _T1[(s0 >> 16) & 0xFF]
                  ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ ek[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = 4 * self.rounds
        o0 = ((SBOX[(s0 >> 24) & 0xFF] << 24) | (SBOX[(s1 >> 16) & 0xFF] << 16)
              | (SBOX[(s2 >> 8) & 0xFF] << 8) | SBOX[s3 & 0xFF]) ^ ek[k]
        o1 = ((SBOX[(s1 >> 24) & 0xFF] << 24) | (SBOX[(s2 >> 16) & 0xFF] << 16)
              | (SBOX[(s3 >> 8) & 0xFF] << 8) | SBOX[s0 & 0xFF]) ^ ek[k + 1]
        o2 = ((SBOX[(s2 >> 24) & 0xFF] << 24) | (SBOX[(s3 >> 16) & 0xFF] << 16)
              | (SBOX[(s0 >> 8) & 0xFF] << 8) | SBOX[s1 & 0xFF]) ^ ek[k + 2]
        o3 = ((SBOX[(s3 >> 24) & 0xFF] << 24) | (SBOX[(s0 >> 16) & 0xFF] << 16)
              | (SBOX[(s1 >> 8) & 0xFF] << 8) | SBOX[s2 & 0xFF]) ^ ek[k + 3]
        return b"".join(o.to_bytes(4, "big") for o in (o0, o1, o2, o3))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES block must be 16 bytes")
        dk = self._dk
        s0 = int.from_bytes(block[0:4], "big") ^ dk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ dk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ dk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ dk[3]
        for r in range(1, self.rounds):
            k = 4 * r
            t0 = (_U0[(s0 >> 24) & 0xFF] ^ _U1[(s3 >> 16) & 0xFF]
                  ^ _U2[(s2 >> 8) & 0xFF] ^ _U3[s1 & 0xFF] ^ dk[k])
            t1 = (_U0[(s1 >> 24) & 0xFF] ^ _U1[(s0 >> 16) & 0xFF]
                  ^ _U2[(s3 >> 8) & 0xFF] ^ _U3[s2 & 0xFF] ^ dk[k + 1])
            t2 = (_U0[(s2 >> 24) & 0xFF] ^ _U1[(s1 >> 16) & 0xFF]
                  ^ _U2[(s0 >> 8) & 0xFF] ^ _U3[s3 & 0xFF] ^ dk[k + 2])
            t3 = (_U0[(s3 >> 24) & 0xFF] ^ _U1[(s2 >> 16) & 0xFF]
                  ^ _U2[(s1 >> 8) & 0xFF] ^ _U3[s0 & 0xFF] ^ dk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = 4 * self.rounds
        isb = INV_SBOX
        o0 = ((isb[(s0 >> 24) & 0xFF] << 24) | (isb[(s3 >> 16) & 0xFF] << 16)
              | (isb[(s2 >> 8) & 0xFF] << 8) | isb[s1 & 0xFF]) ^ dk[k]
        o1 = ((isb[(s1 >> 24) & 0xFF] << 24) | (isb[(s0 >> 16) & 0xFF] << 16)
              | (isb[(s3 >> 8) & 0xFF] << 8) | isb[s2 & 0xFF]) ^ dk[k + 1]
        o2 = ((isb[(s2 >> 24) & 0xFF] << 24) | (isb[(s1 >> 16) & 0xFF] << 16)
              | (isb[(s0 >> 8) & 0xFF] << 8) | isb[s3 & 0xFF]) ^ dk[k + 2]
        o3 = ((isb[(s3 >> 24) & 0xFF] << 24) | (isb[(s2 >> 16) & 0xFF] << 16)
              | (isb[(s1 >> 8) & 0xFF] << 8) | isb[s0 & 0xFF]) ^ dk[k + 3]
        return b"".join(o.to_bytes(4, "big") for o in (o0, o1, o2, o3))
