"""Randomness abstraction.

Production code paths draw from the operating system CSPRNG via
:mod:`secrets`; tests and reproducible benchmarks inject a
:class:`DeterministicRandom` seeded from a PRF stream so that every run of
an experiment sees the same coins without weakening the default.
"""

from __future__ import annotations

import secrets

from repro.crypto.primitives.hmac_prf import prf


class SystemRandom:
    """CSPRNG-backed source (the default)."""

    def token_bytes(self, length: int) -> bytes:
        return secrets.token_bytes(length)

    def randbelow(self, upper: int) -> int:
        return secrets.randbelow(upper)


class DeterministicRandom:
    """PRF-counter stream cipher as a reproducible randomness source.

    Not a security weakening in tests only: instances are constructed
    explicitly and never used by default.
    """

    def __init__(self, seed: bytes | str):
        if isinstance(seed, str):
            seed = seed.encode()
        self._seed = seed or b"\x00"
        self._counter = 0
        self._buffer = b""

    def token_bytes(self, length: int) -> bytes:
        while len(self._buffer) < length:
            self._buffer += prf(
                self._seed, b"drbg", self._counter.to_bytes(8, "big")
            )
            self._counter += 1
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    def randbelow(self, upper: int) -> int:
        if upper <= 0:
            raise ValueError("upper must be positive")
        nbytes = (upper.bit_length() + 7) // 8 + 8  # oversample: bias < 2^-64
        return int.from_bytes(self.token_bytes(nbytes), "big") % upper


RandomSource = SystemRandom | DeterministicRandom

_default = SystemRandom()


def default_random() -> SystemRandom:
    return _default
