"""Block cipher modes of operation: CTR, CBC and GCM.

Verified against NIST SP 800-38A (CTR, CBC) and the GCM specification test
vectors in ``tests/crypto/test_modes.py``.  GCM is the authenticated mode
the paper's prototype uses (AES/GCM via Bouncy Castle); CTR and CBC are
kept as substrates for deterministic (SIV-style) encryption.
"""

from __future__ import annotations

import hmac as _hmac

from repro.crypto.primitives.aes import AES, BLOCK_SIZE
from repro.errors import CryptoError, IntegrityError


def xor_bytes(a: bytes, b: bytes) -> bytes:
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    pad = block_size - len(data) % block_size
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    if not data or len(data) % block_size:
        raise CryptoError("invalid padded length")
    pad = data[-1]
    if pad < 1 or pad > block_size or data[-pad:] != bytes([pad]) * pad:
        raise CryptoError("invalid PKCS#7 padding")
    return data[:-pad]


def ctr_transform(cipher: AES, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` in CTR mode (the transform is symmetric).

    ``nonce`` is the full 16-byte initial counter block; it is incremented
    as a big-endian 128-bit integer.
    """
    if len(nonce) != BLOCK_SIZE:
        raise CryptoError("CTR nonce must be a 16-byte counter block")
    counter = int.from_bytes(nonce, "big")
    out = bytearray()
    encrypt_block = cipher.encrypt_block
    for offset in range(0, len(data), BLOCK_SIZE):
        keystream = encrypt_block(counter.to_bytes(BLOCK_SIZE, "big"))
        chunk = data[offset:offset + BLOCK_SIZE]
        out += xor_bytes(chunk, keystream[: len(chunk)])
        counter = (counter + 1) % (1 << 128)
    return bytes(out)


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    if len(iv) != BLOCK_SIZE:
        raise CryptoError("CBC IV must be 16 bytes")
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = xor_bytes(padded[offset:offset + BLOCK_SIZE], prev)
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    if len(iv) != BLOCK_SIZE:
        raise CryptoError("CBC IV must be 16 bytes")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise CryptoError("CBC ciphertext length must be a block multiple")
    out = bytearray()
    prev = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset:offset + BLOCK_SIZE]
        out += xor_bytes(cipher.decrypt_block(block), prev)
        prev = block
    return pkcs7_unpad(bytes(out))


# ---------------------------------------------------------------------------
# GCM
# ---------------------------------------------------------------------------

_R = 0xE1 << 120  # GCM reduction polynomial as a 128-bit constant


def _gf128_mul(x: int, y: int) -> int:
    """Multiply in GF(2^128) with the GCM bit ordering."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _shift8_slow(z: int) -> int:
    """Multiply ``z`` by the field element x^8 (GCM bit ordering)."""
    for _ in range(8):
        if z & 1:
            z = (z >> 1) ^ _R
        else:
            z >>= 1
    return z


# Reduction of the 8 low-order bits that fall off when shifting by a byte:
# _shift8(z) == (z >> 8) ^ _SHIFT8_TABLE[z & 0xFF] (the map is GF(2)-linear).
_SHIFT8_TABLE = [_shift8_slow(b) for b in range(256)]


class _GHash:
    """GHASH over GF(2^128) with an 8-bit lookup table for speed.

    ``table[b]`` stores the product (b placed in the top byte of the
    block) * H; a block multiplication is then a 16-step byte-wise Horner
    evaluation with constant-time per-byte shifts.
    """

    def __init__(self, h: bytes):
        h_int = int.from_bytes(h, "big")
        self._table = table = [0] * 256
        for bit in range(8):
            value = _gf128_mul(1 << (127 - bit), h_int)
            mask = 0x80 >> bit
            for b in range(256):
                if b & mask:
                    table[b] ^= value

    def _mul_h(self, x: int) -> int:
        table = self._table
        shift = _SHIFT8_TABLE
        z = 0
        for i in range(15, -1, -1):
            z = (z >> 8) ^ shift[z & 0xFF]
            z ^= table[(x >> (120 - 8 * i)) & 0xFF]
        return z

    def digest(self, data: bytes) -> int:
        if len(data) % 16:
            raise CryptoError("GHASH input must be 16-byte aligned")
        y = 0
        mul_h = self._mul_h
        for offset in range(0, len(data), 16):
            block = int.from_bytes(data[offset:offset + 16], "big")
            y = mul_h(y ^ block)
        return y


def _gcm_pad(data: bytes) -> bytes:
    rem = len(data) % 16
    return data + bytes(16 - rem) if rem else data


def _ghash_for(cipher: AES) -> _GHash:
    """Per-cipher GHASH instance (the table depends only on the key)."""
    ghash = getattr(cipher, "_ghash_cache", None)
    if ghash is None:
        ghash = _GHash(cipher.encrypt_block(bytes(16)))
        cipher._ghash_cache = ghash  # noqa: SLF001 - deliberate memo
    return ghash


def gcm_encrypt(cipher: AES, nonce: bytes, plaintext: bytes,
                aad: bytes = b"", tag_length: int = 16) -> tuple[bytes, bytes]:
    """AES-GCM encryption. Returns ``(ciphertext, tag)``.

    ``nonce`` is the recommended 12-byte IV; other lengths follow the GCM
    GHASH-based derivation.
    """
    ghash = _ghash_for(cipher)
    if len(nonce) == 12:
        j0 = nonce + b"\x00\x00\x00\x01"
    else:
        length_block = (8 * len(nonce)).to_bytes(16, "big")
        j0 = int.to_bytes(ghash.digest(_gcm_pad(nonce) + length_block),
                          16, "big")
    counter = (int.from_bytes(j0, "big") + 1) % (1 << 128)
    ciphertext = ctr_transform(cipher, counter.to_bytes(16, "big"), plaintext)
    lengths = (8 * len(aad)).to_bytes(8, "big") + (
        8 * len(ciphertext)
    ).to_bytes(8, "big")
    s = ghash.digest(_gcm_pad(aad) + _gcm_pad(ciphertext) + lengths)
    full_tag = xor_bytes(cipher.encrypt_block(j0), s.to_bytes(16, "big"))
    return ciphertext, full_tag[:tag_length]


def gcm_decrypt(cipher: AES, nonce: bytes, ciphertext: bytes, tag: bytes,
                aad: bytes = b"") -> bytes:
    """AES-GCM decryption; raises :class:`IntegrityError` on a bad tag."""
    ghash = _ghash_for(cipher)
    if len(nonce) == 12:
        j0 = nonce + b"\x00\x00\x00\x01"
    else:
        length_block = (8 * len(nonce)).to_bytes(16, "big")
        j0 = int.to_bytes(ghash.digest(_gcm_pad(nonce) + length_block),
                          16, "big")
    lengths = (8 * len(aad)).to_bytes(8, "big") + (
        8 * len(ciphertext)
    ).to_bytes(8, "big")
    s = ghash.digest(_gcm_pad(aad) + _gcm_pad(ciphertext) + lengths)
    full_tag = xor_bytes(cipher.encrypt_block(j0), s.to_bytes(16, "big"))
    if not _hmac.compare_digest(full_tag[: len(tag)], tag):
        raise IntegrityError("GCM tag verification failed")
    counter = (int.from_bytes(j0, "big") + 1) % (1 << 128)
    return ctr_transform(cipher, counter.to_bytes(16, "big"), ciphertext)
