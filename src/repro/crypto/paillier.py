"""The Paillier partially homomorphic cryptosystem (Paillier, 1999).

Replaces the Javallier library the paper's prototype used.  Supports:

* additive homomorphism: ``E(a) * E(b) = E(a + b)``;
* scalar multiplication: ``E(a) ** k = E(a * k)``;
* signed integers (two's-complement style embedding in Z_n);
* fixed-point reals via :class:`FixedPointCodec`, which the Paillier
  aggregate tactic uses to average heart rates / glucose values.

The simplified variant with generator ``g = n + 1`` is implemented, which
reduces encryption to one modular exponentiation of the random mask.
"""

from __future__ import annotations

import queue
import secrets
import threading
from dataclasses import dataclass
from functools import cached_property

from repro.crypto.kernels.modexp import FixedBaseTable
from repro.crypto.primitives.numbers import (
    RandBelow,
    egcd,
    generate_distinct_primes,
    invmod,
    lcm,
)
from repro.errors import CryptoError

DEFAULT_KEY_BITS = 1024


@dataclass(frozen=True)
class PaillierPublicKey:
    n: int

    # Every homomorphic operation reduces mod n^2; caching the square on
    # the key object (equality/hash still use ``n`` alone) spares one
    # 2048-bit multiplication per ciphertext operation.
    @cached_property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def max_plaintext(self) -> int:
        """Largest magnitude representable after the signed embedding."""
        return (self.n - 1) // 3


@dataclass(frozen=True)
class PaillierPrivateKey:
    public: PaillierPublicKey
    lam: int  # lcm(p-1, q-1)
    mu: int   # (L(g^lam mod n^2))^-1 mod n
    #: The factors, when known (0 on keys loaded without them): decrypt
    #: then runs two half-size exponentiations under CRT, ~2x faster,
    #: with identical outputs.
    p: int = 0
    q: int = 0


@dataclass(frozen=True)
class Ciphertext:
    """A Paillier ciphertext bound to its public key.

    Arithmetic operators implement the homomorphic operations so calling
    code reads like plaintext arithmetic: ``e1 + e2``, ``e1 * 3``.
    """

    public: PaillierPublicKey
    value: int

    def __add__(self, other: "Ciphertext") -> "Ciphertext":
        if not isinstance(other, Ciphertext):
            return NotImplemented
        if other.public != self.public:
            raise CryptoError("cannot add ciphertexts under different keys")
        return Ciphertext(
            self.public, self.value * other.value % self.public.n_squared
        )

    def add_plain(self, scalar: int) -> "Ciphertext":
        # With g = n + 1, g^m = 1 + m*n (mod n^2): the closed form costs
        # one multiplication where the general pow() walked ~1.5 * bits
        # square-and-multiply steps for the same result.
        n = self.public.n
        n_sq = self.public.n_squared
        g_m = (1 + scalar % n * n) % n_sq
        return Ciphertext(
            self.public, self.value * g_m % n_sq
        )

    def __mul__(self, scalar: int) -> "Ciphertext":
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar < 0:
            inverted = invmod(self.value, self.public.n_squared)
            return Ciphertext(
                self.public,
                pow(inverted, -scalar, self.public.n_squared),
            )
        return Ciphertext(
            self.public, pow(self.value, scalar, self.public.n_squared)
        )

    __rmul__ = __mul__

    def to_int(self) -> int:
        return self.value


def generate_keypair(bits: int = DEFAULT_KEY_BITS,
                     randbelow: RandBelow | None = None) -> PaillierPrivateKey:
    """Generate a Paillier keypair with an (approximately) ``bits``-bit n."""
    if bits < 64:
        raise CryptoError("key too small")
    while True:
        p, q = generate_distinct_primes(bits // 2, 2, randbelow)
        if egcd(p * q, (p - 1) * (q - 1))[0] != 1:
            continue
        n = p * q
        public = PaillierPublicKey(n)
        lam = lcm(p - 1, q - 1)
        # With g = n + 1: L(g^lam mod n^2) = lam mod n, so mu = lam^-1.
        mu = invmod(lam, n)
        return PaillierPrivateKey(public=public, lam=lam, mu=mu, p=p, q=q)


def _embed_signed(public: PaillierPublicKey, message: int) -> int:
    if abs(message) > public.max_plaintext:
        raise CryptoError("plaintext magnitude exceeds key capacity")
    return message % public.n


def _unembed_signed(public: PaillierPublicKey, residue: int) -> int:
    # Values in the upper third of Z_n decode as negatives.
    if residue > public.n - public.max_plaintext - 1:
        return residue - public.n
    return residue


def obfuscator(public: PaillierPublicKey,
               randbelow: RandBelow | None = None) -> int:
    """One random mask ``r^n mod n^2`` — the expensive half of encrypt."""
    randbelow = randbelow or secrets.randbelow
    n = public.n
    while True:
        r = randbelow(n - 1) + 1
        if egcd(r, n)[0] == 1:
            break
    return pow(r, n, public.n_squared)


def encrypt_with_mask(public: PaillierPublicKey, message: int,
                      mask: int) -> Ciphertext:
    """Encrypt using a precomputed obfuscator mask: a single modmul.

    With ``g = n + 1``, ``g^m = 1 + m*n (mod n^2)``, so given
    ``mask = r^n mod n^2`` the ciphertext costs one modular
    multiplication — the whole point of :class:`ObfuscatorPool`.
    """
    m = _embed_signed(public, message)
    n_sq = public.n_squared
    return Ciphertext(public, (1 + m * public.n) % n_sq * mask % n_sq)


def encrypt(public: PaillierPublicKey, message: int,
            randbelow: RandBelow | None = None) -> Ciphertext:
    """Encrypt a signed integer."""
    return encrypt_with_mask(public, message,
                             obfuscator(public, randbelow))


class FixedBaseObfuscator:
    """Windowed fixed-base generation of obfuscator masks.

    At setup one cold mask ``β = r₀^n mod n²`` is drawn; fresh masks are
    then ``β^k`` for random ``k < n`` — i.e. effective randomness
    ``r₀^k``, produced with ~bits/window modmuls through the
    :class:`~repro.crypto.kernels.modexp.FixedBaseTable` instead of a
    full exponentiation.  This is the classic amortised-randomness
    trade (masks range over the subgroup ⟨r₀⟩ rather than all of Z*_n);
    it is opt-in via ``CryptoConfig.precompute`` and never the default.
    """

    def __init__(self, public: PaillierPublicKey, window_bits: int = 5,
                 randbelow: RandBelow | None = None):
        self._public = public
        self._randbelow = randbelow or secrets.randbelow
        beta = obfuscator(public, randbelow)
        self._table = FixedBaseTable(
            beta, public.n_squared, public.n.bit_length(), window_bits
        )

    def mask(self) -> int:
        exponent = self._randbelow(self._public.n - 1) + 1
        return self._table.pow(exponent)

    def encrypt(self, message: int) -> Ciphertext:
        return encrypt_with_mask(self._public, message, self.mask())

    @property
    def memory_bytes(self) -> int:
        return self._table.memory_bytes


class ObfuscatorPool:
    """Background precomputation of encryption masks ``r^n mod n^2``.

    Paillier encryption splits into a plaintext-independent modular
    exponentiation (the obfuscator) and one modmul.  The pool runs the
    exponentiations on a daemon thread while the gateway is busy with
    other per-field crypto, so the aggregate write path usually finds a
    mask ready and pays only the modmul.  When the queue is empty the
    mask is computed inline — the pool never changes the ciphertext
    distribution, only when the work happens.

    An optional ``source`` callable replaces the cold per-mask
    exponentiation (the crypto kernel layer plugs a
    :class:`FixedBaseObfuscator` in here, making refills ~7x cheaper).
    """

    def __init__(self, public: PaillierPublicKey, size: int = 8,
                 randbelow: RandBelow | None = None,
                 source=None):
        if size < 1:
            raise CryptoError("obfuscator pool size must be positive")
        self._public = public
        self._randbelow = randbelow
        self._source = source or (
            lambda: obfuscator(self._public, self._randbelow)
        )
        self._queue: queue.Queue[int] = queue.Queue(maxsize=size)
        self._thread: threading.Thread | None = None
        self._stopped = False
        self._lock = threading.Lock()

    # -- background refill -------------------------------------------------------

    def _ensure_thread(self) -> None:
        if self._thread is not None or self._stopped:
            return
        with self._lock:
            if self._thread is None and not self._stopped:
                thread = threading.Thread(
                    target=self._refill, daemon=True,
                    name="paillier-obfuscator",
                )
                self._thread = thread
                thread.start()

    def _refill(self) -> None:
        while not self._stopped:
            mask = self._source()
            while not self._stopped:
                try:
                    self._queue.put(mask, timeout=0.2)
                    break
                except queue.Full:
                    continue

    # -- consumption ----------------------------------------------------------------

    def mask(self) -> int:
        """A fresh mask: precomputed when available, inline otherwise."""
        self._ensure_thread()
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            return self._source()

    def encrypt(self, message: int) -> Ciphertext:
        """Encrypt with a pooled mask — one modmul on the hot path."""
        return encrypt_with_mask(self._public, message, self.mask())

    def available(self) -> int:
        return self._queue.qsize()

    def close(self) -> None:
        """Stop the refill thread (idempotent; masks left queued drain)."""
        self._stopped = True


def _crt_power(value: int, lam: int, p: int, q: int) -> int:
    """``value^lam mod (p*q)^2`` via two half-size exponentiations.

    Exponent reduction mod λ(p²) = p(p-1) is only valid for units, so
    callers must ensure gcd(value, p*q) == 1.
    """
    p_sq = p * p
    q_sq = q * q
    u_p = pow(value % p_sq, lam % (p * (p - 1)), p_sq)
    u_q = pow(value % q_sq, lam % (q * (q - 1)), q_sq)
    return u_p + p_sq * ((u_q - u_p) * invmod(p_sq, q_sq) % q_sq)


def decrypt(private: PaillierPrivateKey, ciphertext: Ciphertext) -> int:
    public = private.public
    if ciphertext.public != public:
        raise CryptoError("ciphertext was produced under a different key")
    n = public.n
    if private.p and private.q and egcd(ciphertext.value, n)[0] == 1:
        u = _crt_power(ciphertext.value, private.lam, private.p, private.q)
    else:
        u = pow(ciphertext.value, private.lam, public.n_squared)
    l_value = (u - 1) // n
    residue = l_value * private.mu % n
    return _unembed_signed(public, residue)


class FixedPointCodec:
    """Fixed-point embedding of reals into the Paillier plaintext space.

    ``scale`` decimal digits of precision are kept.  Averages computed over
    homomorphic sums divide the decoded sum by the count at the gateway —
    exactly the AggFunctionResolution step of the paper's SPI (Table 1).
    """

    def __init__(self, scale: int = 6):
        if scale < 0 or scale > 18:
            raise CryptoError("scale out of supported range")
        self.factor = 10 ** scale

    def encode(self, value: float | int) -> int:
        return round(value * self.factor)

    def decode(self, encoded: int) -> float:
        return encoded / self.factor

    def decode_mean(self, encoded_sum: int, count: int) -> float:
        if count <= 0:
            raise CryptoError("mean over empty population")
        return encoded_sum / self.factor / count
