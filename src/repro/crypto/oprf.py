"""Diffie–Hellman OPRF (2HashDH style) over a safe-prime group.

The paper's related work cites Ionic's encrypted search "with an advanced
query construction mechanism based on EC-OPRF".  This module provides the
same functionality over our safe-prime group instead of an elliptic
curve: a server holding key ``k`` evaluates ``F_k(x) = H2(x, H1(x)^k)``
for a client, learning nothing about ``x`` (the client sends only a
blinded group element) while the client learns nothing about ``k``.

Protocol (client c, server s, group of prime order q inside Z_p*):

1. c: ``h = HashToGroup(x)``; pick random ``r``; send ``a = h^r``.
2. s: return ``b = a^k``.
3. c: ``y = b^(r^-1 mod q) = h^k``; output ``H2(x, y)``.

Used by the blind-index tactic: equality tokens become OPRF outputs whose
key lives inside the (simulated) HSM, so even a fully compromised gateway
cannot compute tokens offline — every evaluation is a mediated, auditable
HSM call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.primitives.hmac_prf import hash_bytes, prf
from repro.crypto.primitives.numbers import (
    generate_safe_prime,
    invmod,
)
from repro.crypto.primitives.random import RandomSource, default_random
from repro.errors import CryptoError

DEFAULT_GROUP_BITS = 512


@dataclass(frozen=True)
class OprfGroup:
    """A safe-prime group: elements are quadratic residues mod p."""

    p: int

    @property
    def q(self) -> int:
        return (self.p - 1) // 2

    def hash_to_group(self, data: bytes) -> int:
        """Map bytes to a residue of unknown discrete log."""
        counter = 0
        while True:
            digest = prf(b"oprf-h2g", data, counter.to_bytes(4, "big"))
            candidate = int.from_bytes(digest * ((self.p.bit_length() // 256)
                                                 + 1), "big") % self.p
            element = pow(candidate, 2, self.p)  # force into QR subgroup
            if element not in (0, 1):
                return element
            counter += 1


def generate_group(bits: int = DEFAULT_GROUP_BITS,
                   randbelow=None) -> OprfGroup:
    return OprfGroup(generate_safe_prime(bits, randbelow))


def generate_key(group: OprfGroup,
                 rng: RandomSource | None = None) -> int:
    rng = rng or default_random()
    return rng.randbelow(group.q - 2) + 2


def evaluate_blinded(group: OprfGroup, key: int, blinded: int) -> int:
    """Server step: raise the blinded element to the key."""
    if not 1 < blinded < group.p:
        raise CryptoError("blinded element outside the group")
    return pow(blinded, key, group.p)


class OprfClient:
    """Client side: blinding, unblinding and output derivation."""

    def __init__(self, group: OprfGroup,
                 rng: RandomSource | None = None):
        self.group = group
        self._rng = rng or default_random()

    def blind(self, data: bytes) -> tuple[int, int]:
        """Return ``(state, blinded_element)``; keep ``state`` private."""
        r = self._rng.randbelow(self.group.q - 2) + 2
        element = self.group.hash_to_group(data)
        return r, pow(element, r, self.group.p)

    def finalize(self, data: bytes, state: int, evaluated: int) -> bytes:
        """Unblind the server response and derive the PRF output."""
        if not 1 < evaluated < self.group.p:
            raise CryptoError("evaluated element outside the group")
        r_inverse = invmod(state, self.group.q)
        y = pow(evaluated, r_inverse, self.group.p)
        length = (self.group.p.bit_length() + 7) // 8
        return hash_bytes(b"oprf-out", data, y.to_bytes(length, "big"))


def unblinded_evaluate(group: OprfGroup, key: int, data: bytes) -> bytes:
    """Direct evaluation with the key (reference for tests/audits)."""
    element = group.hash_to_group(data)
    y = pow(element, key, group.p)
    length = (group.p.bit_length() + 7) // 8
    return hash_bytes(b"oprf-out", data, y.to_bytes(length, "big"))
