"""Canonical byte encoding of field values.

Deterministic tactics (DET, SSE token derivation, OPE/ORE) need a stable,
injective mapping from application-level values to bytes: two equal values
must encode identically, and distinct values must never collide.  JSON is
unsuitable (key ordering, float formatting), so a small tagged binary codec
is used instead.
"""

from __future__ import annotations

import struct

from repro.errors import CryptoError

Value = None | bool | int | float | str | bytes

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"


def encode_value(value: Value) -> bytes:
    """Encode a scalar field value into canonical tagged bytes."""
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        length = max(1, (value.bit_length() + 8) // 8)  # room for sign
        return _TAG_INT + value.to_bytes(length, "big", signed=True)
    if isinstance(value, float):
        return _TAG_FLOAT + struct.pack(">d", value)
    if isinstance(value, str):
        return _TAG_STR + value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return _TAG_BYTES + bytes(value)
    raise CryptoError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: bytes) -> Value:
    """Inverse of :func:`encode_value`."""
    if not data:
        raise CryptoError("empty encoded value")
    tag, body = data[:1], data[1:]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return int.from_bytes(body, "big", signed=True)
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", body)[0]
    if tag == _TAG_STR:
        return body.decode("utf-8")
    if tag == _TAG_BYTES:
        return body
    raise CryptoError(f"unknown value tag {tag!r}")


def value_to_ordered_int(value: int | float, *, bits: int = 64) -> int:
    """Map a numeric value onto a non-negative order-preserving integer.

    OPE/ORE operate over an integer domain; signed integers and floats are
    mapped into ``[0, 2**bits)`` such that ``a < b`` iff ``map(a) < map(b)``
    across the mixed int/float domain (both are routed through the IEEE-754
    total order on doubles).
    """
    as_float = float(value)
    if as_float == 0.0:
        as_float = 0.0  # collapse -0.0 onto +0.0 (they compare equal)
    packed = struct.unpack(">Q", struct.pack(">d", as_float))[0]
    # IEEE-754 trick: setting the sign bit on non-negatives and inverting
    # all bits on negatives yields an unsigned order-preserving image.
    if packed >> 63:  # negative float: invert everything
        ordered = (1 << 64) - 1 - packed
    else:
        ordered = packed | (1 << 63)
    if bits < 64:
        ordered >>= 64 - bits
    elif bits > 64:
        ordered <<= bits - 64
    return ordered
