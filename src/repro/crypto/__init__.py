"""Cryptographic substrate of the DataBlinder reproduction.

Everything the paper's prototype obtained from Bouncy Castle, Javallier
and the Clusion building blocks is implemented here from scratch:

* :mod:`repro.crypto.primitives` -- AES, block modes (CTR/CBC/GCM),
  HMAC-SHA256 PRF, HKDF, prime generation and modular arithmetic.
* :mod:`repro.crypto.symmetric` -- AEAD (RND) and SIV-deterministic (DET)
  envelopes.
* :mod:`repro.crypto.rsa` -- RSA-OAEP and the raw trapdoor permutation
  (Sophos).
* :mod:`repro.crypto.paillier` -- additively homomorphic encryption
  (sum/average aggregates).
* :mod:`repro.crypto.elgamal` -- multiplicatively homomorphic encryption
  (extension tactic).
* :mod:`repro.crypto.ope` / :mod:`repro.crypto.ore` -- order-preserving /
  order-revealing encryption (range queries).
"""

from repro.crypto.encoding import (
    decode_value,
    encode_value,
    value_to_ordered_int,
)
from repro.crypto.symmetric import Aead, Deterministic, open_value, seal_value

__all__ = [
    "Aead",
    "Deterministic",
    "decode_value",
    "encode_value",
    "open_value",
    "seal_value",
    "value_to_ordered_int",
]
