"""The untrusted zone: cloud-side services.

A :class:`CloudZone` owns the cloud resources of the deployment view
(Fig. 3) — the document store ("MongoDB"), the KV secure-index store
("Redis") — and a :class:`repro.net.rpc.ServiceHost` exposing:

* ``admin`` — provisioning: create per-application stores, instantiate
  cloud tactic halves from the registry (the cloud side of the strategy
  pattern's dynamic loading).
* ``docs/<application>`` — encrypted-document CRUD.
* ``tactic/<application>/<field>/<tactic>`` — one service per provisioned
  cloud tactic instance.

The zone is transport-agnostic: wrap ``zone.host`` in an
:class:`repro.net.InProcTransport` for single-process runs or serve it
with :class:`repro.net.TcpRpcServer` for a real two-process deployment.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from repro.errors import TransportError
from repro.net.rpc import ServiceHost
from repro.spi.context import CloudTacticContext, service_name
from repro.stores.docstore import Document, DocumentStore
from repro.stores.inverted import InvertedIndex
from repro.stores.kv import KeyValueStore


class DocumentService:
    """Encrypted-document CRUD over one application's docstore.

    Plaintext (non-sensitive) string fields are additionally fed into an
    inverted text index (the Elasticsearch role), so applications get
    ranked full-text search over the data they chose *not* to protect —
    sensitive fields never reach the index by construction (they arrive
    as an opaque encrypted body).
    """

    def __init__(self, store: DocumentStore):
        self._store = store
        self._text_index = InvertedIndex()
        self._integrity = None

    def attach_integrity(self, tracker) -> None:
        """Enable proven reads (set by ``CloudZone.enable_integrity``)."""
        self._integrity = tracker

    def _index_text(self, document: Document) -> None:
        plain = document.get("plain") or {}
        text = " ".join(
            value for value in plain.values() if isinstance(value, str)
        )
        if text.strip():
            self._text_index.index(document["_id"], text)
        else:
            self._text_index.remove(document["_id"])

    def insert(self, document: Document) -> str:
        doc_id = self._store.insert(document)
        self._index_text(document)
        return doc_id

    def insert_many(self, documents: list[Document]) -> list[str]:
        """Bulk insert: one RPC for a whole batch of encrypted bodies."""
        return [self.insert(document) for document in documents]

    def get(self, doc_id: str) -> Document:
        return self._store.get(doc_id)

    def get_many(self, doc_ids: list[str]) -> list[Document]:
        return self._store.get_many(doc_ids)

    def get_proven(self, doc_id: str) -> Document:
        """Fetch one document with its Merkle inclusion proof.

        Fetch and proof are computed under the store lock so the proof
        is against the exact tree state the body was read from — a
        concurrent writer can never produce a false mismatch.
        """
        if self._integrity is None:
            raise TransportError("integrity is not enabled for this zone")
        with self._store._lock:  # noqa: SLF001 - fetch+prove atomically
            document = self._store.get(doc_id)
            return self._integrity.prove_document(doc_id, document)

    def get_many_proven(self, doc_ids: list[str]) -> list[Document]:
        """Bulk proven fetch; unknown ids are skipped like get_many."""
        if self._integrity is None:
            raise TransportError("integrity is not enabled for this zone")
        envelopes = []
        with self._store._lock:  # noqa: SLF001 - fetch+prove atomically
            for doc_id in doc_ids:
                if self._store.contains(doc_id):
                    document = self._store.get(doc_id)
                    envelopes.append(
                        self._integrity.prove_document(doc_id, document)
                    )
        return envelopes

    def replace(self, document: Document) -> None:
        self._store.replace(document)
        self._index_text(document)

    def delete(self, doc_id: str) -> bool:
        existed = self._store.delete(doc_id)
        if existed:
            self._text_index.remove(doc_id)
        return existed

    def count(self, query: Document | None = None) -> int:
        return self._store.count(query)

    def all_ids(self, schema: str | None = None) -> list[str]:
        if schema is None:
            return self._store.all_ids()
        return [d["_id"] for d in self._store.find({"schema": schema})]

    def find_plain(self, query: Document,
                   limit: int | None = None) -> list[str]:
        """Filter scan over plaintext (non-sensitive) sub-fields."""
        return [d["_id"] for d in self._store.find(query, limit=limit)]

    def find_text(self, query: str, limit: int = 10,
                  require_all: bool = False) -> list[tuple[str, float]]:
        """Ranked full-text search over plaintext string fields."""
        return [
            (hit.doc_id, hit.score)
            for hit in self._text_index.search(query, limit=limit,
                                               require_all=require_all)
        ]


class CloudAdminService:
    """Provisioning endpoint the gateway drives at schema registration."""

    def __init__(self, zone: "CloudZone"):
        self._zone = zone

    def provision_application(self, application: str) -> str:
        self._zone.application_stores(application)
        return f"docs/{application}"

    def provision_tactic(self, application: str, field: str,
                         tactic: str) -> str:
        return self._zone.provision_tactic(application, field, tactic)

    def enable_integrity(self, application: str) -> str:
        return self._zone.enable_integrity(application)

    def list_services(self) -> list[str]:
        return self._zone.host.service_names()


class CloudZone:
    """The whole untrusted zone in one object."""

    def __init__(self, registry=None, data_dir: str | Path | None = None,
                 dedup_window: int = 1024, resilience=None):
        if registry is None:
            from repro.core.registry import default_registry

            registry = default_registry()
        self.registry = registry
        #: ``dedup_window`` bounds the idempotency-key memory that makes
        #: retried gateway writes apply-at-most-once (see ServiceHost).
        #: Passing the deployment's :class:`~repro.net.resilience
        #: .ResilienceConfig` instead keeps both zones on the one knob
        #: (its ``dedup_window`` wins over the plain parameter).
        if resilience is not None:
            dedup_window = resilience.dedup_window
        self.host = ServiceHost(dedup_window=dedup_window)
        self._data_dir = Path(data_dir) if data_dir else None
        self._kv: dict[str, KeyValueStore] = {}
        self._documents: dict[str, DocumentStore] = {}
        self._trackers: dict[str, Any] = {}
        self._lock = threading.RLock()
        self.host.register("admin", CloudAdminService(self))

    # -- per-application resources ---------------------------------------------

    def application_stores(self, application: str
                           ) -> tuple[KeyValueStore, DocumentStore]:
        with self._lock:
            if application not in self._kv:
                if self._data_dir is not None:
                    base = self._data_dir / application
                    kv = KeyValueStore(base, name="index")
                    documents = DocumentStore(base, name="documents")
                else:
                    kv = KeyValueStore()
                    documents = DocumentStore()
                self._kv[application] = kv
                self._documents[application] = documents
                self.host.register(
                    f"docs/{application}", DocumentService(documents)
                )
            return self._kv[application], self._documents[application]

    # -- tactic provisioning -------------------------------------------------------

    def provision_tactic(self, application: str, field: str,
                         tactic: str) -> str:
        """Instantiate and expose one cloud tactic half (idempotent)."""
        name = service_name(application, field, tactic)
        with self._lock:
            try:
                self.host.get(name)
                return name  # already provisioned
            except TransportError:
                pass
            kv, documents = self.application_stores(application)
            registration = self.registry.get(tactic)
            context = CloudTacticContext(
                application=application,
                field=field,
                tactic=tactic,
                kv=kv,
                documents=documents,
            )
            instance = registration.cloud_cls(context)
            self.host.register(name, instance)
            return name

    def enable_integrity(self, application: str) -> str:
        """Attach an integrity tracker to one application (idempotent).

        Creates the per-domain Merkle trees over the application's
        stores, registers the ``integrity/<application>`` report/proof
        service, and switches the document service to support proven
        reads.  The import is local so zones that never enable
        integrity pay nothing for the subsystem.
        """
        name = f"integrity/{application}"
        with self._lock:
            if application in self._trackers:
                return name
            from repro.integrity.tracker import (
                IntegrityService,
                IntegrityTracker,
            )

            kv, documents = self.application_stores(application)
            tracker = IntegrityTracker(kv, documents)
            self._trackers[application] = tracker
            self.host.register(name, IntegrityService(tracker))
            self.host.get(f"docs/{application}").attach_integrity(tracker)
            return name

    def integrity_tracker(self, application: str) -> Any:
        """Direct access to a tracker (tests, audits); None if disabled."""
        with self._lock:
            return self._trackers.get(application)

    def tactic_instance(self, application: str, field: str,
                        tactic: str) -> Any:
        """Direct access to a provisioned instance (tests, metrics)."""
        return self.host.get(service_name(application, field, tactic))

    def close(self) -> None:
        with self._lock:
            for store in self._kv.values():
                store.close()
            for store in self._documents.values():
                store.close()
