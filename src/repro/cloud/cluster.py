"""Multi-node untrusted zone: N CloudZones behind per-node transports.

The harness the sharded tests and benchmarks deploy against: each node
is a full :class:`~repro.cloud.server.CloudZone` (own document store,
own KV index store, own service host) reached through its own
:class:`~repro.net.transport.InProcTransport` — so per-node traffic is
metered separately and a network model charges every hop, exactly as N
real providers would.

``cluster.nodes()`` feeds :class:`repro.shard.router.ShardedTransport`
directly; ``cluster.add_zone(name)`` mints a fresh node for
:meth:`repro.shard.rebalance.Resharder.add_node`.
"""

from __future__ import annotations

from typing import Iterable

from repro.cloud.server import CloudZone
from repro.errors import TransportError
from repro.net.latency import NetworkModel
from repro.net.transport import InProcTransport, Transport


class CloudCluster:
    """N named, independent CloudZones with one transport each."""

    def __init__(self, nodes: int | Iterable[str] = 2, registry=None,
                 network: NetworkModel | None = None,
                 dedup_window: int = 1024, resilience=None):
        if resilience is not None:
            dedup_window = resilience.dedup_window
        if isinstance(nodes, int):
            names = [f"zone-{index}" for index in range(nodes)]
        else:
            names = list(nodes)
        if not names:
            raise TransportError("a cluster needs at least one node")
        self._registry = registry
        self._network = network
        self._dedup_window = dedup_window
        self._zones: dict[str, CloudZone] = {}
        self._transports: dict[str, Transport] = {}
        self._order: list[str] = []
        for name in names:
            self.add_zone(name)

    def add_zone(self, name: str) -> tuple[str, Transport]:
        """Provision a fresh node; returns the ``(name, transport)`` pair
        ready for ``Resharder.add_node``."""
        if name in self._zones:
            raise TransportError(f"cluster node {name!r} already exists")
        zone = CloudZone(registry=self._registry,
                         dedup_window=self._dedup_window)
        transport = InProcTransport(zone.host, self._network)
        self._zones[name] = zone
        self._transports[name] = transport
        self._order.append(name)
        return name, transport

    def nodes(self) -> list[tuple[str, Transport]]:
        return [(name, self._transports[name]) for name in self._order]

    def names(self) -> list[str]:
        return list(self._order)

    def zone(self, name: str) -> CloudZone:
        return self._zones[name]

    def transport(self, name: str) -> Transport:
        return self._transports[name]

    def close(self) -> None:
        for zone in self._zones.values():
            zone.close()
