"""Untrusted-zone services: the cloud side of the deployment view."""

from repro.cloud.server import CloudAdminService, CloudZone, DocumentService

__all__ = ["CloudAdminService", "CloudZone", "DocumentService"]
