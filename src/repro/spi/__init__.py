"""The tactics SPI subsystem: abstraction models and plugin interfaces.

This package reifies the paper's two conceptual models -- the data
protection tactic model (Fig. 1: operations, leakage profile, performance
metrics) and the Service Provider Interfaces of Table 1 through which
tactic providers plug new cryptographic schemes into the middleware.
"""

from repro.spi.context import (
    CloudTacticContext,
    GatewayTacticContext,
    service_name,
)
from repro.spi.descriptors import (
    Aggregate,
    Operation,
    PerformanceMetrics,
    TacticDescriptor,
    implemented_interfaces,
    spi_counts,
)
from repro.spi.leakage import (
    LeakageLevel,
    LeakageProfile,
    OperationLeakage,
    ProtectionClass,
    weakest_link,
)

__all__ = [
    "Aggregate",
    "CloudTacticContext",
    "GatewayTacticContext",
    "LeakageLevel",
    "LeakageProfile",
    "Operation",
    "OperationLeakage",
    "PerformanceMetrics",
    "ProtectionClass",
    "TacticDescriptor",
    "implemented_interfaces",
    "service_name",
    "spi_counts",
    "weakest_link",
]
