"""Leakage profiles and protection classes.

The paper adopts the five-level leakage taxonomy of Fuller et al. (SoK:
Cryptographically Protected Database Search, IEEE S&P 2017) and reifies it
per *operation* on the tactic-provider side (§3.1) and per *field* as five
protection classes on the application side (§3.2).  A field's protection
level equals the weakest (most-leaking) tactic applied to it — "a chain is
only as strong as its weakest link".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PolicyError


class LeakageLevel(enum.IntEnum):
    """What an adversary observing the cloud learns, least to most."""

    #: Only the size of the entire data structure (or things hidden by
    #: padding) is leaked.
    STRUCTURE = 1
    #: Past and future access patterns of document identifiers leak.
    IDENTIFIERS = 2
    #: Complex query predicates leak (e.g. the intersection of a boolean
    #: query with a known range).
    PREDICATES = 3
    #: Which objects have the same value leaks.
    EQUALITIES = 4
    #: The numerical / lexicographic order of objects leaks.
    ORDER = 5

    @property
    def label(self) -> str:
        return self.name.capitalize()


class ProtectionClass(enum.IntEnum):
    """Application-facing protection guarantee (C1 strongest)."""

    C1 = 1
    C2 = 2
    C3 = 3
    C4 = 4
    C5 = 5

    @classmethod
    def parse(cls, value: "ProtectionClass | int | str") -> "ProtectionClass":
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        text = value.strip().upper().replace("CLASS", "C").replace(" ", "")
        if text.startswith("C"):
            return cls(int(text[1:]))
        raise PolicyError(f"cannot parse protection class {value!r}")

    def tolerates(self, leakage: LeakageLevel) -> bool:
        """Whether a field of this class may use a tactic leaking this much.

        Class k corresponds to leakage level k; a field annotated C_k
        accepts tactics whose leakage is at most level k.
        """
        return int(leakage) <= int(self)


@dataclass(frozen=True)
class OperationLeakage:
    """Leakage of one tactic operation, on a per-operation basis (§3.1).

    ``setup_leakage`` captures what a snapshot adversary learns from the
    provisioned structures alone; ``query_leakage`` what a persistent
    adversary learns per invocation; ``forward_private`` marks update
    operations that leak nothing about past queries (e.g. Sophos, Mitra).
    """

    level: LeakageLevel
    setup_leakage: str = ""
    query_leakage: str = ""
    forward_private: bool = False


@dataclass(frozen=True)
class LeakageProfile:
    """Per-operation leakage of one tactic; the max level classifies it."""

    operations: dict[str, OperationLeakage] = field(default_factory=dict)

    @property
    def level(self) -> LeakageLevel:
        if not self.operations:
            return LeakageLevel.STRUCTURE
        return max(op.level for op in self.operations.values())

    @property
    def protection_class(self) -> ProtectionClass:
        return ProtectionClass(int(self.level))

    def for_operation(self, operation: str) -> OperationLeakage | None:
        return self.operations.get(operation)


def weakest_link(levels: list[LeakageLevel]) -> LeakageLevel:
    """The field-level leakage of a set of applied tactics (§3.2)."""
    if not levels:
        raise PolicyError("weakest_link of an empty tactic set")
    return max(levels)
