"""Runtime performance metrics per tactic instance (Fig. 1, right side).

The tactic abstraction model attaches *performance metrics* to every
operation: algorithmic cost, network cost (data sent/received between
clients and providers) and storage overhead.  This module reifies the
measurement side: a :class:`TacticMetrics` recorder is injected into each
gateway tactic context, and every cloud call made through the context is
accounted — per tactic instance, per operation — with wall time, round
count and wire bytes.

``DataBlinder.metrics_report()`` renders the aggregate, which is how an
operator sees where a deployment spends its budget (e.g. the Paillier
dominance the paper observed).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class OperationCost:
    """Accumulated cost of one (tactic instance, method) pair."""

    calls: int = 0
    rounds: int = 0
    seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0

    def record(self, seconds: float, bytes_sent: int,
               bytes_received: int) -> None:
        self.calls += 1
        self.rounds += 1
        self.seconds += seconds
        self.bytes_sent += bytes_sent
        self.bytes_received += bytes_received

    @property
    def mean_ms(self) -> float:
        return 1000.0 * self.seconds / self.calls if self.calls else 0.0


@dataclass
class InstanceMetrics:
    """All operations of one tactic instance."""

    service: str
    operations: dict[str, OperationCost] = field(default_factory=dict)

    def cost(self, method: str) -> OperationCost:
        if method not in self.operations:
            self.operations[method] = OperationCost()
        return self.operations[method]

    @property
    def total_seconds(self) -> float:
        return sum(c.seconds for c in self.operations.values())

    @property
    def total_calls(self) -> int:
        return sum(c.calls for c in self.operations.values())

    @property
    def total_bytes(self) -> int:
        return sum(c.bytes_sent + c.bytes_received
                   for c in self.operations.values())


@dataclass
class LatencyEwma:
    """Exponentially weighted moving average of one cost signal.

    ``alpha`` weights the newest observation; the planner's optimizer
    reads ``mean_seconds`` as the *observed* half of its cost model (the
    static half comes from the SPI performance descriptors).
    """

    alpha: float = 0.25
    observations: int = 0
    mean_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.observations += 1
        if self.observations == 1:
            self.mean_seconds = seconds
        else:
            self.mean_seconds += self.alpha * (seconds - self.mean_seconds)

    @property
    def mean_ms(self) -> float:
        return 1000.0 * self.mean_seconds


class CostObservatory:
    """Observed per-(scope, operation, tactic) latency EWMAs.

    One observatory lives on the gateway runtime, shared by every schema
    executor, so observations survive plan-cache invalidations and schema
    migrations.  Keys are ``(scope, operation, tactic)`` — e.g.
    ``("observation.status", "eq", "det")`` — matching the plan IR's
    ``IndexLookup`` nodes.
    """

    def __init__(self, alpha: float = 0.25) -> None:
        self._alpha = alpha
        self._ewmas: dict[tuple[str, str, str], LatencyEwma] = {}
        self._lock = threading.Lock()

    def observe(self, scope: str, operation: str, tactic: str,
                seconds: float) -> None:
        key = (scope, operation, tactic)
        with self._lock:
            ewma = self._ewmas.get(key)
            if ewma is None:
                ewma = LatencyEwma(alpha=self._alpha)
                self._ewmas[key] = ewma
            ewma.observe(seconds)

    def lookup(self, scope: str, operation: str,
               tactic: str) -> LatencyEwma | None:
        with self._lock:
            return self._ewmas.get((scope, operation, tactic))

    def observations(self, scope: str, operation: str, tactic: str) -> int:
        ewma = self.lookup(scope, operation, tactic)
        return ewma.observations if ewma is not None else 0

    def snapshot(self) -> dict[tuple[str, str, str], tuple[int, float]]:
        with self._lock:
            return {
                key: (e.observations, e.mean_seconds)
                for key, e in self._ewmas.items()
            }


class TacticMetrics:
    """Thread-safe per-deployment metrics registry."""

    def __init__(self) -> None:
        self._instances: dict[str, InstanceMetrics] = {}
        self._lock = threading.Lock()

    def record_call(self, service: str, method: str, seconds: float,
                    bytes_sent: int, bytes_received: int) -> None:
        with self._lock:
            instance = self._instances.get(service)
            if instance is None:
                instance = InstanceMetrics(service)
                self._instances[service] = instance
            instance.cost(method).record(seconds, bytes_sent,
                                         bytes_received)

    def instances(self) -> list[InstanceMetrics]:
        with self._lock:
            return [self._instances[k] for k in sorted(self._instances)]

    def reset(self) -> None:
        with self._lock:
            self._instances.clear()

    # -- reporting -----------------------------------------------------------

    def by_tactic(self) -> dict[str, OperationCost]:
        """Aggregate costs keyed by tactic name (last service segment)."""
        aggregated: dict[str, OperationCost] = {}
        for instance in self.instances():
            tactic = instance.service.rsplit("/", 1)[-1]
            total = aggregated.setdefault(tactic, OperationCost())
            for cost in instance.operations.values():
                total.calls += cost.calls
                total.rounds += cost.rounds
                total.seconds += cost.seconds
                total.bytes_sent += cost.bytes_sent
                total.bytes_received += cost.bytes_received
        return aggregated

    def render(self) -> str:
        header = (f"{'tactic':<12}{'calls':>8}{'time s':>10}"
                  f"{'mean ms':>10}{'sent B':>12}{'recv B':>12}")
        lines = ["Per-tactic runtime cost (Fig. 1 performance metrics)",
                 header, "-" * len(header)]
        by_tactic = self.by_tactic()
        for tactic in sorted(by_tactic,
                             key=lambda t: -by_tactic[t].seconds):
            cost = by_tactic[tactic]
            lines.append(
                f"{tactic:<12}{cost.calls:>8}{cost.seconds:>10.3f}"
                f"{cost.mean_ms:>10.2f}{cost.bytes_sent:>12,}"
                f"{cost.bytes_received:>12,}"
            )
        return "\n".join(lines)
