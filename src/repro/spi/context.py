"""Dependency contexts injected into tactic implementations.

§4.2 lists the commonalities every tactic receives from the framework:
(1) gateway and cloud implementations per operation, (2) cryptographic
primitives, (3) key management integration, (4) communication channels,
and (5) data repository services on both sides.  These two dataclasses are
exactly that injection: a gateway tactic gets keys + a channel to its
cloud peer + local storage; a cloud tactic gets the shared untrusted-zone
stores.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.keys.keystore import KeyStore
from repro.net.transport import Transport
from repro.spi.metrics import TacticMetrics
from repro.stores.docstore import DocumentStore
from repro.stores.kv import KeyValueStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crypto.kernels.executor import CryptoExecutor


def service_name(application: str, field: str, tactic: str) -> str:
    """Canonical RPC service name of one cloud tactic instance."""
    return f"tactic/{application}/{field}/{tactic}"


@dataclass
class GatewayTacticContext:
    """Trusted-zone dependencies of one tactic instance bound to a field."""

    application: str
    field: str
    tactic: str
    keystore: KeyStore
    transport: Transport
    #: Gateway-side state repository (e.g. Sophos search tokens, Mitra
    #: counters) — the paper's 'local storage' challenge for Mitra.
    local_kv: KeyValueStore
    #: Per-deployment performance-metric sink (Fig. 1); optional so bare
    #: tactic harnesses stay lightweight.
    metrics: TacticMetrics | None = None
    #: Shared crypto kernel dispatcher (batch SPI backend).  ``None``
    #: means no runtime wired one in; tactics then fall back to the
    #: inline executor and the seed's sequential loops.
    kernels: "CryptoExecutor | None" = None

    @property
    def service(self) -> str:
        return service_name(self.application, self.field, self.tactic)

    def call(self, method: str, **kwargs: Any) -> Any:
        """Invoke the cloud-side counterpart of this tactic.

        When a metrics sink is attached, the protocol round is accounted:
        wall time plus the bytes the transport moved in each direction.
        """
        if self.metrics is None:
            return self.transport.call(self.service, method, **kwargs)
        before = self.transport.stats()
        start = time.perf_counter()
        result = self.transport.call(self.service, method, **kwargs)
        elapsed = time.perf_counter() - start
        after = self.transport.stats()
        self.metrics.record_call(
            self.service, method, elapsed,
            after.bytes_sent - before.bytes_sent,
            after.bytes_received - before.bytes_received,
        )
        return result

    def derive_key(self, purpose: str, length: int = 32) -> bytes:
        return self.keystore.derive(self.field, self.tactic, purpose, length)

    def state_key(self, *parts: bytes) -> bytes:
        """Namespaced gateway-state key for this tactic instance."""
        prefix = self.service.encode()
        return b"/".join((prefix,) + parts)


@dataclass
class CloudTacticContext:
    """Untrusted-zone dependencies of one cloud tactic instance."""

    application: str
    field: str
    tactic: str
    #: Secure-index repository (the Redis role in the paper's deployment).
    kv: KeyValueStore
    #: Encrypted document repository (the MongoDB role).
    documents: DocumentStore

    @property
    def service(self) -> str:
        return service_name(self.application, self.field, self.tactic)

    def state_key(self, *parts: bytes) -> bytes:
        prefix = self.service.encode()
        return b"/".join((prefix,) + parts)
