"""Tactic descriptors: the abstraction model of Fig. 1.

A :class:`TacticDescriptor` reifies everything the middleware needs to
select and load a tactic without understanding its cryptography: the
operations it offers, the per-operation leakage profile, coarse
performance characteristics, and provenance notes (the *Challenge* and
*Implementation* columns of Table 2).

SPI interface counts are not declared — they are *derived* from the
gateway and cloud implementation classes by introspection, so Table 2's
counts in the benchmark reflect the actual code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.spi.interfaces import CLOUD_INTERFACES, GATEWAY_INTERFACES
from repro.spi.leakage import LeakageProfile, ProtectionClass


class Operation(enum.Enum):
    """Data-access operations of the Fig. 2 abstraction model."""

    INSERT = "I"
    EQUALITY = "EQ"
    BOOLEAN = "BL"
    RANGE = "RG"
    READ = "RD"
    UPDATE = "UP"
    DELETE = "DL"

    @classmethod
    def parse(cls, value: "Operation | str") -> "Operation":
        if isinstance(value, cls):
            return value
        return cls(value.strip().upper())


class Aggregate(enum.Enum):
    """Aggregate functions combinable with search operations (§3.2)."""

    SUM = "sum"
    AVG = "avg"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    PRODUCT = "product"

    @classmethod
    def parse(cls, value: "Aggregate | str") -> "Aggregate":
        if isinstance(value, cls):
            return value
        return cls(value.strip().lower())


@dataclass(frozen=True)
class PerformanceMetrics:
    """Coarse per-tactic cost model (Fig. 1 'performance metrics').

    ``rank`` orders tactics for selection tie-breaks (lower = faster);
    the remaining fields describe asymptotics and overhead sources used
    in documentation and the ablation reports.
    """

    rank: int
    search_complexity: str = "O(1)"
    rounds_per_query: int = 1
    client_storage: str = "O(1)"
    server_storage: str = "O(n)"
    notes: str = ""


@dataclass(frozen=True)
class TacticDescriptor:
    """Everything the registry knows about one pluggable tactic."""

    name: str
    display_name: str
    operations: frozenset[Operation]
    aggregates: frozenset[Aggregate]
    leakage: LeakageProfile
    performance: PerformanceMetrics
    #: None for aggregate-only tactics (Paillier's '-' row in Table 2).
    protection_class: ProtectionClass | None
    challenge: str = ""
    implementation: str = "implemented from scratch"
    #: Whether the tactic can serve boolean queries indirectly, by running
    #: per-term equality queries that the gateway combines (predicate
    #: evaluation in the trusted zone).
    boolean_via_equality: bool = False
    #: Whether the tactic's candidate id sets are exact — no false
    #: positives (BIEX-ZMF's probabilistic filters) and no stale entries
    #: (insert-as-upsert range indexes, Sophos' addition-only updates).
    #: The planner uses this to drop the Decrypt/Verify stages from plans
    #: whose result cannot change under verification (e.g. ``count``).
    exact_search: bool = True

    def supports(self, operation: Operation) -> bool:
        if operation in self.operations:
            return True
        if operation is Operation.BOOLEAN and self.boolean_via_equality:
            return Operation.EQUALITY in self.operations
        return False

    def supports_aggregate(self, aggregate: Aggregate) -> bool:
        return aggregate in self.aggregates

    def admissible_for(self, protection_class: ProtectionClass) -> bool:
        """Whether a field of the given class may use this tactic."""
        if self.protection_class is None:
            return True  # aggregate-only: no search leakage class
        return protection_class.tolerates(self.leakage.level)


def implemented_interfaces(cls: type, side: str) -> list[str]:
    """Names of the Table 1 interfaces a tactic class implements."""
    table = GATEWAY_INTERFACES if side == "gateway" else CLOUD_INTERFACES
    return [name for name, abc in table.items() if issubclass(cls, abc)]


def spi_counts(gateway_cls: type, cloud_cls: type) -> tuple[int, int]:
    """The (gateway, cloud) SPI counts reported in Table 2."""
    return (
        len(implemented_interfaces(gateway_cls, "gateway")),
        len(implemented_interfaces(cloud_cls, "cloud")),
    )
