"""Service Provider Interfaces (Table 1 of the paper).

Each high-level data-access operation decomposes into *gateway* interfaces
(run in the trusted zone) and *cloud* interfaces (run in the untrusted
zone).  A tactic implements the subset matching its functionality; the
``Setup`` pair is mandatory for every tactic.  Table 2's per-tactic SPI
counts are derived by introspecting which of these ABCs a tactic's gateway
and cloud classes implement (see
:func:`repro.spi.descriptors.implemented_interfaces`).

The gateway classes receive a :class:`repro.spi.context.GatewayTacticContext`
and talk to their cloud counterpart exclusively through its RPC service —
tactics are inherently distributed protocols (§4.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.crypto.encoding import Value

DocId = str
DocIdSet = set[str]

# ---------------------------------------------------------------------------
# Gateway-side interfaces
# ---------------------------------------------------------------------------


class GatewaySetup(ABC):
    """Mandatory: key material generation and initial index provisioning."""

    @abstractmethod
    def setup(self) -> None:
        ...


class GatewayInsertion(ABC):
    """Index/encrypt one field value of a newly inserted document."""

    @abstractmethod
    def insert(self, doc_id: DocId, value: Value) -> None:
        ...


class GatewayDocIDGen(ABC):
    """Generate unlinkable document identifiers."""

    @abstractmethod
    def generate_doc_id(self) -> DocId:
        ...


class GatewaySecureEnc(ABC):
    """Produce/open the stored (body) representation of a value."""

    @abstractmethod
    def seal(self, value: Value) -> bytes:
        ...

    @abstractmethod
    def open(self, blob: bytes) -> Value:
        ...


class GatewayUpdate(ABC):
    """Re-index a field value change of an existing document."""

    @abstractmethod
    def update(self, doc_id: DocId, old_value: Value,
               new_value: Value) -> None:
        ...


class GatewayRetrieval(ABC):
    """Fetch tactic-held state needed to serve a document read."""

    @abstractmethod
    def retrieve(self, doc_id: DocId) -> Any:
        ...


class GatewayDeletion(ABC):
    """Remove a document's traces from the tactic's structures."""

    @abstractmethod
    def delete(self, doc_id: DocId, value: Value) -> None:
        ...


class GatewayEqQuery(ABC):
    """Build the equality-search trapdoor and run the cloud protocol."""

    @abstractmethod
    def eq_query(self, value: Value) -> Any:
        """Return the raw protocol response (resolved separately)."""


class GatewayEqResolution(ABC):
    """Turn the raw equality response into plaintext document ids."""

    @abstractmethod
    def resolve_eq(self, raw: Any) -> DocIdSet:
        ...


class GatewayBoolQuery(ABC):
    """Build trapdoors for a boolean (CNF) query and run the protocol.

    ``cnf`` is a list of clauses; each clause is a list of
    ``(field, value)`` terms combined by OR, clauses combined by AND.
    """

    @abstractmethod
    def bool_query(self, cnf: list[list[tuple[str, Value]]]) -> Any:
        ...


class GatewayBoolResolution(ABC):
    @abstractmethod
    def resolve_bool(self, raw: Any) -> DocIdSet:
        ...


class GatewayRangeQuery(ABC):
    """Encrypt range bounds and run the cloud-side comparison protocol."""

    @abstractmethod
    def range_query(self, low: Value, high: Value) -> DocIdSet:
        ...


class GatewayAggFunctionResolution(ABC):
    """Decrypt/post-process an aggregate computed blind by the cloud."""

    @abstractmethod
    def resolve_aggregate(self, function: str, raw: Any,
                          count: int) -> Value:
        ...


# ---------------------------------------------------------------------------
# Cloud-side interfaces
# ---------------------------------------------------------------------------


class CloudSetup(ABC):
    """Mandatory: provision the cloud-side structures for one tactic."""

    @abstractmethod
    def setup(self, **params: Any) -> None:
        ...


class CloudInsertion(ABC):
    @abstractmethod
    def insert(self, **payload: Any) -> Any:
        ...


class CloudUpdate(ABC):
    @abstractmethod
    def update(self, **payload: Any) -> Any:
        ...


class CloudRetrieval(ABC):
    @abstractmethod
    def retrieve(self, **payload: Any) -> Any:
        ...


class CloudDeletion(ABC):
    @abstractmethod
    def delete(self, **payload: Any) -> Any:
        ...


class CloudEqQuery(ABC):
    @abstractmethod
    def eq_query(self, **payload: Any) -> Any:
        ...


class CloudBoolQuery(ABC):
    @abstractmethod
    def bool_query(self, **payload: Any) -> Any:
        ...


class CloudRangeQuery(ABC):
    @abstractmethod
    def range_query(self, **payload: Any) -> Any:
        ...


class CloudAggFunction(ABC):
    """Evaluate an aggregate over ciphertexts without decrypting."""

    @abstractmethod
    def aggregate(self, **payload: Any) -> Any:
        ...


GATEWAY_INTERFACES: dict[str, type] = {
    "Setup": GatewaySetup,
    "Insertion": GatewayInsertion,
    "DocIDGen": GatewayDocIDGen,
    "SecureEnc": GatewaySecureEnc,
    "Update": GatewayUpdate,
    "Retrieval": GatewayRetrieval,
    "Deletion": GatewayDeletion,
    "EqQuery": GatewayEqQuery,
    "EqResolution": GatewayEqResolution,
    "BoolQuery": GatewayBoolQuery,
    "BoolResolution": GatewayBoolResolution,
    "RangeQuery": GatewayRangeQuery,
    "AggFunctionResolution": GatewayAggFunctionResolution,
}

# Table 1 of the paper: which SPI interfaces compose each high-level
# data-access operation.  <Read> and <Query> denote the interface sets of
# a retrieval / search operation folded into the row.
TABLE1: dict[str, dict[str, list[str]]] = {
    "Insert": {
        "gateway": ["Insertion", "DocIDGen", "SecureEnc"],
        "cloud": ["Insertion"],
    },
    "Update": {
        "gateway": ["Update", "DocIDGen", "Retrieval", "SecureEnc"],
        "cloud": ["Update", "Retrieval"],
    },
    "Delete": {
        "gateway": ["Deletion"],
        "cloud": ["Deletion"],
    },
    "Read": {
        "gateway": ["Retrieval", "SecureEnc"],
        "cloud": ["Retrieval"],
    },
    "Equality Search": {
        "gateway": ["EqQuery", "EqResolution", "<Read>"],
        "cloud": ["EqQuery"],
    },
    "Boolean Search": {
        "gateway": ["BoolQuery", "BoolResolution", "<Read>"],
        "cloud": ["BoolQuery"],
    },
    "Range Query": {
        "gateway": ["RangeQuery", "<Read>"],
        "cloud": ["RangeQuery"],
    },
    "Aggregate": {
        "gateway": ["<Query>", "AggFunctionResolution"],
        "cloud": ["AggFunction"],
    },
}

CLOUD_INTERFACES: dict[str, type] = {
    "Setup": CloudSetup,
    "Insertion": CloudInsertion,
    "Update": CloudUpdate,
    "Retrieval": CloudRetrieval,
    "Deletion": CloudDeletion,
    "EqQuery": CloudEqQuery,
    "BoolQuery": CloudBoolQuery,
    "RangeQuery": CloudRangeQuery,
    "AggFunction": CloudAggFunction,
}
