"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``tables``    — print the paper's Table 1 and Table 2 from the code.
* ``selection`` — print the §5.1 use-case tactic-selection table.
* ``leakage``   — print the per-operation leakage matrix (§3.1).
* ``demo``      — run a miniature end-to-end healthcare demo.
* ``compare [N]`` — run the S_A/S_B/S_C throughput comparison.
"""

from __future__ import annotations

import sys


def cmd_tables() -> None:
    from repro.core.registry import default_registry
    from repro.spi.descriptors import spi_counts
    from repro.spi.interfaces import TABLE1

    print("Table 1 — SPI interfaces per high-level operation\n")
    width = max(len(op) for op in TABLE1) + 2
    print(f"{'Operation':<{width}}{'Gateway':<44}Cloud")
    print("-" * (width + 56))
    for operation, sides in TABLE1.items():
        print(f"{operation:<{width}}{', '.join(sides['gateway']):<44}"
              f"{', '.join(sides['cloud'])}")

    print("\nTable 2 — registered tactic catalog\n")
    registry = default_registry()
    header = (f"{'Scheme':<14}{'Class':<7}{'Leakage':<13}{'GW':>4}"
              f"{'Cloud':>7}  Challenge")
    print(header)
    print("-" * len(header))
    for registration in registry.all():
        descriptor = registration.descriptor
        gateway_count, cloud_count = spi_counts(
            registration.gateway_cls, registration.cloud_cls
        )
        cls = ("-" if descriptor.protection_class is None
               else f"C{int(descriptor.protection_class)}")
        leakage = ("-" if descriptor.protection_class is None
                   else descriptor.leakage.level.label)
        print(f"{descriptor.display_name:<14}{cls:<7}{leakage:<13}"
              f"{gateway_count:>4}{cloud_count:>7}  "
              f"{descriptor.challenge}")


def cmd_selection() -> None:
    from repro.core.policy import audit_plans, render_policy_table
    from repro.core.registry import default_registry
    from repro.core.selection import TacticSelector
    from repro.fhir.model import observation_schema

    registry = default_registry()
    plans = TacticSelector(registry).plan_schema(observation_schema())
    print("Use case §5.1 — FHIR Observation tactic selection\n")
    print(render_policy_table(audit_plans(plans, registry)))


def cmd_leakage() -> None:
    from repro.core.policy import render_leakage_matrix
    from repro.core.registry import default_registry

    print(render_leakage_matrix(default_registry()))


def cmd_demo() -> None:
    import importlib

    module = importlib.import_module("examples.healthcare_fhir")
    module.main()


def cmd_compare(argv: list[str]) -> None:
    import importlib

    sys.argv = ["scenario_comparison"] + argv
    module = importlib.import_module("examples.scenario_comparison")
    module.main()


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "tables"
    if command == "tables":
        cmd_tables()
    elif command == "selection":
        cmd_selection()
    elif command == "leakage":
        cmd_leakage()
    elif command == "demo":
        cmd_demo()
    elif command == "compare":
        cmd_compare(argv[1:])
    else:
        print(__doc__)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
