"""ORE range tactic, protection class 5 (*order*).

Same role as the OPE tactic, built on CLWW order-revealing encryption:
ciphertexts are not numbers, so the cloud cannot read order off the
stored values directly — it must invoke the public ``compare`` routine.
The cloud index is kept sorted under that comparator, so range queries
are still two binary searches, each comparison costing a pass over the
ternary digit vectors.  The ablation benchmark contrasts this with OPE's
cheaper comparisons and larger per-encryption cost.

Insert-as-upsert, like the OPE tactic, keeps the SPI surface at the
3/3 interfaces of Table 2: Setup, Insertion, RangeQuery on both sides.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value, encode_value, value_to_ordered_int
from repro.crypto.ore import Ore, OreCiphertext, compare
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import CloudTactic, GatewayTactic, export_ring

PLAINTEXT_BITS = 40


class OreGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayRangeQuery,
):
    """Trusted-zone half: CLWW encryption of numeric codes."""

    def setup(self) -> None:
        self._ore = Ore(self.ctx.derive_key("ore"), bits=PLAINTEXT_BITS)
        self._code_cache = self.kernels.cache()
        self.ctx.call("setup")

    def _encode(self, value: Value) -> bytes:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TacticError(
                f"ORE protects numeric fields only, got "
                f"{type(value).__name__}"
            )
        return self._ore.encrypt(
            value_to_ordered_int(value, bits=PLAINTEXT_BITS)
        ).to_bytes()

    def insert(self, doc_id: str, value: Value) -> None:
        self.ctx.call("insert", doc_id=doc_id, ciphertext=self._encode(value))

    # -- batch SPI ----------------------------------------------------------------
    # CLWW encryption is a deterministic PRF per digit, so batches dedup
    # exactly; the digit-vector loop itself stays gateway-inline (cheap
    # AES rounds, not worth a pickle round trip).

    def token(self, value: Value) -> bytes:
        return self._encode(value)

    def tokens_many(self, values: list[Value]) -> list[bytes]:
        return self.kernels.dedup_map(
            values, self._encode, key=encode_value,
            cache=self._code_cache,
        )

    def index_many_begin(self, entries: list[tuple[str, Value]]):
        codes = self.tokens_many([value for _, value in entries])

        def finish() -> None:
            for (doc_id, _), code in zip(entries, codes):
                self.ctx.call("insert", doc_id=doc_id, ciphertext=code)

        return finish

    def range_query(self, low: Value, high: Value) -> set[str]:
        low_ct = None if low is None else self._encode(low)
        high_ct = None if high is None else self._encode(high)
        return set(
            self.ctx.call("range_query", low=low_ct, high=high_ct)
        )

    def ordered_ids(self, low: Value = None, high: Value = None,
                    limit: int | None = None,
                    descending: bool = False) -> list[str]:
        """Document ids in value order (extension beyond the Table 1 SPI:
        the order tactics can serve ORDER BY and min/max for free)."""
        low_ct = None if low is None else self._encode(low)
        high_ct = None if high is None else self._encode(high)
        return self.ctx.call("ordered_range", low=low_ct, high=high_ct,
                             limit=limit, descending=descending)


class OreCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudRangeQuery,
):
    """Untrusted-zone half: a comparator-sorted ciphertext index."""

    def setup(self, **params: Any) -> None:
        self._map_name = self.ctx.state_key(b"ct")
        # Rebuild the comparator-sorted view from the durable KV map.
        self._sorted: list[tuple[OreCiphertext, str]] = []
        self._by_doc: dict[str, OreCiphertext] = {}
        for key, blob in self.ctx.kv.map_items(self._map_name):
            parsed = OreCiphertext.from_bytes(blob)
            self._sorted.insert(self._bisect(parsed, right=True),
                                (parsed, key.decode()))
            self._by_doc[key.decode()] = parsed

    def _bisect(self, ciphertext: OreCiphertext, right: bool) -> int:
        """Binary search with the public ORE comparator."""
        lo, hi = 0, len(self._sorted)
        while lo < hi:
            mid = (lo + hi) // 2
            ordering = compare(self._sorted[mid][0], ciphertext)
            if ordering < 0 or (right and ordering == 0):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def insert(self, doc_id: str, ciphertext: bytes) -> None:
        if not isinstance(ciphertext, bytes):
            raise TacticError("ORE ciphertext must be bytes")
        parsed = OreCiphertext.from_bytes(ciphertext)
        self.ctx.kv.map_put(self._map_name, doc_id.encode(), ciphertext)
        previous = self._by_doc.get(doc_id)
        if previous is not None:
            index = self._bisect(previous, right=False)
            while index < len(self._sorted):
                entry_ct, entry_id = self._sorted[index]
                if compare(entry_ct, previous) != 0:
                    break
                if entry_id == doc_id:
                    self._sorted.pop(index)
                    break
                index += 1
        self._sorted.insert(self._bisect(parsed, right=True),
                            (parsed, doc_id))
        self._by_doc[doc_id] = parsed

    def _slice(self, low: bytes | None, high: bytes | None) -> list[str]:
        start = 0 if low is None else self._bisect(
            OreCiphertext.from_bytes(low), right=False
        )
        end = len(self._sorted) if high is None else self._bisect(
            OreCiphertext.from_bytes(high), right=True
        )
        return [doc_id for _, doc_id in self._sorted[start:end]]

    def range_query(self, low: bytes | None,
                    high: bytes | None) -> list[str]:
        return self._slice(low, high)

    def ordered_range(self, low: bytes | None, high: bytes | None,
                      limit: int | None = None,
                      descending: bool = False) -> list[str]:
        ids = self._slice(low, high)
        if descending:
            ids.reverse()
        return ids if limit is None else ids[:limit]

    def ordered_range_keyed(self, low: bytes | None, high: bytes | None,
                            limit: int | None = None,
                            descending: bool = False
                            ) -> list[tuple[bytes, str]]:
        """Like ``ordered_range`` but pairs each id with its raw
        ciphertext, so a sharded router can order-merge partial results
        through the public ``compare`` routine."""
        start = 0 if low is None else self._bisect(
            OreCiphertext.from_bytes(low), right=False
        )
        end = len(self._sorted) if high is None else self._bisect(
            OreCiphertext.from_bytes(high), right=True
        )
        pairs = self._sorted[start:end]
        if descending:
            pairs = pairs[::-1]
        if limit is not None:
            pairs = pairs[:limit]
        return [
            (self.ctx.kv.map_get(self._map_name, doc_id.encode()), doc_id)
            for _, doc_id in pairs
        ]

    # -- shard migration SPI (doc-keyed) ---------------------------------------

    def _remove_entry(self, doc_id: str) -> None:
        previous = self._by_doc.pop(doc_id, None)
        if previous is None:
            return
        index = self._bisect(previous, right=False)
        while index < len(self._sorted):
            entry_ct, entry_id = self._sorted[index]
            if compare(entry_ct, previous) != 0:
                break
            if entry_id == doc_id:
                self._sorted.pop(index)
                break
            index += 1
        self.ctx.kv.map_delete(self._map_name, doc_id.encode())

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (key.decode(), blob)
            for key, blob in self.ctx.kv.map_items(self._map_name)
            if ring.owner(key.decode()) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for doc_id, blob in entries:
            self.insert(doc_id, blob)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        foreign = [doc_id for doc_id in self._by_doc
                   if ring.owner(doc_id) != origin]
        for doc_id in foreign:
            self._remove_entry(doc_id)
