"""Built-in data protection tactics (the implemented rows of Table 2).

Each tactic registers a descriptor — protection class, per-operation
leakage profile, performance characteristics, the Table 2 'Challenge'
and 'Implementation' notes — together with its gateway and cloud
implementation classes.  The SPI interface counts reported in the
Table 2 benchmark are *derived* from those classes by introspection.

An eleventh tactic (ElGamal products) extends the paper's catalog to
demonstrate the pluggable architecture.
"""

from __future__ import annotations

from repro.spi.descriptors import (
    Aggregate,
    Operation,
    PerformanceMetrics,
    TacticDescriptor,
)
from repro.spi.leakage import (
    LeakageLevel,
    LeakageProfile,
    OperationLeakage,
    ProtectionClass,
)
from repro.tactics.blind_index import BlindIndexCloud, BlindIndexGateway
from repro.tactics.biex import (
    Biex2LevCloud,
    Biex2LevGateway,
    BiexZmfCloud,
    BiexZmfGateway,
)
from repro.tactics.det import DetCloud, DetGateway
from repro.tactics.elgamal_tactic import ElGamalCloud, ElGamalGateway
from repro.tactics.mitra import MitraCloud, MitraGateway
from repro.tactics.ope_tactic import OpeCloud, OpeGateway
from repro.tactics.ore_tactic import OreCloud, OreGateway
from repro.tactics.paillier_tactic import PaillierCloud, PaillierGateway
from repro.tactics.rnd import RndCloud, RndGateway
from repro.tactics.sophos import SophosCloud, SophosGateway
from repro.tactics.stateless import StatelessSseCloud, StatelessSseGateway


def _profile(level: LeakageLevel, setup: str, query: str,
             operations: list[str],
             forward_private: bool = False) -> LeakageProfile:
    return LeakageProfile({
        op: OperationLeakage(
            level=level,
            setup_leakage=setup,
            query_leakage=query,
            forward_private=forward_private,
        )
        for op in operations
    })


_OPS = Operation
_AGG = Aggregate

DET_DESCRIPTOR = TacticDescriptor(
    name="det",
    display_name="DET",
    operations=frozenset({_OPS.INSERT, _OPS.EQUALITY, _OPS.READ,
                          _OPS.UPDATE, _OPS.DELETE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.EQUALITIES,
        setup="value equality across all documents (snapshot adversary)",
        query="query token equality; full access pattern",
        operations=["insert", "update", "delete", "eq_search", "read"],
    ),
    performance=PerformanceMetrics(
        rank=1, search_complexity="O(1)", rounds_per_query=1,
        notes="ciphertext doubles as the search token",
    ),
    protection_class=ProtectionClass.C4,
    challenge="-",
    implementation="implemented from scratch",
    boolean_via_equality=True,
)

MITRA_DESCRIPTOR = TacticDescriptor(
    name="mitra",
    display_name="Mitra",
    operations=frozenset({_OPS.INSERT, _OPS.EQUALITY, _OPS.UPDATE,
                          _OPS.DELETE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.IDENTIFIERS,
        setup="nothing beyond total index size",
        query="access pattern of matching identifiers",
        operations=["insert", "update", "delete", "eq_search"],
        forward_private=True,
    ),
    performance=PerformanceMetrics(
        rank=4, search_complexity="O(u_w)", rounds_per_query=1,
        client_storage="O(|W|)",
        notes="per-keyword counters at the gateway",
    ),
    protection_class=ProtectionClass.C2,
    challenge="Local storage",
    implementation="implemented from scratch",
    boolean_via_equality=True,
)

SOPHOS_DESCRIPTOR = TacticDescriptor(
    name="sophos",
    display_name="Sophos",
    operations=frozenset({_OPS.INSERT, _OPS.EQUALITY, _OPS.UPDATE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.IDENTIFIERS,
        setup="nothing beyond total index size",
        query="access pattern of matching identifiers",
        operations=["insert", "update", "eq_search"],
        forward_private=True,
    ),
    performance=PerformanceMetrics(
        rank=5, search_complexity="O(u_w)", rounds_per_query=1,
        client_storage="O(|W|)",
        notes="one RSA inversion per insertion",
    ),
    protection_class=ProtectionClass.C2,
    challenge="Key management",
    implementation="implemented from scratch",
    boolean_via_equality=True,
    # Addition-only updates leave stale old-value entries behind, so
    # candidate sets need gateway-side verification.
    exact_search=False,
)

RND_DESCRIPTOR = TacticDescriptor(
    name="rnd",
    display_name="RND",
    operations=frozenset({_OPS.INSERT, _OPS.EQUALITY, _OPS.READ}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.STRUCTURE,
        setup="only ciphertext sizes",
        query="only result transfer size (exhaustive scan)",
        operations=["insert", "eq_search", "read"],
    ),
    performance=PerformanceMetrics(
        rank=2, search_complexity="O(n)", rounds_per_query=1,
        notes="equality search transfers every ciphertext to the gateway",
    ),
    protection_class=ProtectionClass.C1,
    challenge="Inefficiency",
    implementation="implemented from scratch",
    boolean_via_equality=True,
    # No Deletion SPI: removed documents stay in the scan until their
    # candidate ids fail the document fetch, so sets can be stale.
    exact_search=False,
)

BIEX_2LEV_DESCRIPTOR = TacticDescriptor(
    name="biex-2lev",
    display_name="BIEX-2Lev",
    operations=frozenset({_OPS.INSERT, _OPS.EQUALITY, _OPS.BOOLEAN,
                          _OPS.UPDATE, _OPS.DELETE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.PREDICATES,
        setup="bucket sizes of the global and pairwise multimaps",
        query="co-occurrence structure of the boolean predicate",
        operations=["insert", "update", "delete", "eq_search",
                    "bool_search"],
    ),
    performance=PerformanceMetrics(
        rank=6, search_complexity="O(|DB(w1)| * q)", rounds_per_query=1,
        server_storage="O(sum of pairwise co-occurrences)",
        notes="read-efficient, storage-heavy local multimaps",
    ),
    protection_class=ProtectionClass.C3,
    challenge="Storage impl. complexity",
    implementation="re-implementation of the Clusion construction",
)

BIEX_ZMF_DESCRIPTOR = TacticDescriptor(
    name="biex-zmf",
    display_name="BIEX-ZMF",
    operations=frozenset({_OPS.INSERT, _OPS.EQUALITY, _OPS.BOOLEAN,
                          _OPS.UPDATE, _OPS.DELETE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.PREDICATES,
        setup="filter load factor only",
        query="co-occurrence structure of the boolean predicate",
        operations=["insert", "update", "delete", "eq_search",
                    "bool_search"],
    ),
    performance=PerformanceMetrics(
        rank=7, search_complexity="O(|DB(w1)| * q * k)",
        rounds_per_query=1,
        server_storage="O(filter size)",
        notes="space-efficient matryoshka filters; probabilistic membership",
    ),
    protection_class=ProtectionClass.C3,
    challenge="Storage impl. complexity",
    implementation="re-implementation of the Clusion construction",
    # Matryoshka filters answer membership probabilistically: false
    # positives survive until verification trims them.
    exact_search=False,
)

OPE_DESCRIPTOR = TacticDescriptor(
    name="ope",
    display_name="OPE",
    operations=frozenset({_OPS.INSERT, _OPS.RANGE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.ORDER,
        setup="total numeric order of all values (snapshot adversary)",
        query="queried interval position",
        operations=["insert", "range_search"],
    ),
    performance=PerformanceMetrics(
        rank=8, search_complexity="O(log n + r)", rounds_per_query=1,
        notes="hypergeometric lazy sampling per encryption",
    ),
    protection_class=ProtectionClass.C5,
    challenge="-",
    implementation="re-implementation of the Boldyreva construction",
    # Insert-as-upsert: entries of updated or deleted documents linger
    # in the order index until verification discards them.
    exact_search=False,
)

ORE_DESCRIPTOR = TacticDescriptor(
    name="ore",
    display_name="ORE",
    operations=frozenset({_OPS.INSERT, _OPS.RANGE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.ORDER,
        setup="order via the public comparator; first differing bit",
        query="queried interval position",
        operations=["insert", "range_search"],
    ),
    performance=PerformanceMetrics(
        rank=9, search_complexity="O(log n + r)", rounds_per_query=1,
        notes="comparator invocations instead of numeric comparisons",
    ),
    protection_class=ProtectionClass.C5,
    challenge="-",
    implementation="re-implementation of the CLWW construction",
    # Insert-as-upsert, like OPE: stale entries require verification.
    exact_search=False,
)

PAILLIER_DESCRIPTOR = TacticDescriptor(
    name="paillier",
    display_name="Paillier",
    operations=frozenset({_OPS.INSERT}),
    aggregates=frozenset({_AGG.SUM, _AGG.AVG, _AGG.COUNT}),
    leakage=_profile(
        LeakageLevel.STRUCTURE,
        setup="only ciphertext sizes",
        query="which identifiers feed the aggregate",
        operations=["insert", "aggregate"],
    ),
    performance=PerformanceMetrics(
        rank=10, search_complexity="O(k)", rounds_per_query=1,
        notes="two modular exponentiations per insertion",
    ),
    protection_class=None,
    challenge="Key management",
    implementation="implemented from scratch",
)

ELGAMAL_DESCRIPTOR = TacticDescriptor(
    name="elgamal",
    display_name="ElGamal",
    operations=frozenset({_OPS.INSERT}),
    aggregates=frozenset({_AGG.PRODUCT, _AGG.COUNT}),
    leakage=_profile(
        LeakageLevel.STRUCTURE,
        setup="only ciphertext sizes",
        query="which identifiers feed the aggregate",
        operations=["insert", "aggregate"],
    ),
    performance=PerformanceMetrics(
        rank=11, search_complexity="O(k)", rounds_per_query=1,
        notes="extension tactic demonstrating crypto agility",
    ),
    protection_class=None,
    challenge="Key management",
    implementation="implemented from scratch (extension)",
)

BLIND_INDEX_DESCRIPTOR = TacticDescriptor(
    name="blind-index",
    display_name="BlindIndex",
    operations=frozenset({_OPS.INSERT, _OPS.EQUALITY, _OPS.UPDATE,
                          _OPS.DELETE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.EQUALITIES,
        setup="value equality across all documents (snapshot adversary)",
        query="query token equality; full access pattern",
        operations=["insert", "update", "delete", "eq_search"],
    ),
    performance=PerformanceMetrics(
        rank=13, search_complexity="O(1)", rounds_per_query=1,
        notes="one blinded HSM exponentiation per token; key never at "
              "the gateway (offline dictionary attacks require the HSM)",
    ),
    protection_class=ProtectionClass.C4,
    challenge="HSM round per token",
    implementation="extension (OPRF per the Ionic/EC-OPRF related work)",
    boolean_via_equality=True,
)

STATELESS_SSE_DESCRIPTOR = TacticDescriptor(
    name="sse-stateless",
    display_name="StatelessSSE",
    operations=frozenset({_OPS.INSERT, _OPS.EQUALITY, _OPS.UPDATE,
                          _OPS.DELETE}),
    aggregates=frozenset(),
    leakage=_profile(
        LeakageLevel.IDENTIFIERS,
        setup="nothing beyond total index size",
        query="access pattern; per-keyword update pattern at insert time",
        operations=["insert", "update", "delete", "eq_search"],
        forward_private=False,
    ),
    performance=PerformanceMetrics(
        rank=12, search_complexity="O(u_w)", rounds_per_query=1,
        client_storage="O(1)",
        notes="zero gateway state (cloud-native); trades away forward "
              "privacy — the trade the paper's conclusion discusses",
    ),
    protection_class=ProtectionClass.C2,
    challenge="Forward privacy lost",
    implementation="extension implementing the paper's future work",
)

BUILTIN_TACTICS = [
    (DET_DESCRIPTOR, DetGateway, DetCloud),
    (MITRA_DESCRIPTOR, MitraGateway, MitraCloud),
    (SOPHOS_DESCRIPTOR, SophosGateway, SophosCloud),
    (RND_DESCRIPTOR, RndGateway, RndCloud),
    (BIEX_2LEV_DESCRIPTOR, Biex2LevGateway, Biex2LevCloud),
    (BIEX_ZMF_DESCRIPTOR, BiexZmfGateway, BiexZmfCloud),
    (OPE_DESCRIPTOR, OpeGateway, OpeCloud),
    (ORE_DESCRIPTOR, OreGateway, OreCloud),
    (STATELESS_SSE_DESCRIPTOR, StatelessSseGateway, StatelessSseCloud),
    (BLIND_INDEX_DESCRIPTOR, BlindIndexGateway, BlindIndexCloud),
    (PAILLIER_DESCRIPTOR, PaillierGateway, PaillierCloud),
    (ELGAMAL_DESCRIPTOR, ElGamalGateway, ElGamalCloud),
]


def register_builtin_tactics(registry) -> None:
    """Register every built-in tactic with the given registry."""
    for descriptor, gateway_cls, cloud_cls in BUILTIN_TACTICS:
        registry.register(descriptor, gateway_cls, cloud_cls)
