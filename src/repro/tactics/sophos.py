"""Sophos (Σoφoς): forward-private SSE from a trapdoor permutation
(Bost, CCS 2016).

Protection class 2 (*identifiers*).  Per keyword the gateway holds a
search-token chain rooted at a random point of Z_n: each insertion steps
the token *backwards* through the RSA trapdoor permutation (private key),
and stores the entry at ``H1(k_w, ST)``.  The cloud, handed the newest
token at search time, can only walk *forwards* with the public key —
entries written after a search use tokens the server cannot predict,
which is precisely forward privacy.

Table 2 lists *key management* as this tactic's challenge: unlike the
purely symmetric schemes, Sophos needs an RSA keypair whose private half
must never leave the trusted zone; the keystore provides it.  Sophos has
no deletion sub-protocol (additions only); ``update`` appends the new
value and relies on the middleware's gateway-side result verification to
drop stale matches.

SPI surface (Table 2 row: 6 gateway / 4 cloud): Setup, Insertion,
DocIDGen, Update, EqQuery, EqResolution // Setup, Insertion, Update,
EqQuery.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value, encode_value
from repro.crypto.primitives.hmac_prf import prf, prg
from repro.crypto.primitives.numbers import bytes_to_int, int_to_bytes
from repro.crypto.primitives.random import default_random
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import (
    CloudTactic,
    GatewayTactic,
    export_ring,
    keyword_key,
    random_doc_id,
)

RSA_BITS = 1024


def _mask_id(k_w: bytes, token: bytes, doc_id: str) -> bytes:
    body = doc_id.encode("utf-8")
    pad = prg(prf(k_w, b"h2", token), len(body), label=b"sophos-pad")
    return bytes(a ^ b for a, b in zip(body, pad))


def _unmask_id(k_w: bytes, token: bytes, masked: bytes) -> str:
    pad = prg(prf(k_w, b"h2", token), len(masked), label=b"sophos-pad")
    return bytes(a ^ b for a, b in zip(masked, pad)).decode("utf-8")


def _address(k_w: bytes, token: bytes) -> bytes:
    return prf(k_w, b"h1", token)


class SophosGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayDocIDGen,
    spi.GatewayUpdate,
    spi.GatewayEqQuery,
    spi.GatewayEqResolution,
):
    """Trusted-zone half: private-key token stepping."""

    def setup(self) -> None:
        self._master = self.ctx.derive_key("index")
        self._private = self.ctx.keystore.rsa_keypair(
            self.ctx.field, self.ctx.tactic, RSA_BITS
        )
        public = self._private.public
        self.ctx.call("setup", n=public.n, e=public.e)

    def generate_doc_id(self) -> str:
        return random_doc_id()

    # -- keyword state (newest token + count) ----------------------------------

    def _keyword(self, value: Value) -> bytes:
        return encode_value(value)

    def _state_key(self, keyword: bytes) -> bytes:
        return self.ctx.state_key(b"st", prf(self._master, b"st", keyword))

    def _load_state(self, keyword: bytes) -> tuple[int, int] | None:
        blob = self.ctx.local_kv.get(self._state_key(keyword))
        if blob is None:
            return None
        count = int.from_bytes(blob[:8], "big")
        return count, bytes_to_int(blob[8:])

    def _store_state(self, keyword: bytes, count: int, token: int) -> None:
        blob = count.to_bytes(8, "big") + int_to_bytes(
            token, self._private.byte_length
        )
        self.ctx.local_kv.put(self._state_key(keyword), blob)

    # -- insertion -----------------------------------------------------------------

    def insert(self, doc_id: str, value: Value) -> None:
        keyword = self._keyword(value)
        k_w = keyword_key(self._master, keyword)
        state = self._load_state(keyword)
        if state is None:
            count = 1
            token = bytes_to_int(
                default_random().token_bytes(self._private.byte_length)
            ) % self._private.n
        else:
            old_count, old_token = state
            count = old_count + 1
            token = self._private.invert(old_token)
        token_bytes = int_to_bytes(token, self._private.byte_length)
        self.ctx.call(
            "insert",
            address=_address(k_w, token_bytes),
            payload=_mask_id(k_w, token_bytes, doc_id),
        )
        self._store_state(keyword, count, token)

    def update(self, doc_id: str, old_value: Value,
               new_value: Value) -> None:
        # Additions only: the stale old-value entry remains and is filtered
        # by the middleware's gateway-side verification.
        self.insert(doc_id, new_value)

    # -- search ----------------------------------------------------------------------

    def eq_query(self, value: Value) -> Any:
        keyword = self._keyword(value)
        state = self._load_state(keyword)
        if state is None:
            return {"ids": []}
        count, token = state
        k_w = keyword_key(self._master, keyword)
        ids = self.ctx.call(
            "eq_query",
            k_w=k_w,
            token=int_to_bytes(token, self._private.byte_length),
            count=count,
        )
        return {"ids": ids}

    def resolve_eq(self, raw: Any) -> set[str]:
        return set(raw["ids"])


class SophosCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudUpdate,
    spi.CloudEqQuery,
):
    """Untrusted-zone half: public-key forward walking."""

    def setup(self, n: int, e: int) -> None:
        self._n = n
        self._e = e
        self._map_name = self.ctx.state_key(b"index")

    def insert(self, address: bytes, payload: bytes) -> None:
        if not isinstance(address, bytes) or not isinstance(payload, bytes):
            raise TacticError("Sophos entries are byte blobs")
        self.ctx.kv.map_put(self._map_name, address, payload)

    def update(self, address: bytes, payload: bytes) -> None:
        self.insert(address=address, payload=payload)

    def eq_query(self, k_w: bytes, token: bytes, count: int) -> list[str]:
        """Walk the permutation forwards, harvesting all entries."""
        byte_length = (self._n.bit_length() + 7) // 8
        current = bytes_to_int(token)
        ids = []
        for _ in range(count):
            token_bytes = int_to_bytes(current, byte_length)
            masked = self.ctx.kv.map_get(
                self._map_name, _address(k_w, token_bytes)
            )
            if masked is not None:
                ids.append(_unmask_id(k_w, token_bytes, masked))
            current = pow(current, self._e, self._n)
        return ids

    # -- shard migration SPI (address-keyed) -----------------------------------
    # The search walk skips missing addresses, so entries of one keyword
    # chain may scatter across shards and the union-merge stays correct.

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (address, payload)
            for address, payload in self.ctx.kv.map_items(self._map_name)
            if ring.owner(address) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for address, payload in entries:
            self.ctx.kv.map_put(self._map_name, address, payload)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        for address, _ in self.ctx.kv.map_items(self._map_name):
            if ring.owner(address) != origin:
                self.ctx.kv.map_delete(self._map_name, address)
