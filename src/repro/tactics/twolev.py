"""2Lev-style dynamic encrypted multimap (Cash et al., NDSS 2014 lineage).

The Clusion library the paper builds on provides 2Lev as its workhorse
encrypted multimap; BIEX-2Lev composes several of them.  This module
implements the equivalent substrate:

* :class:`TwoLevClient` (gateway): derives per-label search tokens and
  value keys, encrypts the stored items (document-id blobs) and decrypts
  lookup responses.  The server never sees labels or items in the clear.
* :class:`TwoLevStore` (cloud): a token-addressed bucket store.  Each
  bucket maps an opaque per-document *tag* to a signed reference count
  plus the encrypted item, which makes add/update/delete idempotent
  without client-side tombstone replay.

Leakage: bucket sizes (result counts per blinded label) and tag equality
within a bucket — the standard dynamic-multimap profile underlying the
*predicates*-level classification of BIEX.
"""

from __future__ import annotations

from repro.crypto.primitives.hmac_prf import prf
from repro.crypto.symmetric import Aead
from repro.errors import TacticError
from repro.stores.kv import KeyValueStore


class TwoLevClient:
    """Gateway-side keying and encryption for one multimap."""

    def __init__(self, master_key: bytes, namespace: bytes = b"mm"):
        if not master_key:
            raise TacticError("multimap master key must be non-empty")
        self._master = master_key
        self._namespace = namespace

    def token(self, label: bytes) -> bytes:
        """The opaque bucket address the cloud sees for ``label``."""
        return prf(self._master, b"token", self._namespace, label)

    def _value_aead(self, label: bytes) -> Aead:
        key = prf(self._master, b"value", self._namespace, label)
        return Aead(key[:16])

    def seal_item(self, label: bytes, item: bytes) -> bytes:
        return self._value_aead(label).encrypt(item)

    def open_item(self, label: bytes, blob: bytes) -> bytes:
        return self._value_aead(label).decrypt(blob)

    def open_items(self, label: bytes, blobs: list[bytes]) -> list[bytes]:
        aead = self._value_aead(label)
        return [aead.decrypt(blob) for blob in blobs]


def _pack(count: int, enc_item: bytes) -> bytes:
    return count.to_bytes(4, "big", signed=True) + enc_item


def _unpack(packed: bytes) -> tuple[int, bytes]:
    return int.from_bytes(packed[:4], "big", signed=True), packed[4:]


class TwoLevStore:
    """Cloud-side bucket store (token -> {tag -> (count, enc_item)})."""

    def __init__(self, kv: KeyValueStore, namespace: bytes):
        self._kv = kv
        self._namespace = namespace

    def _bucket(self, token: bytes) -> bytes:
        return self._namespace + b"/bucket/" + token

    def upsert(self, token: bytes, tag: bytes, enc_item: bytes,
               delta: int = 1) -> None:
        """Adjust the reference count of ``tag`` in the bucket.

        A positive net count means the item is live; deletes decrement and
        a re-insert after delete revives the entry — no tombstone replay
        needed at the gateway.
        """
        bucket = self._bucket(token)
        existing = self._kv.map_get(bucket, tag)
        if existing is None:
            count = delta
        else:
            count = _unpack(existing)[0] + delta
        if enc_item == b"" and existing is not None:
            enc_item = _unpack(existing)[1]
        self._kv.map_put(bucket, tag, _pack(count, enc_item))

    def lookup(self, token: bytes) -> list[tuple[bytes, bytes]]:
        """Live ``(tag, enc_item)`` pairs of a bucket."""
        results = []
        for tag, packed in self._kv.map_items(self._bucket(token)):
            count, enc_item = _unpack(packed)
            if count > 0:
                results.append((tag, enc_item))
        return results

    def contains(self, token: bytes, tag: bytes) -> bool:
        packed = self._kv.map_get(self._bucket(token), tag)
        return packed is not None and _unpack(packed)[0] > 0

    def bucket_size(self, token: bytes) -> int:
        return sum(
            1 for _, packed in self._kv.map_items(self._bucket(token))
            if _unpack(packed)[0] > 0
        )
