"""OPE range tactic, protection class 5 (*order*).

Numeric values are mapped through the IEEE-754 order-preserving integer
embedding, encrypted with Boldyreva OPE, and stored in a cloud-side
sorted index — range queries are two binary searches.  The ciphertexts
are themselves ordered numbers, which is maximal leakage (Table 2 puts
OPE and ORE in class 5) but buys the cheapest possible range protocol:
no per-candidate cryptography at query time.

Because floats are compressed into a 40-bit ordered code, distinct values
extremely close together can share a code; the cloud then returns a
slightly widened candidate set and the middleware's gateway-side
verification trims it — candidates are always a superset of the true
result.  Inserting an existing document id replaces its previous entry
(insert-as-upsert), so the 3-interface SPI surface of Table 2 suffices
without a separate update protocol.

SPI surface (Table 2 row: 3 gateway / 3 cloud): Setup, Insertion,
RangeQuery // Setup, Insertion, RangeQuery.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.crypto.encoding import Value, encode_value, value_to_ordered_int
from repro.crypto.ope import Ope
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import CloudTactic, GatewayTactic, export_ring

DOMAIN_BITS = 40
RANGE_BITS = 56


class OpeGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayRangeQuery,
):
    """Trusted-zone half: order-preserving encryption of numeric codes."""

    def setup(self) -> None:
        # With active crypto kernels the Boldyreva sampler additionally
        # memoises interior split nodes: a batch of clustered values
        # shares long prefix paths down the recursion tree, so each
        # hypergeometric split is sampled once per node instead of once
        # per value.  Splits are deterministic PRF functions of the key
        # and node, so the memo never changes a ciphertext.
        crypto = self.crypto
        self._ope = Ope(
            self.ctx.derive_key("ope"),
            domain_bits=DOMAIN_BITS,
            range_bits=RANGE_BITS,
            cache_nodes=crypto.cache_size if crypto.active else 0,
        )
        self._code_cache = self.kernels.cache()
        self.ctx.call("setup")

    def _encode(self, value: Value) -> int:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TacticError(
                f"OPE protects numeric fields only, got "
                f"{type(value).__name__}"
            )
        return self._ope.encrypt(
            value_to_ordered_int(value, bits=DOMAIN_BITS)
        )

    def insert(self, doc_id: str, value: Value) -> None:
        self.ctx.call("insert", doc_id=doc_id, ciphertext=self._encode(value))

    # -- batch SPI ----------------------------------------------------------------
    # OPE stays gateway-inline (the sampler needs scipy, which must not
    # be imported into pool workers); its batch win is dedup + the node
    # memo above, both exact.

    def token(self, value: Value) -> int:
        return self._encode(value)

    def tokens_many(self, values: list[Value]) -> list[int]:
        return self.kernels.dedup_map(
            values, self._encode, key=encode_value,
            cache=self._code_cache,
        )

    def index_many_begin(self, entries: list[tuple[str, Value]]):
        codes = self.tokens_many([value for _, value in entries])

        def finish() -> None:
            for (doc_id, _), code in zip(entries, codes):
                self.ctx.call("insert", doc_id=doc_id, ciphertext=code)

        return finish

    def range_query(self, low: Value, high: Value) -> set[str]:
        low_ct = None if low is None else self._encode(low)
        high_ct = None if high is None else self._encode(high)
        return set(
            self.ctx.call("range_query", low=low_ct, high=high_ct)
        )

    def ordered_ids(self, low: Value = None, high: Value = None,
                    limit: int | None = None,
                    descending: bool = False) -> list[str]:
        """Document ids in value order (extension beyond the Table 1 SPI:
        the order tactics can serve ORDER BY and min/max for free)."""
        low_ct = None if low is None else self._encode(low)
        high_ct = None if high is None else self._encode(high)
        return self.ctx.call("ordered_range", low=low_ct, high=high_ct,
                             limit=limit, descending=descending)


class OpeCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudRangeQuery,
):
    """Untrusted-zone half: a sorted (ciphertext, doc_id) index."""

    def setup(self, **params: Any) -> None:
        self._map_name = self.ctx.state_key(b"ct")
        # The sorted index is an in-memory view rebuilt from the durable
        # KV map, so a restarted cloud zone recovers it.
        self._by_doc: dict[str, int] = {
            key.decode(): int.from_bytes(blob, "big")
            for key, blob in self.ctx.kv.map_items(self._map_name)
        }
        self._sorted: list[tuple[int, str]] = sorted(
            (ciphertext, doc_id)
            for doc_id, ciphertext in self._by_doc.items()
        )

    def insert(self, doc_id: str, ciphertext: int) -> None:
        if not isinstance(ciphertext, int):
            raise TacticError("OPE ciphertext must be an integer")
        self.ctx.kv.map_put(self._map_name, doc_id.encode(),
                            ciphertext.to_bytes(8, "big"))
        previous = self._by_doc.get(doc_id)
        if previous is not None:
            index = bisect.bisect_left(self._sorted, (previous, doc_id))
            if index < len(self._sorted) and self._sorted[index] == (
                previous, doc_id
            ):
                self._sorted.pop(index)
        bisect.insort(self._sorted, (ciphertext, doc_id))
        self._by_doc[doc_id] = ciphertext

    def _slice(self, low: int | None, high: int | None) -> list[str]:
        start = 0 if low is None else bisect.bisect_left(
            self._sorted, (low, "")
        )
        end = len(self._sorted) if high is None else bisect.bisect_right(
            self._sorted, (high, chr(0x10FFFF))
        )
        return [doc_id for _, doc_id in self._sorted[start:end]]

    def range_query(self, low: int | None, high: int | None) -> list[str]:
        return self._slice(low, high)

    def ordered_range(self, low: int | None, high: int | None,
                      limit: int | None = None,
                      descending: bool = False) -> list[str]:
        ids = self._slice(low, high)
        if descending:
            ids.reverse()
        return ids if limit is None else ids[:limit]

    def ordered_range_keyed(self, low: int | None, high: int | None,
                            limit: int | None = None,
                            descending: bool = False
                            ) -> list[tuple[int, str]]:
        """Like ``ordered_range`` but keeps the sort keys, so a sharded
        router can order-merge partial results from several nodes."""
        start = 0 if low is None else bisect.bisect_left(
            self._sorted, (low, "")
        )
        end = len(self._sorted) if high is None else bisect.bisect_right(
            self._sorted, (high, chr(0x10FFFF))
        )
        pairs = self._sorted[start:end]
        if descending:
            pairs = pairs[::-1]
        if limit is not None:
            pairs = pairs[:limit]
        return pairs

    # -- shard migration SPI (doc-keyed) ---------------------------------------

    def _remove_entry(self, doc_id: str) -> None:
        ciphertext = self._by_doc.pop(doc_id, None)
        if ciphertext is None:
            return
        index = bisect.bisect_left(self._sorted, (ciphertext, doc_id))
        if index < len(self._sorted) and self._sorted[index] == (
            ciphertext, doc_id
        ):
            self._sorted.pop(index)
        self.ctx.kv.map_delete(self._map_name, doc_id.encode())

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (doc_id, ciphertext)
            for doc_id, ciphertext in self._by_doc.items()
            if ring.owner(doc_id) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for doc_id, ciphertext in entries:
            self.insert(doc_id, ciphertext)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        foreign = [doc_id for doc_id in self._by_doc
                   if ring.owner(doc_id) != origin]
        for doc_id in foreign:
            self._remove_entry(doc_id)
