"""RND: probabilistic encryption, protection class 1 (*structure*).

The most secure and least functional tactic in Table 2.  Values are
AES-GCM encrypted with fresh randomness, so the cloud learns nothing but
sizes.  Equality search exists but is *inefficient* by design (the
'Challenge' column of Table 2): the cloud must return every stored
ciphertext for the field, and the gateway decrypts and compares — a
linear, bandwidth-heavy protocol.  That is the price of leaking nothing.

SPI surface (Table 2 row: 6 gateway / 4 cloud): Setup, Insertion,
SecureEnc, Retrieval, EqQuery, EqResolution // Setup, Insertion,
Retrieval, EqQuery.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value
from repro.crypto.symmetric import Aead, open_value, seal_value
from repro.errors import DocumentNotFound, TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import CloudTactic, GatewayTactic, export_ring


class RndGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewaySecureEnc,
    spi.GatewayRetrieval,
    spi.GatewayEqQuery,
    spi.GatewayEqResolution,
):
    """Trusted-zone half of the RND tactic."""

    def setup(self) -> None:
        self._aead = Aead(self.ctx.derive_key("value"))
        self.ctx.call("setup")

    # -- SecureEnc ------------------------------------------------------------

    def seal(self, value: Value) -> bytes:
        return seal_value(self._aead, value)

    def open(self, blob: bytes) -> Value:
        return open_value(self._aead, blob)

    # -- Insertion / Retrieval ---------------------------------------------------

    def insert(self, doc_id: str, value: Value) -> None:
        self.ctx.call("insert", doc_id=doc_id, blob=self.seal(value))

    def index_many_begin(self, entries: list[tuple[str, Value]]):
        # Probabilistic seals cannot dedup, but hoisting them into the
        # begin phase lets the engine overlap this AEAD loop with pooled
        # big-int batches of other fields before any RPC is emitted.
        blobs = self.seal_many([value for _, value in entries])

        def finish() -> None:
            for (doc_id, _), blob in zip(entries, blobs):
                self.ctx.call("insert", doc_id=doc_id, blob=blob)

        return finish

    def retrieve(self, doc_id: str) -> Value:
        blob = self.ctx.call("retrieve", doc_id=doc_id)
        if blob is None:
            raise DocumentNotFound(doc_id)
        return self.open(blob)

    # -- Equality search (exhaustive) ------------------------------------------------

    def eq_query(self, value: Value) -> Any:
        """Fetch *all* ciphertexts; comparison happens at the gateway."""
        return {"value": value, "entries": self.ctx.call("eq_query")}

    def resolve_eq(self, raw: Any) -> set[str]:
        target = raw["value"]
        matches = set()
        for doc_id, blob in raw["entries"]:
            if self.open(blob) == target:
                matches.add(doc_id)
        return matches


class RndCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudRetrieval,
    spi.CloudEqQuery,
):
    """Untrusted-zone half: an opaque blob store keyed by document id."""

    def setup(self, **params: Any) -> None:
        self._map_name = self.ctx.state_key(b"values")

    def insert(self, doc_id: str, blob: bytes) -> None:
        if not isinstance(blob, bytes):
            raise TacticError("RND insert expects a ciphertext blob")
        self.ctx.kv.map_put(self._map_name, doc_id.encode(), blob)

    def retrieve(self, doc_id: str) -> bytes | None:
        return self.ctx.kv.map_get(self._map_name, doc_id.encode())

    def eq_query(self) -> list[tuple[str, bytes]]:
        """The exhaustive scan: every (doc_id, ciphertext) pair."""
        return [
            (field.decode(), blob)
            for field, blob in self.ctx.kv.map_items(self._map_name)
        ]

    # -- shard migration SPI (doc-keyed) ---------------------------------------

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (field.decode(), blob)
            for field, blob in self.ctx.kv.map_items(self._map_name)
            if ring.owner(field.decode()) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for doc_id, blob in entries:
            self.insert(doc_id, blob)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        for field, _ in self.ctx.kv.map_items(self._map_name):
            if ring.owner(field.decode()) != origin:
                self.ctx.kv.map_delete(self._map_name, field)
