"""BIEX: boolean SSE with sub-linear conjunctions (Kamara–Moataz,
Eurocrypt 2017), in its 2Lev and ZMF flavours.

Protection class 3 (*predicates*): queries over the encrypted structures
reveal co-occurrence patterns between blinded terms (the intersection
structure of the boolean query), but not equalities or order.

Structure.  Keywords are cross-field ``field=value`` terms.  A *global*
encrypted multimap maps each term to its matching documents; a *local*
pairwise structure encodes, for every ordered term pair ``(t1, t2)``,
which documents match both.  A conjunctive query anchors on its first
clause: the cloud streams the anchor term's global bucket and keeps the
documents whose tag co-occurs — per the pairwise structure — with some
term of every other clause.  Disjunctions inside clauses are unions over
anchor terms; the query is CNF, the form the executor normalises to.

The two registered variants differ only in the local structure:

* **BIEX-2Lev** — pairwise buckets in a second 2Lev multimap.  Exact
  membership, read-efficient, but quadratic index growth per document
  (the 'Storage impl. complexity' challenge of Table 2).
* **BIEX-ZMF** — one shared counting Bloom filter; pair keys select the
  probe positions.  Space-efficient, but probabilistic: false positives
  are filtered by the middleware's gateway-side verification.

SPI surface (Table 2 rows: 8 gateway / 5 cloud): Setup, Insertion,
DocIDGen, Update, Deletion, BoolQuery, BoolResolution, EqQuery // Setup,
Insertion, Update, Deletion, BoolQuery.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value
from repro.crypto.primitives.hmac_prf import prf
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import (
    CloudTactic,
    GatewayTactic,
    IdCipher,
    canonical_term,
    random_doc_id,
)
from repro.tactics.twolev import TwoLevClient, TwoLevStore
from repro.tactics.zmf import CountingBloomFilter

_PAIR_SEP = b"\x00|\x00"

Term = bytes
CnfTerms = list[list[Term]]


class BiexGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayDocIDGen,
    spi.GatewayUpdate,
    spi.GatewayDeletion,
    spi.GatewayBoolQuery,
    spi.GatewayBoolResolution,
    spi.GatewayEqQuery,
):
    """Trusted-zone half, shared by both variants."""

    variant = "2lev"

    def setup(self) -> None:
        master = self.ctx.derive_key("index")
        self._global = TwoLevClient(master, b"global")
        self._pairs = TwoLevClient(master, b"pairs")
        self._ids = IdCipher(self.ctx.derive_key("ids"))
        self._tag_key = prf(master, b"tag")
        self.ctx.call("setup", variant=self.variant)

    def generate_doc_id(self) -> str:
        return random_doc_id()

    # -- term helpers -----------------------------------------------------------

    def term(self, field: str, value: Value) -> Term:
        return canonical_term(field, value)

    def _tag(self, doc_id: str) -> bytes:
        return prf(self._tag_key, doc_id.encode())[:16]

    def _pair_token(self, t1: Term, t2: Term) -> bytes:
        return self._pairs.token(t1 + _PAIR_SEP + t2)

    # -- document-level protocol (used by the executor) ---------------------------

    def insert_terms(self, doc_id: str, terms: list[Term]) -> None:
        self._apply_terms(doc_id, terms, delta=1)

    def delete_terms(self, doc_id: str, terms: list[Term]) -> None:
        self._apply_terms(doc_id, terms, delta=-1)

    def update_terms(self, doc_id: str, old_terms: list[Term],
                     new_terms: list[Term]) -> None:
        if old_terms:
            self.delete_terms(doc_id, old_terms)
        if new_terms:
            self.insert_terms(doc_id, new_terms)

    def _apply_terms(self, doc_id: str, terms: list[Term],
                     delta: int) -> None:
        if not terms:
            return
        tag = self._tag(doc_id)
        enc_id = self._ids.seal(doc_id)
        globals_payload = [
            (self._global.token(term), enc_id if delta > 0 else b"")
            for term in terms
        ]
        pair_tokens = [
            self._pair_token(t1, t2)
            for t1 in terms
            for t2 in terms
            if t1 != t2
        ]
        method = "insert" if delta > 0 else "delete"
        self.ctx.call(
            method, tag=tag, globals=globals_payload, pairs=pair_tokens
        )

    # -- SPI single-field conformance ------------------------------------------------

    def insert(self, doc_id: str, value: Value) -> None:
        self.insert_terms(doc_id, [self.term(self.ctx.field, value)])

    def delete(self, doc_id: str, value: Value) -> None:
        self.delete_terms(doc_id, [self.term(self.ctx.field, value)])

    def update(self, doc_id: str, old_value: Value,
               new_value: Value) -> None:
        self.update_terms(
            doc_id,
            [self.term(self.ctx.field, old_value)],
            [self.term(self.ctx.field, new_value)],
        )

    # -- boolean query protocol ----------------------------------------------------------

    def bool_query_terms(self, cnf: CnfTerms) -> Any:
        """Run the protocol over pre-built terms (executor entry point)."""
        if not cnf or not all(cnf):
            raise TacticError("BIEX query needs at least one non-empty clause")
        anchors = []
        for anchor_term in cnf[0]:
            pairs = []
            for clause in cnf[1:]:
                if anchor_term in clause:
                    # A document matching the anchor term satisfies this
                    # clause by definition; no pairwise check needed (the
                    # index stores no (t, t) self-pairs).
                    continue
                pairs.append([
                    self._pair_token(anchor_term, other) for other in clause
                ])
            anchors.append({
                "token": self._global.token(anchor_term),
                "pairs": pairs,
            })
        response = self.ctx.call("bool_query", anchors=anchors)
        return {"anchor_terms": cnf[0], "per_anchor": response}

    def bool_query(self, cnf: list[list[tuple[str, Value]]]) -> Any:
        terms = [
            [self.term(field, value) for field, value in clause]
            for clause in cnf
        ]
        return self.bool_query_terms(terms)

    def resolve_bool(self, raw: Any) -> set[str]:
        results: set[str] = set()
        for blobs in raw["per_anchor"]:
            for blob in blobs:
                results.add(self._ids.open(blob))
        return results

    def eq_query(self, value: Value) -> Any:
        """Equality search = single-term, single-clause boolean query."""
        return self.bool_query_terms([[self.term(self.ctx.field, value)]])


class Biex2LevGateway(BiexGateway):
    variant = "2lev"


class BiexZmfGateway(BiexGateway):
    variant = "zmf"


class BiexCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudUpdate,
    spi.CloudDeletion,
    spi.CloudBoolQuery,
):
    """Untrusted-zone half, shared by both variants.

    The global structure is always a 2Lev bucket store; ``variant``
    decides whether the pairwise co-occurrence structure is a second
    bucket store (exact) or a counting Bloom filter (compact).
    """

    def setup(self, variant: str = "2lev", filter_cells: int = 1 << 18,
              filter_probes: int = 7) -> None:
        if variant not in ("2lev", "zmf"):
            raise TacticError(f"unknown BIEX variant {variant!r}")
        self.variant = variant
        self._global = TwoLevStore(self.ctx.kv, self.ctx.state_key(b"g"))
        if variant == "2lev":
            self._pair_store = TwoLevStore(
                self.ctx.kv, self.ctx.state_key(b"p")
            )
            self._filter = None
        else:
            self._pair_store = None
            self._filter = CountingBloomFilter(
                self.ctx.kv, self.ctx.state_key(b"f"),
                cells=filter_cells, probes=filter_probes,
            )

    # -- updates -------------------------------------------------------------

    def _apply(self, tag: bytes, globals: list[tuple[bytes, bytes]],
               pairs: list[bytes], delta: int) -> None:
        for token, enc_id in globals:
            self._global.upsert(token, tag, enc_id, delta)
        for pair_token in pairs:
            if self._pair_store is not None:
                self._pair_store.upsert(pair_token, tag, b"", delta)
            elif delta > 0:
                self._filter.add(pair_token, tag)
            else:
                self._filter.remove(pair_token, tag)

    def insert(self, tag: bytes, globals: list[tuple[bytes, bytes]],
               pairs: list[bytes]) -> None:
        self._apply(tag, globals, pairs, +1)

    def delete(self, tag: bytes, globals: list[tuple[bytes, bytes]],
               pairs: list[bytes]) -> None:
        self._apply(tag, globals, pairs, -1)

    def update(self, tag: bytes, old_globals: list[tuple[bytes, bytes]],
               old_pairs: list[bytes],
               new_globals: list[tuple[bytes, bytes]],
               new_pairs: list[bytes]) -> None:
        self._apply(tag, old_globals, old_pairs, -1)
        self._apply(tag, new_globals, new_pairs, +1)

    # -- query ------------------------------------------------------------------

    def _pair_match(self, pair_token: bytes, tag: bytes) -> bool:
        if self._pair_store is not None:
            return self._pair_store.contains(pair_token, tag)
        return self._filter.contains(pair_token, tag)

    def bool_query(self, anchors: list[dict]) -> list[list[bytes]]:
        """Per anchor term: the encrypted ids surviving every clause."""
        per_anchor: list[list[bytes]] = []
        seen_tags: set[bytes] = set()
        for anchor in anchors:
            survivors: list[bytes] = []
            for tag, enc_id in self._global.lookup(anchor["token"]):
                if tag in seen_tags:
                    continue
                if all(
                    any(self._pair_match(token, tag) for token in clause)
                    for clause in anchor["pairs"]
                ):
                    seen_tags.add(tag)
                    survivors.append(enc_id)
            per_anchor.append(survivors)
        return per_anchor

    # -- metrics -------------------------------------------------------------------

    def index_size(self) -> int:
        """Bytes used by the local (pairwise) structure — the space side
        of the 2Lev vs ZMF trade-off."""
        if self._filter is not None:
            return self._filter.size_in_bytes()
        # Sum the pair-store namespace usage out of the shared KV store.
        prefix = self.ctx.state_key(b"p")
        total = 0
        for name, bucket in self.ctx.kv._maps.items():  # noqa: SLF001
            if name.startswith(prefix):
                total += len(name)
                total += sum(len(f) + len(v) for f, v in bucket.items())
        return total


class Biex2LevCloud(BiexCloud):
    pass


class BiexZmfCloud(BiexCloud):
    pass
